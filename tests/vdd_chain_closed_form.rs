//! Theorem 3 structure check on chains: for a single-processor chain
//! the Vdd-Hopping optimum has a closed form — run at the two modes
//! bracketing the ideal constant speed `W/D`, splitting the *total*
//! time so the work completes exactly. The LP must reproduce it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::vdd;
use reclaim::models::{DiscreteModes, PowerLaw};
use reclaim::taskgraph::generators;

const P: PowerLaw = PowerLaw::CUBIC;

/// Closed-form optimal Vdd energy for a chain: mix the bracketing
/// modes of `s* = W/D` over the whole window.
fn chain_vdd_energy(total_work: f64, deadline: f64, modes: &DiscreteModes) -> Option<f64> {
    let s_star = total_work / deadline;
    if s_star > modes.s_max() * (1.0 + 1e-12) {
        return None; // infeasible
    }
    if s_star <= modes.s_min() {
        // Run everything at the slowest mode (finishing early).
        return Some(P.energy_at_speed(total_work, modes.s_min()));
    }
    let (lo, hi) = modes.bracket(s_star)?;
    if (hi - lo).abs() < 1e-12 {
        return Some(P.energy_at_speed(total_work, lo));
    }
    // x time units at hi, D − x at lo: lo·(D−x) + hi·x = W.
    let x = (total_work - lo * deadline) / (hi - lo);
    Some(P.power(lo) * (deadline - x) + P.power(hi) * x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_matches_chain_closed_form(
        ws in prop::collection::vec(0.5f64..4.0, 1..7),
        tight in 1.05f64..3.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let m = rng.gen_range(2usize..6);
        let mut speeds = vec![0.5, 3.0];
        for _ in 0..m.saturating_sub(2) {
            speeds.push(rng.gen_range(0.5f64..3.0));
        }
        let modes = DiscreteModes::new(&speeds).unwrap();
        let g = generators::chain(&ws);
        let total: f64 = ws.iter().sum();
        let d = tight * total / modes.s_max();
        let expect = chain_vdd_energy(total, d, &modes).expect("feasible by construction");
        let sched = vdd::solve_lp(&g, d, &modes, P).unwrap();
        let got = sched.energy(&g, P);
        prop_assert!((got - expect).abs() <= 1e-6 * expect.max(1.0),
            "LP {got} vs closed form {expect} (W={total}, D={d})");
    }
}

#[test]
fn closed_form_helper_sanity() {
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    // W = 3, D = 2: s* = 1.5 → x = 1, energy = 1 + 8 = 9 (the unit
    // test case from the vdd module, derived independently here).
    assert!((chain_vdd_energy(3.0, 2.0, &modes).unwrap() - 9.0).abs() < 1e-12);
    // Slow regime.
    assert!((chain_vdd_energy(1.0, 10.0, &modes).unwrap() - 1.0).abs() < 1e-12);
    // Infeasible.
    assert!(chain_vdd_energy(10.0, 1.0, &modes).is_none());
}
