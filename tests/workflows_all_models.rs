//! Full matrix: every structured workflow family × every energy
//! model → solve, validate, simulate, and check model dominance.

use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::sim::simulate;
use reclaim::taskgraph::{analysis, workflows, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

fn cases() -> Vec<(&'static str, TaskGraph, usize)> {
    vec![
        ("fft", workflows::fft(3), 3),
        ("lu", workflows::lu(3), 2),
        ("stencil", workflows::stencil(4, 4), 2),
        ("dac", workflows::divide_and_conquer(2, 3, 1.0, 3.0), 3),
        ("ge", workflows::gaussian_elimination(6), 2),
    ]
}

#[test]
fn every_workflow_under_every_model() {
    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 3.0, 0.25).unwrap();
    for (name, app, procs) in cases() {
        let mapping = list_schedule(&app, procs, Priority::BottomLevel);
        let exec = mapping.execution_graph(&app).unwrap();
        let d = 1.3 * analysis::critical_path_weight(&exec) / modes.s_max();
        let mut energies = Vec::new();
        for model in [
            EnergyModel::continuous(modes.s_max()),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes.clone()),
            EnergyModel::Incremental(inc.clone()),
        ] {
            let sol = solve(&exec, d, &model, P)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", model.name()));
            sol.schedule
                .validate(&exec, &model, d)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", model.name()));
            let sim = simulate(&exec, &sol.schedule, P)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", model.name()));
            assert!(
                (sim.energy - sol.energy).abs() <= 1e-6 * sol.energy,
                "{name}/{}: oracle disagreement",
                model.name()
            );
            energies.push(sol.energy);
        }
        // Dominance: Continuous ≤ Vdd ≤ Discrete-solver-output.
        // (Discrete may be the rounding approximation on big
        // workflows, still an upper bound on the Vdd optimum.)
        assert!(
            energies[0] <= energies[1] * (1.0 + 1e-6),
            "{name}: cont vs vdd"
        );
        assert!(
            energies[1] <= energies[2] * (1.0 + 1e-6),
            "{name}: vdd vs disc"
        );
    }
}

#[test]
fn workflow_energy_beats_naive_smax() {
    // Running everything flat-out is always feasible but wasteful:
    // the continuous optimum must reclaim a strictly positive amount
    // whenever the deadline has slack.
    let modes = DiscreteModes::new(&[0.5, 1.5, 3.0]).unwrap();
    for (name, app, procs) in cases() {
        let mapping = list_schedule(&app, procs, Priority::BottomLevel);
        let exec = mapping.execution_graph(&app).unwrap();
        let d = 1.5 * analysis::critical_path_weight(&exec) / modes.s_max();
        let sol = solve(&exec, d, &EnergyModel::continuous(modes.s_max()), P).unwrap();
        let naive = P.energy_at_speed(exec.total_work(), modes.s_max());
        assert!(
            sol.energy < naive * 0.9,
            "{name}: expected ≥ 10% reclaimed, got {} vs naive {naive}",
            sol.energy
        );
    }
}
