//! Property tests for `Engine::energy_curve_exact`: the closed-form
//! curve must agree with the sampled `Engine::energy_curve` / pointwise
//! solves across all four energy models × chain/fork/SP shapes, and
//! its segments must tile the deadline range monotonically.
//!
//! Tolerances per model:
//!
//! * Vdd-Hopping and unbounded Continuous are **exact** paths
//!   (parametric LP ray, scaling law): pointwise equality to 1e-6.
//! * Discrete / Incremental / capped Continuous are adaptively
//!   sampled: any deadline's interpolated energy provably lies
//!   between the true energies at its segment's endpoints (the curve
//!   is non-increasing), up to the model's approximation ratio `ρ`
//!   when the round-up paths are in play (warm- and cold-started
//!   relaxations may round a borderline speed to different grid
//!   modes): `E(seg.hi)/ρ ≤ value ≤ E(seg.lo)·ρ`.

use proptest::prelude::*;
use reclaim::core::{incremental, Engine};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::{generators, PreparedGraph, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;
const LO: f64 = 1.05;
const HI: f64 = 3.0;

/// All four models over a 2.0 top speed; each with the tolerance ratio
/// `ρ` its curve values are certified to.
fn models_with_ratio() -> Vec<(EnergyModel, f64)> {
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 2.0, 0.5).unwrap();
    let k = reclaim::core::SolveOptions::default().precision_k;
    let rho_inc = incremental::approx_bound(&inc, P, k);
    vec![
        (EnergyModel::continuous_unbounded(), 1.0 + 1e-6),
        (EnergyModel::VddHopping(modes.clone()), 1.0 + 1e-6),
        // Small graphs take the exact BnB path in both worlds.
        (EnergyModel::Discrete(modes), 1.0 + 1e-6),
        (EnergyModel::Incremental(inc), rho_inc),
    ]
}

/// Chain, fork, or series–parallel — the shapes the issue names.
fn shape(family: usize, seed: u64) -> TaskGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        0 => generators::chain(&generators::random_weights(5, 0.5, 3.0, &mut rng)),
        1 => generators::fork(1.0, &generators::random_weights(4, 0.5, 3.0, &mut rng)),
        _ => generators::random_sp(7, 0.5, 0.5, 3.0, &mut rng).0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 32 random deadlines per (model × shape): the exact curve's value
    /// matches a pointwise engine solve within the model's ratio.
    #[test]
    fn exact_curve_matches_pointwise_solves(family in 0usize..3, seed in any::<u64>()) {
        let g = shape(family, seed);
        let engine = Engine::new(P);
        for (model, rho) in models_with_ratio() {
            let prep = PreparedGraph::new(&g);
            let curve = engine.energy_curve_exact(&prep, &model, LO, HI).unwrap();
            let (d0, d1) = (curve.deadline_lo(), curve.deadline_hi());
            prop_assert!(d0 < d1, "{}", model.name());
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
            for _ in 0..32 {
                let u: f64 = rng.gen_range(0.0..1.0);
                let d = d0 * (d1 / d0).powf(u);
                let val = curve.energy_at(d).expect("inside the covered range");
                if rho <= 1.0 + 1e-5 && curve.exact {
                    // Exact paths: direct pointwise equality.
                    let direct = engine.solve(&prep, &model, d).unwrap().energy;
                    prop_assert!(
                        (val - direct).abs() <= 1e-6 * (1.0 + direct),
                        "{}: exact {val} vs solve {direct} at D = {d}", model.name()
                    );
                } else {
                    // Sampled fallback: sandwich between the true
                    // energies at the covering segment's endpoints
                    // (the optimum is non-increasing in D), widened by
                    // the model's approximation ratio.
                    let seg = curve.segment_at(d).expect("segment covers d");
                    let hi_true = engine.solve(&prep, &model, seg.deadline_lo).unwrap().energy;
                    let lo_true = engine.solve(&prep, &model, seg.deadline_hi).unwrap().energy;
                    prop_assert!(
                        val <= hi_true * rho * (1.0 + 1e-6)
                            && val >= lo_true / rho * (1.0 - 1e-6),
                        "{}: {val} outside [{lo_true}/ρ, {hi_true}·ρ] (ρ = {rho}) at D = {d}",
                        model.name()
                    );
                }
            }
        }
    }

    /// The exact Vdd curve equals the sampled `energy_curve` at every
    /// one of its grid points (the satellite's literal statement), and
    /// so does the unbounded-Continuous scaling-law segment.
    #[test]
    fn exact_curve_matches_energy_curve_grid(family in 0usize..3, seed in any::<u64>()) {
        let g = shape(family, seed);
        let engine = Engine::new(P);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        for model in [
            EnergyModel::continuous_unbounded(),
            EnergyModel::VddHopping(modes),
        ] {
            let prep = PreparedGraph::new(&g);
            let curve = engine.energy_curve_exact(&prep, &model, LO, HI).unwrap();
            prop_assert!(curve.exact, "{}", model.name());
            let sampled = engine.energy_curve(&prep, &model, 16, LO, HI).unwrap();
            for pt in &sampled {
                let Some(val) = curve.energy_at(pt.deadline) else { continue };
                prop_assert!(
                    (val - pt.energy).abs() <= 1e-6 * (1.0 + pt.energy),
                    "{}: exact {val} vs sampled {} at D = {}",
                    model.name(), pt.energy, pt.deadline
                );
            }
        }
    }

    /// Structural invariants for every model: segments tile the range
    /// contiguously with strictly increasing boundaries, and the curve
    /// is non-increasing across segment boundaries.
    #[test]
    fn segments_are_monotone_and_contiguous(family in 0usize..3, seed in any::<u64>()) {
        let g = shape(family, seed);
        let engine = Engine::new(P);
        for (model, rho) in models_with_ratio() {
            let prep = PreparedGraph::new(&g);
            let curve = engine.energy_curve_exact(&prep, &model, LO, HI).unwrap();
            prop_assert!(!curve.segments.is_empty(), "{}", model.name());
            for s in &curve.segments {
                prop_assert!(
                    s.deadline_lo < s.deadline_hi,
                    "{}: empty segment [{}, {}]", model.name(), s.deadline_lo, s.deadline_hi
                );
            }
            for w in curve.segments.windows(2) {
                prop_assert!(
                    (w[0].deadline_hi - w[1].deadline_lo).abs()
                        <= 1e-9 * (1.0 + w[0].deadline_hi),
                    "{}: gap between segments", model.name()
                );
                // Non-increasing energy across the boundary (ρ slack
                // for the round-up paths' grid snapping).
                let (a, b) = (
                    w[0].energy_at(w[0].deadline_lo),
                    w[1].energy_at(w[1].deadline_lo),
                );
                prop_assert!(
                    b <= a * rho * (1.0 + 1e-6),
                    "{}: energy rose across boundary: {a} -> {b}", model.name()
                );
            }
        }
    }
}
