//! The simulator as an independent oracle: for every model, the
//! integrated power-trace energy must match the analytic accounting,
//! and solver schedules must replay cleanly (causality + mapping
//! consistency).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::sim::{check_mapping_consistency, gantt, simulate};
use reclaim::taskgraph::{analysis, generators};

const P: PowerLaw = PowerLaw::CUBIC;

#[test]
fn simulated_energy_matches_solver_for_every_model() {
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 3.0, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for seed in 0..4u64 {
        let app = generators::layered_dag(4, 3, 0.3, 1.0, 5.0, &mut rng);
        let mapping = list_schedule(&app, 2, Priority::BottomLevel);
        let exec = mapping.execution_graph(&app).unwrap();
        let d = (1.2 + seed as f64 * 0.3) * analysis::critical_path_weight(&exec) / modes.s_max();
        for model in [
            EnergyModel::continuous(modes.s_max()),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes.clone()),
            EnergyModel::Incremental(inc.clone()),
        ] {
            let sol = solve(&exec, d, &model, P).unwrap();
            let sim = simulate(&exec, &sol.schedule, P)
                .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
            assert!(
                (sim.energy - sol.energy).abs() <= 1e-6 * sol.energy,
                "{}: integrated {} vs analytic {}",
                model.name(),
                sim.energy,
                sol.energy
            );
            assert!(sim.makespan <= d * (1.0 + 1e-6));
            check_mapping_consistency(&exec, &sol.schedule, &mapping)
                .unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        }
    }
}

#[test]
fn peak_power_is_bounded_by_all_tasks_at_top_speed() {
    let modes = DiscreteModes::new(&[0.5, 1.5, 3.0]).unwrap();
    let g = generators::fork_join(1.0, &[2.0, 3.0, 2.0], 1.0);
    let d = 1.3 * analysis::critical_path_weight(&g) / modes.s_max();
    let sol = solve(&g, d, &EnergyModel::VddHopping(modes.clone()), P).unwrap();
    let sim = simulate(&g, &sol.schedule, P).unwrap();
    // At most 3 tasks run concurrently (the fork's middle layer), each
    // below s_max³ watts.
    let bound = 3.0 * P.power(modes.s_max());
    assert!(sim.trace.peak_power() <= bound * (1.0 + 1e-9));
    assert!(sim.trace.average_power() <= sim.trace.peak_power());
}

#[test]
fn slower_schedules_have_lower_peak_power() {
    // Speed scaling flattens the power curve: doubling the deadline
    // must not raise the peak.
    let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
    let model = EnergyModel::continuous_unbounded();
    let d0 = analysis::critical_path_weight(&g);
    let tight = simulate(&g, &solve(&g, d0, &model, P).unwrap().schedule, P).unwrap();
    let loose = simulate(&g, &solve(&g, 2.0 * d0, &model, P).unwrap().schedule, P).unwrap();
    assert!(loose.trace.peak_power() <= tight.trace.peak_power() * (1.0 + 1e-9));
    assert!(loose.energy < tight.energy);
}

#[test]
fn gantt_chart_renders_for_mapped_schedules() {
    let app = generators::diamond([1.0, 2.0, 3.0, 1.0]);
    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping.execution_graph(&app).unwrap();
    let sol = solve(&exec, 8.0, &EnergyModel::continuous(2.0), P).unwrap();
    let chart = gantt(&exec, &sol.schedule, &mapping, 40);
    assert_eq!(chart.lines().count(), 3); // 2 processors + time axis
    assert!(chart.contains("P0"));
    assert!(chart.contains("P1"));
}
