//! The edit layer's correctness contract, as properties:
//!
//! 1. **apply ≡ rebuild** — `PreparedInstance::apply(edits)` produces
//!    the same graph, the same content key (incrementally derived
//!    where possible), and the same solve result as rebuilding the
//!    edited instance from scratch, across all four energy models.
//! 2. **selective invalidation is real** — a weight-only batch
//!    followed by a solve recomputes *zero* structural analyses
//!    (topological order, classification, SP recognition, transitive
//!    reduction), observable through `taskgraph::profiling`.
//! 3. **structural edits repair, not rebuild** — a chain of random
//!    edge insertions/removals never re-derives the topological order
//!    or re-runs the transitive reduction, and re-recognizes SP
//!    structure at most once per splice miss — while every analysis
//!    and every model's solve stays bit-identical to a from-scratch
//!    rebuild.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reclaim::core::engine::{content_key, patched_key};
use reclaim::core::Engine;
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::edit::{apply_edits, GraphEdit};
use reclaim::taskgraph::{analysis, generators, profiling, PreparedInstance, TaskGraph};
use std::sync::Arc;

const P: PowerLaw = PowerLaw::CUBIC;

fn all_models() -> Vec<EnergyModel> {
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
    vec![
        EnergyModel::continuous_unbounded(),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes),
        EnergyModel::Incremental(IncrementalModes::new(0.5, 2.0, 0.5).unwrap()),
    ]
}

/// A random batch of `k` edits, each valid for the graph as left by
/// its predecessors (insertions follow the current topological order,
/// so they never introduce cycles; task additions attach forward).
fn random_edits(g: &TaskGraph, k: usize, rng: &mut StdRng) -> Vec<GraphEdit> {
    let mut cur = g.clone();
    let mut edits = Vec::with_capacity(k);
    for _ in 0..k {
        let order = analysis::topo_order_quiet(&cur);
        let n = cur.n();
        let candidate = match rng.gen_range(0..10) {
            // Weight edits dominate the mix — they are the hot case.
            0..=4 => GraphEdit::SetWeight {
                task: rng.gen_range(0..n),
                weight: rng.gen_range(0.25..4.0),
            },
            5 | 6 if n >= 2 => {
                let i = rng.gen_range(0..n - 1);
                let j = rng.gen_range(i + 1..n);
                GraphEdit::InsertEdge {
                    from: order[i].index(),
                    to: order[j].index(),
                }
            }
            7 if cur.m() > 0 => {
                let (u, v) = cur.edges()[rng.gen_range(0..cur.m())];
                GraphEdit::RemoveEdge {
                    from: u.index(),
                    to: v.index(),
                }
            }
            8 => {
                let cut = rng.gen_range(0..n + 1);
                let pick = |rng: &mut StdRng, lo: usize, hi: usize, cap: usize| {
                    let mut out: Vec<usize> = Vec::new();
                    for _ in 0..rng.gen_range(0..cap + 1) {
                        if lo < hi {
                            let p = order[rng.gen_range(lo..hi)].index();
                            if !out.contains(&p) {
                                out.push(p);
                            }
                        }
                    }
                    out
                };
                GraphEdit::AddTask {
                    weight: rng.gen_range(0.25..4.0),
                    preds: pick(rng, 0, cut, 2),
                    succs: pick(rng, cut, n, 2),
                }
            }
            _ if n > 1 => GraphEdit::RemoveTask {
                task: rng.gen_range(0..n),
            },
            _ => continue,
        };
        match apply_edits(&cur, std::slice::from_ref(&candidate)) {
            Ok((next, _)) => {
                cur = next;
                edits.push(candidate);
            }
            Err(e) => panic!("constructed edit must be valid: {candidate:?}: {e}"),
        }
    }
    edits
}

/// A random chain of `k` *structural* (edge-only) edits, each valid
/// for the graph as left by its predecessors — insertions follow the
/// current topological order, so they never introduce cycles.
fn random_structural_edits(g: &TaskGraph, k: usize, rng: &mut StdRng) -> Vec<GraphEdit> {
    let mut cur = g.clone();
    let mut edits = Vec::with_capacity(k);
    for _ in 0..k {
        let order = analysis::topo_order_quiet(&cur);
        let n = cur.n();
        let candidate = if cur.m() > 0 && rng.gen_bool(0.5) {
            let (u, v) = cur.edges()[rng.gen_range(0..cur.m())];
            GraphEdit::RemoveEdge {
                from: u.index(),
                to: v.index(),
            }
        } else {
            let i = rng.gen_range(0..n - 1);
            let j = rng.gen_range(i + 1..n);
            GraphEdit::InsertEdge {
                from: order[i].index(),
                to: order[j].index(),
            }
        };
        match apply_edits(&cur, std::slice::from_ref(&candidate)) {
            Ok((next, _)) => {
                cur = next;
                edits.push(candidate);
            }
            Err(e) => panic!("constructed edit must be valid: {candidate:?}: {e}"),
        }
    }
    edits
}

fn base_graph(seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    if seed.is_multiple_of(2) {
        generators::random_sp(10, 0.5, 0.5, 3.0, &mut rng).0
    } else {
        generators::random_dag(9, 0.35, 0.5, 3.0, &mut rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// apply(edits) ≡ rebuild-from-scratch: same graph, same content
    /// key (with the incremental delta agreeing whenever it applies),
    /// same solve result under every model.
    #[test]
    fn apply_equals_rebuild_across_models(seed in any::<u64>(), k in 1usize..6) {
        let g = base_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let edits = random_edits(&g, k, &mut rng);

        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        let patched = inst.apply(&edits).expect("edits were validated");
        let (rebuilt, _) = apply_edits(&g, &edits).unwrap();
        prop_assert_eq!(patched.graph(), &rebuilt);

        let engine = Engine::new(P).threads(1);
        for model in all_models() {
            // Same content identity…
            let full = content_key(&rebuilt, &model);
            prop_assert_eq!(content_key(patched.graph(), &model), full);
            // …and the incremental delta agrees whenever it applies
            // (task-set edits legitimately fall back to a full hash).
            if let Some(delta) = patched_key(content_key(&g, &model), &g, &edits) {
                prop_assert_eq!(delta, full);
            }
            // Same solve result as a from-scratch instance.
            let d = match model.top_speed() {
                Some(s) => 1.5 * analysis::critical_path_weight(&rebuilt) / s,
                None => analysis::critical_path_weight(&rebuilt),
            };
            let via_apply = engine.solve(&patched.view(), &model, d).unwrap();
            let fresh = PreparedInstance::new(Arc::new(rebuilt.clone()));
            let via_rebuild = engine.solve(&fresh.view(), &model, d).unwrap();
            prop_assert_eq!(via_apply.algorithm, via_rebuild.algorithm);
            prop_assert!(
                (via_apply.energy - via_rebuild.energy).abs()
                    <= 1e-6 * (1.0 + via_rebuild.energy),
                "model {}: {} vs {}", model.name(), via_apply.energy, via_rebuild.energy
            );
        }
    }

    /// Weight-only batches recompute zero structural analyses:
    ///
    /// * `apply` itself (plus reading the re-evaluated critical path)
    ///   runs no analysis pass at all;
    /// * a full solve of the patched instance runs exactly the passes
    ///   a *repeat* solve of the already-warm base runs — the edit
    ///   adds nothing. (Discrete/Incremental solvers derive some
    ///   per-solve orders internally; that cost is per solve, not per
    ///   edit, and the comparison cancels it out.)
    #[test]
    fn weight_only_edits_recompute_no_structure(seed in any::<u64>(), k in 1usize..5) {
        let g = base_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let edits: Vec<GraphEdit> = (0..k)
            .map(|_| GraphEdit::SetWeight {
                task: rng.gen_range(0..g.n()),
                weight: rng.gen_range(0.25..4.0),
            })
            .collect();
        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        let engine = Engine::new(P).threads(1);
        let solve_all = |inst: &PreparedInstance| {
            let cp = inst.view().critical_path_weight();
            for model in all_models() {
                let d = match model.top_speed() {
                    Some(s) => 1.5 * cp / s,
                    None => cp,
                };
                engine.solve(&inst.view(), &model, d).unwrap();
            }
        };

        // Baseline: what a repeat solve of the warm base costs.
        let before = profiling::counts();
        solve_all(&inst);
        let baseline = profiling::counts() - before;

        // The apply itself — and the re-evaluated critical path — run
        // zero analysis passes.
        let before = profiling::counts();
        let patched = inst.apply(&edits).unwrap();
        let _ = patched.view().critical_path_weight();
        let apply_delta = profiling::counts() - before;
        prop_assert_eq!(apply_delta.topo_order, 0, "apply must not re-derive the order");
        prop_assert_eq!(apply_delta.classify, 0, "apply must not re-classify");
        prop_assert_eq!(apply_delta.sp_from_graph, 0, "apply must not re-recognize SP");
        prop_assert_eq!(apply_delta.transitive_reduction, 0, "apply must not re-reduce");

        // Solving the patched instance costs exactly the baseline:
        // the weight edit invalidated nothing a solve would rebuild.
        let before = profiling::counts();
        solve_all(&patched);
        let patched_delta = profiling::counts() - before;
        prop_assert_eq!(patched_delta, baseline, "edit must add zero analysis passes");
    }

    /// Structural (edge-only) chains are *repaired*, not rebuilt:
    /// walking the chain one apply at a time (re-warming each step)
    /// never re-derives the topological order, never re-runs the
    /// transitive reduction, attempts at most one SP splice per step,
    /// and re-runs full SP recognition only for steps whose class was
    /// dropped — yet every carried analysis and every model's energy
    /// is bit-identical to a from-scratch rebuild.
    #[test]
    fn structural_chains_repair_locally(seed in any::<u64>(), k in 1usize..6) {
        let g = base_graph(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
        let edits = random_structural_edits(&g, k, &mut rng);

        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();

        // Walk the chain, forcing every lazy recompute inside the
        // measured window so each step is charged its full cost.
        let before = profiling::counts();
        let mut cur = inst;
        for e in &edits {
            cur = cur.apply(std::slice::from_ref(e)).unwrap();
            cur.warm();
        }
        let delta = profiling::counts() - before;

        // Counter upper bounds — the heart of the repair contract.
        prop_assert_eq!(delta.topo_order, 0, "order is carried or window-shifted, never re-derived");
        prop_assert_eq!(delta.transitive_reduction, 0, "the reduction is repaired edge-locally");
        prop_assert!(
            delta.sp_splice + delta.sp_splice_miss <= k as u64,
            "at most one splice attempt per step: {} + {} > {}",
            delta.sp_splice, delta.sp_splice_miss, k
        );
        prop_assert!(
            delta.classify + delta.sp_splice <= k as u64,
            "a spliced step must not also re-classify: {} + {} > {}",
            delta.classify, delta.sp_splice, k
        );
        prop_assert!(
            delta.sp_from_graph <= delta.classify,
            "full SP recognition only inside a lazy re-classification: {} > {}",
            delta.sp_from_graph, delta.classify
        );

        // apply ≡ rebuild, bit for bit. (All comparisons run after the
        // delta above — building the fresh twin bumps the same
        // thread-local counters.)
        let (rebuilt, _) = apply_edits(&g, &edits).unwrap();
        prop_assert_eq!(cur.graph(), &rebuilt);
        let fresh = PreparedInstance::new(Arc::new(rebuilt.clone()));
        let (pv, fv) = (cur.view(), fresh.view());
        prop_assert_eq!(pv.topo(), fv.topo());
        prop_assert_eq!(pv.shape(), fv.shape());
        prop_assert_eq!(pv.sp_tree(), fv.sp_tree());
        prop_assert_eq!(
            pv.critical_path_weight().to_bits(),
            fv.critical_path_weight().to_bits(),
            "repaired critical path must be bitwise-stable"
        );
        prop_assert_eq!(pv.reduced().edges(), fv.reduced().edges());

        let engine = Engine::new(P).threads(1);
        for model in all_models() {
            let d = match model.top_speed() {
                Some(s) => 1.5 * analysis::critical_path_weight(&rebuilt) / s,
                None => analysis::critical_path_weight(&rebuilt),
            };
            let via_apply = engine.solve(&cur.view(), &model, d).unwrap();
            let via_rebuild = engine.solve(&fresh.view(), &model, d).unwrap();
            prop_assert_eq!(via_apply.algorithm, via_rebuild.algorithm);
            prop_assert_eq!(
                via_apply.energy.to_bits(),
                via_rebuild.energy.to_bits(),
                "model {}: {} vs {}", model.name(), via_apply.energy, via_rebuild.energy
            );
        }
    }
}
