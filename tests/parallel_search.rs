//! Cross-crate coverage for the deterministic parallel
//! branch-and-bound: engine dispatch at several worker counts,
//! run-to-run reproducibility of the partition sweep, and the anytime
//! budget-trip contract.
//!
//! `RECLAIM_TEST_WORKERS=N` pins every parameterized test to one
//! worker count (CI runs the suite at 1 and at 4); without it each
//! test sweeps the interesting counts itself.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::discrete::{self, BnbConfig};
use reclaim::core::engine::par_bnb::{self, ParBnbConfig};
use reclaim::core::{continuous, Engine, SolveError, SolveOptions};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

/// Worker counts under test: the `RECLAIM_TEST_WORKERS` pin when set,
/// otherwise the sequential/parallel pair.
fn workers_under_test() -> Vec<usize> {
    match std::env::var("RECLAIM_TEST_WORKERS") {
        Ok(s) => vec![s.parse().expect("RECLAIM_TEST_WORKERS must be a count")],
        Err(_) => vec![1, 4],
    }
}

/// A 16-task series–parallel instance within the engine's tractable
/// limit, with a deadline tight enough that the search branches.
fn sp_instance() -> (TaskGraph, f64, DiscreteModes) {
    let mut rng = StdRng::seed_from_u64(21);
    let (g, _) = generators::random_sp(16, 0.55, 1.0, 4.0, &mut rng);
    let modes = DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap();
    let d = 1.3 * analysis::critical_path_weight(&g) / modes.s_max();
    (g, d, modes)
}

/// A chain whose hardness is a subset-selection over irregular
/// weights — enough branching that small node budgets genuinely trip.
fn hard_chain() -> (TaskGraph, f64, DiscreteModes) {
    let weights = vec![
        5.3, 8.1, 6.7, 7.4, 5.9, 9.2, 6.1, 8.8, 7.3, 5.6, 6.4, 9.7, 5.1, 7.8,
    ];
    let total: f64 = weights.iter().sum();
    let edges: Vec<(usize, usize)> = (0..weights.len() - 1).map(|i| (i, i + 1)).collect();
    let g = TaskGraph::new(weights, &edges).unwrap();
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    // Top speed takes total/2; grant ~a third of the full slowdown
    // budget so roughly half the tasks can afford the slow mode.
    (g, total / 2.0 + total / 6.0, modes)
}

#[test]
fn engine_dispatch_matches_across_worker_counts() {
    let (g, d, modes) = sp_instance();
    let baseline = Engine::new(P)
        .solve_graph(&g, &EnergyModel::Discrete(modes.clone()), d)
        .expect("sequential solve");
    assert_eq!(baseline.algorithm, "discrete-bnb");
    for w in workers_under_test() {
        let sol = Engine::new(P)
            .threads(w)
            .solve_graph(&g, &EnergyModel::Discrete(modes.clone()), d)
            .unwrap_or_else(|e| panic!("{w} workers: {e}"));
        let expect = if w >= 2 {
            "discrete-bnb-par"
        } else {
            "discrete-bnb"
        };
        assert_eq!(sol.algorithm, expect, "{w} workers");
        assert_eq!(
            sol.energy.to_bits(),
            baseline.energy.to_bits(),
            "{w} workers must reproduce the sequential optimum exactly"
        );
    }
}

#[test]
fn incremental_exact_takes_the_same_parallel_path() {
    let (g, d, _) = sp_instance();
    let modes = IncrementalModes::new(0.6, 2.4, 0.6).unwrap();
    let opts = SolveOptions {
        exact_incremental: true,
        ..Default::default()
    };
    let baseline = Engine::with_options(P, opts)
        .solve_graph(&g, &EnergyModel::Incremental(modes.clone()), d)
        .expect("sequential solve");
    assert_eq!(baseline.algorithm, "incremental-bnb");
    for w in workers_under_test() {
        let sol = Engine::with_options(P, opts)
            .threads(w)
            .solve_graph(&g, &EnergyModel::Incremental(modes.clone()), d)
            .unwrap_or_else(|e| panic!("{w} workers: {e}"));
        let expect = if w >= 2 {
            "incremental-bnb-par"
        } else {
            "incremental-bnb"
        };
        assert_eq!(sol.algorithm, expect, "{w} workers");
        assert_eq!(sol.energy.to_bits(), baseline.energy.to_bits());
    }
}

#[test]
fn partition_sweep_is_reproducible_at_every_width() {
    let (g, d, modes) = hard_chain();
    for partitions in [1usize, 2, 4, 8] {
        let cfg = ParBnbConfig {
            partitions,
            ..ParBnbConfig::with_workers(workers_under_test().into_iter().max().unwrap())
        };
        let a = par_bnb::exact_par(&g, d, &modes, P, &cfg).expect("first run");
        let b = par_bnb::exact_par(&g, d, &modes, P, &cfg).expect("second run");
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "{partitions} partitions"
        );
        assert_eq!(a.speeds, b.speeds, "{partitions} partitions");
        assert_eq!(
            a.partitions, b.partitions,
            "{partitions} partitions: per-partition node counts must be identical"
        );
    }
}

#[test]
fn budget_trip_returns_anytime_incumbent_below_round_up() {
    let (g, d, modes) = hard_chain();
    let full = discrete::exact(&g, d, &modes, P).expect("full solve");
    assert!(full.complete);
    assert!(
        full.stats.nodes > 40,
        "fixture too easy for a budget trip ({} nodes)",
        full.stats.nodes
    );

    // Warm-seeded search under a tripping budget: the incumbent (the
    // round-up, or better) comes back as an anytime result.
    let anytime = discrete::exact_with_config(
        &g,
        d,
        &modes,
        P,
        BnbConfig {
            node_budget: 40,
            ..Default::default()
        },
    )
    .expect("warm budget trip must carry the incumbent");
    assert!(!anytime.complete);
    assert!(anytime.gap() >= 0.0);
    let round_up = discrete::round_up(&g, d, &modes, P, None).expect("round-up");
    let e_round_up = continuous::energy_of_speeds(&g, &round_up, P);
    assert!(
        anytime.energy <= e_round_up * (1.0 + 1e-12),
        "anytime incumbent {} must not exceed its round-up seed {e_round_up}",
        anytime.energy
    );
    assert!(anytime.energy >= full.energy * (1.0 - 1e-12));

    // Cold and starved below the first leaf: the structured error.
    let starved = discrete::exact_with_budget(&g, d, &modes, P, 3, false);
    assert!(
        matches!(starved, Err(SolveError::BudgetExhausted { budget: 3, .. })),
        "got {starved:?}"
    );
}
