//! Property-based tests (proptest) on the paper's invariants.

use proptest::prelude::*;
use reclaim::core::{continuous, discrete, vdd};
use reclaim::models::{DiscreteModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators, SpTree, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

/// Strategy: a vector of 1–8 positive weights in [0.1, 10].
fn weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1f64..10.0, 1..8)
}

/// Strategy: a random DAG given an ordered edge mask.
fn random_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_dag(n, 0.4, 0.5, 5.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1's formula: every fork instance satisfies the closed
    /// form's stationarity — children all complete exactly at D.
    #[test]
    fn fork_children_complete_at_deadline(ws in weights(), w0 in 0.1f64..5.0) {
        prop_assume!(ws.len() >= 2);
        let g = generators::fork(w0, &ws);
        let d = 3.0;
        let speeds = continuous::solve_fork(&g, d, None, P).unwrap();
        let d0 = w0 / speeds[0];
        for (i, &w) in ws.iter().enumerate() {
            let completion = d0 + w / speeds[i + 1];
            prop_assert!((completion - d).abs() < 1e-6 * d);
        }
    }

    /// Chains: the optimal speed is constant and equals Σw/D.
    #[test]
    fn chain_constant_speed_property(ws in weights(), d in 0.5f64..20.0) {
        let g = generators::chain(&ws);
        let speeds = continuous::solve_chain(&g, d, None).unwrap();
        let expect = ws.iter().sum::<f64>() / d;
        for s in speeds {
            prop_assert!((s - expect).abs() < 1e-9 * expect.max(1.0));
        }
    }

    /// SP composition: optimal energy equals W_eq³/D² and the ASAP
    /// schedule meets the deadline exactly on some path.
    #[test]
    fn sp_energy_matches_equivalent_weight(seed in any::<u64>(), n in 2usize..12) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, tree) = generators::random_sp(n, 0.5, 0.5, 4.0, &mut rng);
        let d = 5.0;
        let speeds = continuous::solve_sp(&g, &tree, d, P).unwrap();
        let e = continuous::energy_of_speeds(&g, &speeds, P);
        let w_eq = continuous::equivalent_weight(&tree, &g, P);
        prop_assert!((e - w_eq.powi(3) / (d * d)).abs() < 1e-6 * e);
        // Feasibility.
        let durations: Vec<f64> = g.weights().iter().zip(&speeds).map(|(&w, &s)| w / s).collect();
        prop_assert!(analysis::makespan(&g, &durations) <= d * (1.0 + 1e-9));
    }

    /// The continuous optimum on any DAG is lower-bounded by the
    /// independent-tasks relaxation and upper-bounded by the
    /// uniform critical-path heuristic.
    #[test]
    fn general_solver_is_bracketed(g in random_dag()) {
        let cp = analysis::critical_path_weight(&g);
        let d = cp * 1.5;
        let speeds = continuous::solve_general(&g, d, None, P, None).unwrap();
        let e = continuous::energy_of_speeds(&g, &speeds, P);
        // Lower bound: each task alone in the whole window.
        let lb: f64 = g.weights().iter().map(|&w| P.energy_for_work(w, d)).sum();
        // Upper bound: every task at the uniform speed cp/D (feasible:
        // makespan = cp/(cp/D) = D).
        let s_uniform = cp / d;
        let ub: f64 = g.weights().iter().map(|&w| P.energy_at_speed(w, s_uniform)).sum();
        prop_assert!(e >= lb * (1.0 - 1e-6), "{e} < lb {lb}");
        prop_assert!(e <= ub * (1.0 + 1e-4), "{e} > ub {ub}");
        // Feasibility.
        let durations: Vec<f64> = g.weights().iter().zip(&speeds).map(|(&w, &s)| w / s).collect();
        prop_assert!(analysis::makespan(&g, &durations) <= d * (1.0 + 1e-6));
    }

    /// Vdd-Hopping never beats Continuous and never loses to the
    /// best single-mode-per-task (Discrete) assignment.
    #[test]
    fn vdd_sandwich(g in random_dag(), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(2usize..5);
        let speeds: Vec<f64> = (0..m).map(|i| 0.5 + i as f64 * rng.gen_range(0.3..1.0)).collect();
        let modes = DiscreteModes::new(&speeds).unwrap();
        let d = 1.4 * analysis::critical_path_weight(&g) / modes.s_max();
        let sched = vdd::solve_lp(&g, d, &modes, P).unwrap();
        let e_vdd = sched.energy(&g, P);
        let cont = continuous::solve(&g, d, Some(modes.s_max()), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        prop_assert!(e_vdd >= e_cont * (1.0 - 1e-5), "vdd {e_vdd} < cont {e_cont}");
        if g.n() <= 6 {
            let e_disc = discrete::exact(&g, d, &modes, P).unwrap().energy;
            prop_assert!(e_vdd <= e_disc * (1.0 + 1e-6), "vdd {e_vdd} > disc {e_disc}");
        }
    }

    /// Proposition 1(b) bound holds on random instances.
    #[test]
    fn rounding_respects_prop1b(g in random_dag(), seed in any::<u64>()) {
        prop_assume!(g.n() <= 6);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut speeds = vec![0.6, 3.0];
        for _ in 0..2 {
            speeds.push(rng.gen_range(0.6f64..3.0));
        }
        let modes = DiscreteModes::new(&speeds).unwrap();
        let d = 1.5 * analysis::critical_path_weight(&g) / modes.s_max();
        let k = 10u32;
        let alg = discrete::round_up(&g, d, &modes, P, Some(k)).unwrap();
        let e_alg = continuous::energy_of_speeds(&g, &alg, P);
        let opt = discrete::exact(&g, d, &modes, P).unwrap().energy;
        let bound = (1.0 + modes.max_gap() / modes.s_min()).powi(2)
            * (1.0 + 1.0 / k as f64).powi(2);
        prop_assert!(e_alg <= opt * bound * (1.0 + 1e-6),
            "ratio {} > bound {bound}", e_alg / opt);
    }

    /// SP recognition round-trip: generated SP graphs are recognized,
    /// and the recognized decomposition yields the same optimal energy.
    #[test]
    fn sp_recognition_roundtrip(seed in any::<u64>(), n in 1usize..15) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, tree) = generators::random_sp(n, 0.5, 0.5, 4.0, &mut rng);
        let rec = SpTree::from_graph(&g);
        prop_assert!(rec.is_some(), "generated SP graph not recognized");
        let d = 4.0;
        let e1 = continuous::energy_of_speeds(
            &g, &continuous::solve_sp(&g, &tree, d, P).unwrap(), P);
        let e2 = continuous::energy_of_speeds(
            &g, &continuous::solve_sp(&g, &rec.unwrap(), d, P).unwrap(), P);
        prop_assert!((e1 - e2).abs() <= 1e-9 * e1.max(1.0),
            "different decompositions disagree: {e1} vs {e2}");
    }

    /// Reversal invariance: MinEnergy is symmetric under time reversal.
    #[test]
    fn reversal_invariance(g in random_dag()) {
        let d = 1.5 * analysis::critical_path_weight(&g);
        let e_fwd = continuous::energy_of_speeds(
            &g, &continuous::solve_general(&g, d, None, P, None).unwrap(), P);
        let rev = g.reversed();
        let e_rev = continuous::energy_of_speeds(
            &rev, &continuous::solve_general(&rev, d, None, P, None).unwrap(), P);
        prop_assert!((e_fwd - e_rev).abs() <= 1e-4 * e_fwd.max(1.0),
            "{e_fwd} vs {e_rev}");
    }
}
