//! Differential property tests: the prepared-instance engine must be
//! observationally identical to the seed `solve_with` dispatcher
//! (retained as `solver::reference`) across all four energy models ×
//! the generator shapes, and the threaded batch APIs must match
//! sequential solving in order and values.

use proptest::prelude::*;
use reclaim::core::solver::reference;
use reclaim::core::{Engine, SolveOptions};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators, PreparedGraph, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

/// Every model family, over a top speed of 2.0 so one deadline scale
/// fits all.
fn all_models() -> Vec<EnergyModel> {
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
    vec![
        EnergyModel::continuous_unbounded(),
        EnergyModel::continuous(2.0),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes),
        EnergyModel::Incremental(IncrementalModes::new(0.5, 2.0, 0.5).unwrap()),
    ]
}

/// Strategy: a graph from each generator family the dispatch table
/// distinguishes (chain, fork, join, tree, series–parallel, general
/// DAG), seeded for reproducibility.
fn any_shape() -> impl Strategy<Value = TaskGraph> {
    (0usize..6, any::<u64>()).prop_map(|(family, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            0 => generators::chain(&generators::random_weights(4, 0.5, 3.0, &mut rng)),
            1 => generators::fork(1.0, &generators::random_weights(4, 0.5, 3.0, &mut rng)),
            2 => generators::join(&generators::random_weights(4, 0.5, 3.0, &mut rng), 1.0),
            3 => generators::random_out_tree(6, 0.5, 3.0, &mut rng),
            4 => generators::random_sp(6, 0.5, 0.5, 3.0, &mut rng).0,
            _ => generators::random_dag(6, 0.4, 0.5, 3.0, &mut rng),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine == seed dispatcher: same algorithm tag, energy within
    /// 1e-9, same per-task speeds, for every model × shape.
    #[test]
    fn engine_matches_seed_dispatch(g in any_shape(), tightness in 1.1f64..4.0) {
        let d = tightness * analysis::critical_path_weight(&g) / 2.0;
        let opts = SolveOptions::default();
        let engine = Engine::with_options(P, opts);
        for model in all_models() {
            let prep = PreparedGraph::new(&g);
            let new = engine.solve(&prep, &model, d);
            let old = reference::solve_with(&g, d, &model, P, opts);
            match (new, old) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.algorithm, b.algorithm, "{}", model.name());
                    prop_assert!(
                        (a.energy - b.energy).abs() <= 1e-9 * (1.0 + b.energy),
                        "{}: engine {} vs seed {}", model.name(), a.energy, b.energy
                    );
                    let (sa, sb) = (a.schedule.constant_speeds(), b.schedule.constant_speeds());
                    prop_assert_eq!(sa.is_some(), sb.is_some());
                    if let (Some(sa), Some(sb)) = (sa, sb) {
                        for (x, y) in sa.iter().zip(&sb) {
                            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()));
                        }
                    }
                }
                (Err(a), Err(b)) => {
                    // Same error class (the engine pre-checks
                    // feasibility centrally, so messages may differ).
                    prop_assert_eq!(
                        std::mem::discriminant(&a),
                        std::mem::discriminant(&b),
                        "{}: {a} vs {b}", model.name()
                    );
                }
                (a, b) => prop_assert!(false, "{}: {a:?} vs {b:?}", model.name()),
            }
        }
    }

    /// Exact-incremental opt-in takes the same path in both worlds.
    #[test]
    fn engine_matches_seed_exact_incremental(seed in any::<u64>(), tightness in 1.2f64..3.0) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_sp(5, 0.5, 0.5, 2.0, &mut rng).0;
        let d = tightness * analysis::critical_path_weight(&g) / 2.0;
        let model = EnergyModel::Incremental(IncrementalModes::new(0.5, 2.0, 0.75).unwrap());
        let opts = SolveOptions { exact_incremental: true, ..Default::default() };
        let new = Engine::with_options(P, opts).solve_graph(&g, &model, d);
        let old = reference::solve_with(&g, d, &model, P, opts);
        match (new, old) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.algorithm, b.algorithm);
                prop_assert!((a.energy - b.energy).abs() <= 1e-9 * (1.0 + b.energy));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
        }
    }

    /// `solve_batch` over threads returns the same results, in the
    /// same order, as a one-worker (sequential) engine.
    #[test]
    fn threaded_batch_matches_sequential(seeds in prop::collection::vec(any::<u64>(), 3..6), tightness in 1.2f64..3.0) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let graphs: Vec<TaskGraph> = seeds
            .iter()
            .map(|&s| {
                let mut rng = StdRng::seed_from_u64(s);
                generators::random_dag(5, 0.4, 0.5, 3.0, &mut rng)
            })
            .collect();
        let jobs: Vec<(&TaskGraph, f64)> = graphs
            .iter()
            .map(|g| (g, tightness * analysis::critical_path_weight(g) / 2.0))
            .collect();
        for model in all_models() {
            let sequential = Engine::new(P).threads(1).solve_batch(&model, &jobs);
            let threaded = Engine::new(P).threads(4).solve_batch(&model, &jobs);
            prop_assert_eq!(sequential.len(), threaded.len());
            for (s, t) in sequential.iter().zip(&threaded) {
                match (s, t) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.algorithm, b.algorithm);
                        prop_assert!((a.energy - b.energy).abs() <= 1e-9 * (1.0 + b.energy));
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(
                        std::mem::discriminant(a),
                        std::mem::discriminant(b)
                    ),
                    (a, b) => prop_assert!(false, "{}: {a:?} vs {b:?}", model.name()),
                }
            }
        }
    }

    /// `solve_deadlines` shares one prepared graph across workers and
    /// still matches point-by-point solves.
    #[test]
    fn shared_prepared_graph_matches_pointwise(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_sp(8, 0.5, 0.5, 3.0, &mut rng).0;
        let cp = analysis::critical_path_weight(&g);
        let deadlines: Vec<f64> = (0..6).map(|k| cp * (0.6 + 0.2 * k as f64)).collect();
        let model = EnergyModel::continuous(2.0);
        let engine = Engine::new(P).threads(3);
        let prep = PreparedGraph::new(&g);
        let batch = engine.solve_deadlines(&prep, &model, &deadlines);
        for (r, &d) in batch.iter().zip(&deadlines) {
            let direct = reference::solve_with(&g, d, &model, P, SolveOptions::default());
            match (r, direct) {
                (Ok(a), Ok(b)) => prop_assert!((a.energy - b.energy).abs() <= 1e-9 * (1.0 + b.energy)),
                (Err(a), Err(b)) => prop_assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(&b)
                ),
                (a, b) => prop_assert!(false, "{a:?} vs {b:?}"),
            }
        }
    }
}
