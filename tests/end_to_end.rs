//! End-to-end integration: application graph → fixed mapping →
//! execution graph → every solver → validated schedule.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::{solve, solve_with, SolveOptions};
use reclaim::mapping::{list_schedule, random_mapping, round_robin, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators};

const P: PowerLaw = PowerLaw::CUBIC;

fn all_models(modes: &DiscreteModes, inc: &IncrementalModes) -> Vec<EnergyModel> {
    vec![
        EnergyModel::continuous_unbounded(),
        EnergyModel::continuous(modes.s_max()),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes.clone()),
        EnergyModel::Incremental(inc.clone()),
    ]
}

#[test]
fn pipeline_from_random_app_to_all_solvers() {
    let mut rng = StdRng::seed_from_u64(99);
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 3.0, 0.5).unwrap();
    for seed in 0..5u64 {
        let app = generators::layered_dag(4, 3, 0.3, 1.0, 5.0, &mut rng);
        let mapping = match seed % 3 {
            0 => list_schedule(&app, 2, Priority::BottomLevel),
            1 => round_robin(&app, 3),
            _ => random_mapping(&app, 2, &mut rng),
        };
        let exec = mapping.execution_graph(&app).unwrap();
        let d = 1.5 * analysis::critical_path_weight(&exec) / modes.s_max();
        for model in all_models(&modes, &inc) {
            let sol = solve(&exec, d, &model, P)
                .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}", model.name()));
            // The solver validated it already; double-check externally.
            sol.schedule.validate(&exec, &model, d).unwrap();
            assert!(sol.energy.is_finite() && sol.energy > 0.0);
        }
    }
}

#[test]
fn model_dominance_chain_holds_across_instances() {
    // The paper's intuition chain:
    //   E_cont(unbounded) ≤ E_cont(s_max) ≤ E_vdd ≤ E_disc
    // and E_disc ≤ E_incremental-on-subgrid when the discrete set
    // contains the grid (here they coincide).
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 3.0, 0.5).unwrap();
    let mut rng = StdRng::seed_from_u64(123);
    for seed in 0..4u64 {
        let app = generators::layered_dag(4, 3, 0.35, 1.0, 4.0, &mut rng);
        let mapping = list_schedule(&app, 2, Priority::BottomLevel);
        let exec = mapping.execution_graph(&app).unwrap();
        let d = 1.3 * analysis::critical_path_weight(&exec) / modes.s_max();
        let e = |m: &EnergyModel| solve(&exec, d, m, P).unwrap().energy;
        let e_unb = e(&EnergyModel::continuous_unbounded());
        let e_cap = e(&EnergyModel::continuous(modes.s_max()));
        let e_vdd = e(&EnergyModel::VddHopping(modes.clone()));
        let e_disc = e(&EnergyModel::Discrete(modes.clone()));
        let e_inc = solve_with(
            &exec,
            d,
            &EnergyModel::Incremental(inc.clone()),
            P,
            SolveOptions {
                exact_incremental: true,
                ..Default::default()
            },
        )
        .unwrap()
        .energy;
        let tol = 1.0 + 1e-6;
        assert!(e_unb <= e_cap * tol, "seed {seed}: {e_unb} > {e_cap}");
        assert!(e_cap <= e_vdd * tol, "seed {seed}: {e_cap} > {e_vdd}");
        assert!(e_vdd <= e_disc * tol, "seed {seed}: {e_vdd} > {e_disc}");
        assert!(
            (e_disc - e_inc).abs() <= 1e-6 * e_disc,
            "seed {seed}: identical mode sets must give identical optima"
        );
    }
}

#[test]
fn serialization_edges_increase_energy() {
    // Mapping more tasks on fewer processors can only restrict the
    // schedule, so the optimal energy is monotone in processor count
    // reduction (for the same deadline).
    let mut rng = StdRng::seed_from_u64(7);
    let app = generators::layered_dag(3, 4, 0.3, 1.0, 4.0, &mut rng);
    let d = app.total_work(); // loose enough for the 1-processor case
    let mut prev = f64::INFINITY;
    for procs in [1usize, 2, 4] {
        let exec = list_schedule(&app, procs, Priority::BottomLevel)
            .execution_graph(&app)
            .unwrap();
        let e = solve(&exec, d, &EnergyModel::continuous_unbounded(), P)
            .unwrap()
            .energy;
        assert!(
            e <= prev * (1.0 + 1e-9),
            "more processors must not increase optimal energy: {e} > {prev}"
        );
        prev = e;
    }
}

#[test]
fn energy_monotone_in_deadline() {
    let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    let mut rng = StdRng::seed_from_u64(55);
    let app = generators::layered_dag(4, 3, 0.3, 1.0, 4.0, &mut rng);
    let exec = list_schedule(&app, 2, Priority::BottomLevel)
        .execution_graph(&app)
        .unwrap();
    let dmin = analysis::critical_path_weight(&exec) / modes.s_max();
    for model in [
        EnergyModel::continuous(modes.s_max()),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes.clone()),
    ] {
        let mut prev = f64::INFINITY;
        for tight in [1.05, 1.3, 1.8, 2.5, 4.0] {
            let e = solve(&exec, tight * dmin, &model, P).unwrap().energy;
            assert!(
                e <= prev * (1.0 + 1e-6),
                "{}: energy must not increase with a looser deadline",
                model.name()
            );
            prev = e;
        }
    }
}

#[test]
fn infeasible_below_dmin_feasible_above() {
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    let g = generators::chain(&[2.0, 2.0, 2.0]);
    let dmin = g.total_work() / modes.s_max(); // 3.0
    for model in [
        EnergyModel::continuous(2.0),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes.clone()),
    ] {
        assert!(
            solve(&g, dmin * 0.99, &model, P).is_err(),
            "{}",
            model.name()
        );
        assert!(
            solve(&g, dmin * 1.01, &model, P).is_ok(),
            "{}",
            model.name()
        );
    }
}

#[test]
fn continuous_scaling_law_on_mapped_graphs() {
    // E*(λD) = E*(D)/λ² for the Continuous model without s_max.
    let mut rng = StdRng::seed_from_u64(31);
    let app = generators::layered_dag(3, 3, 0.4, 1.0, 4.0, &mut rng);
    let exec = list_schedule(&app, 2, Priority::BottomLevel)
        .execution_graph(&app)
        .unwrap();
    let d0 = analysis::critical_path_weight(&exec);
    let model = EnergyModel::continuous_unbounded();
    let e0 = solve(&exec, d0, &model, P).unwrap().energy;
    for lambda in [1.5, 2.0, 4.0] {
        let e = solve(&exec, lambda * d0, &model, P).unwrap().energy;
        let expect = e0 / (lambda * lambda);
        assert!(
            (e - expect).abs() <= 1e-4 * expect,
            "λ={lambda}: {e} vs {expect}"
        );
    }
}
