//! Every file in `instances/` must parse, solve, validate, and replay
//! in the simulator.

use reclaim::cli::parse;
use reclaim::models::PowerLaw;
use reclaim::sim::simulate;

#[test]
fn corpus_parses_solves_and_replays() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/instances");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("instances/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("inst") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let inst = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let sol = reclaim::core::solve(&inst.graph, inst.deadline, &inst.model, PowerLaw::CUBIC)
            .unwrap_or_else(|e| panic!("{}: solve failed: {e}", path.display()));
        // Validate externally and replay in the simulator.
        sol.schedule
            .validate(&inst.graph, &inst.model, inst.deadline)
            .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", path.display()));
        let sim = simulate(&inst.graph, &sol.schedule, PowerLaw::CUBIC)
            .unwrap_or_else(|e| panic!("{}: simulation rejected: {e}", path.display()));
        assert!(
            (sim.energy - sol.energy).abs() <= 1e-6 * sol.energy,
            "{}: energy drift",
            path.display()
        );
        if let Some(m) = &inst.mapping {
            reclaim::sim::check_mapping_consistency(&inst.graph, &sol.schedule, m)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    }
    assert!(seen >= 4, "expected the shipped corpus, found {seen} files");
}

#[test]
fn corpus_covers_all_four_models() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/instances");
    let mut names = std::collections::HashSet::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("inst") {
            continue;
        }
        let inst = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        names.insert(inst.model.name());
    }
    for required in ["Continuous", "Discrete", "Vdd-Hopping", "Incremental"] {
        assert!(
            names.contains(required),
            "corpus missing a {required} instance"
        );
    }
}
