//! Dispatch coverage for `reclaim_core::solve`: one case per
//! `EnergyModel` variant × graph shape (fork, tree, series–parallel,
//! general DAG), verifying the solver routing documented in
//! `crates/core/src/lib.rs`:
//!
//! * Continuous → Theorem 1/2 closed forms on recognized shapes, the
//!   §2.1 geometric program on general DAGs (checked by comparing the
//!   dispatched energy against the shape solver invoked directly);
//! * Vdd-Hopping → the Theorem 3 LP on every shape;
//! * Discrete → exact branch-and-bound within the tractable limit,
//!   Proposition 1(b) rounding beyond it;
//! * Incremental → the Theorem 5 approximation by default, exact
//!   branch-and-bound on request.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::{continuous, solve, solve_with, SolveOptions};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators, structure, SpTree, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

/// The four shapes the dispatch table distinguishes, with a deadline
/// loose enough to be feasible for every model below (top speed 2.0).
fn shapes() -> Vec<(&'static str, TaskGraph, f64)> {
    let fork = generators::fork(1.0, &[2.0, 1.0, 3.0]);
    let mut rng = StdRng::seed_from_u64(7);
    let tree = generators::random_out_tree(6, 0.5, 2.0, &mut rng);
    // fork-join = proper series–parallel (not a fork, not a tree).
    let sp = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
    // Interleaved precedence: the canonical non-SP pattern.
    let general = TaskGraph::new(
        vec![1.0, 2.0, 1.5, 1.0],
        &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)],
    )
    .unwrap();
    [
        ("fork", fork),
        ("tree", tree),
        ("series-parallel", sp),
        ("general", general),
    ]
    .into_iter()
    .map(|(name, g)| {
        // Twice the minimum makespan at the top speed (2.0) of every
        // mode set used below.
        let d = 2.0 * analysis::critical_path_weight(&g) / 2.0;
        (name, g, d)
    })
    .collect()
}

#[test]
fn shape_fixtures_classify_as_intended() {
    let classes: Vec<structure::Shape> = shapes()
        .iter()
        .map(|(_, g, _)| structure::classify(g))
        .collect();
    assert_eq!(classes[0], structure::Shape::Fork);
    assert_eq!(classes[1], structure::Shape::OutTree);
    assert_eq!(classes[2], structure::Shape::SeriesParallel);
    assert_eq!(classes[3], structure::Shape::General);
}

/// Continuous: the unified dispatcher must agree with the
/// shape-specific closed form (or the geometric program) invoked
/// directly — evidence it routed to the documented solver.
#[test]
fn continuous_routes_to_shape_solvers() {
    for (name, g, d) in shapes() {
        let sol = solve(&g, d, &EnergyModel::continuous_unbounded(), P)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sol.algorithm, "continuous", "{name}");

        let direct = match name {
            "fork" => continuous::solve_fork(&g, d, None, P).unwrap(),
            "tree" => continuous::solve_tree(&g, d, P).unwrap(),
            "series-parallel" => {
                let tree = SpTree::from_graph(&g).expect("SP fixture");
                continuous::solve_sp(&g, &tree, d, P).unwrap()
            }
            _ => continuous::solve_general(&g, d, None, P, None).unwrap(),
        };
        let e_direct = continuous::energy_of_speeds(&g, &direct, P);
        let tol = if name == "general" { 1e-4 } else { 1e-9 };
        assert!(
            (sol.energy - e_direct).abs() <= tol * e_direct.max(1.0),
            "{name}: dispatched {} vs direct {e_direct}",
            sol.energy
        );
    }
}

#[test]
fn vdd_routes_to_lp_on_every_shape() {
    let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    for (name, g, d) in shapes() {
        let sol = solve(&g, d, &EnergyModel::VddHopping(modes.clone()), P)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sol.algorithm, "vdd-lp", "{name}");
        assert!(sol.schedule.makespan(&g) <= d * (1.0 + 1e-6), "{name}");
    }
}

#[test]
fn discrete_routes_to_bnb_then_rounding() {
    let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    for (name, g, d) in shapes() {
        // Small fixtures are within the default exact limit.
        let sol = solve(&g, d, &EnergyModel::Discrete(modes.clone()), P)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sol.algorithm, "discrete-bnb", "{name}");

        // Forcing the limit below n routes to Proposition 1(b).
        let opts = SolveOptions {
            exact_discrete_limit: 0,
            ..Default::default()
        };
        let rounded = solve_with(&g, d, &EnergyModel::Discrete(modes.clone()), P, opts)
            .unwrap_or_else(|e| panic!("{name} (rounding): {e}"));
        assert_eq!(rounded.algorithm, "discrete-round-up", "{name}");
        // The approximation can never beat the exact optimum.
        assert!(
            rounded.energy >= sol.energy * (1.0 - 1e-9),
            "{name}: rounded {} < exact {}",
            rounded.energy,
            sol.energy
        );
    }
}

#[test]
fn incremental_routes_to_approx_then_exact() {
    let modes = IncrementalModes::new(0.5, 2.0, 0.25).unwrap();
    for (name, g, d) in shapes() {
        let sol = solve(&g, d, &EnergyModel::Incremental(modes.clone()), P)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sol.algorithm, "incremental-approx", "{name}");

        let opts = SolveOptions {
            exact_incremental: true,
            ..Default::default()
        };
        let exact = solve_with(&g, d, &EnergyModel::Incremental(modes.clone()), P, opts)
            .unwrap_or_else(|e| panic!("{name} (exact): {e}"));
        assert_eq!(exact.algorithm, "incremental-bnb", "{name}");
        assert!(
            exact.energy <= sol.energy * (1.0 + 1e-9),
            "{name}: exact {} > approx {}",
            exact.energy,
            sol.energy
        );
    }
}
