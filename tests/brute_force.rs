//! Cross-validation against brute force on tiny instances: the
//! branch-and-bound must agree *exactly* with full enumeration, and
//! the Vdd LP must lower-bound it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::{continuous, discrete, vdd};
use reclaim::models::{DiscreteModes, PowerLaw};
use reclaim::taskgraph::{analysis, generators, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

/// Enumerate every mode assignment; return the minimum feasible
/// energy (None if no assignment meets the deadline).
fn brute_force(g: &TaskGraph, d: f64, modes: &DiscreteModes) -> Option<f64> {
    let n = g.n();
    let m = modes.m();
    let total = m.pow(n as u32);
    let mut best: Option<f64> = None;
    for code in 0..total {
        let mut c = code;
        let mut speeds = Vec::with_capacity(n);
        for _ in 0..n {
            speeds.push(modes.speeds()[c % m]);
            c /= m;
        }
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        if analysis::makespan(g, &durations) <= d * (1.0 + 1e-12) {
            let e = continuous::energy_of_speeds(g, &speeds, P);
            best = Some(best.map_or(e, |b: f64| b.min(e)));
        }
    }
    best
}

fn tiny_instance() -> impl Strategy<Value = (TaskGraph, DiscreteModes, f64)> {
    (2usize..6, any::<u64>(), 2usize..4, 1.05f64..2.5).prop_map(|(n, seed, m, tight)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_dag(n, 0.4, 0.5, 4.0, &mut rng);
        use rand::Rng;
        let mut speeds = vec![0.5, 2.5];
        for _ in 0..m.saturating_sub(2) {
            speeds.push(rng.gen_range(0.5f64..2.5));
        }
        let modes = DiscreteModes::new(&speeds).unwrap();
        let d = tight * analysis::critical_path_weight(&g) / modes.s_max();
        (g, modes, d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bnb_matches_brute_force((g, modes, d) in tiny_instance()) {
        let brute = brute_force(&g, d, &modes);
        let bnb = discrete::exact(&g, d, &modes, P);
        match (brute, bnb) {
            (Some(b), Ok(sol)) => {
                prop_assert!((sol.energy - b).abs() <= 1e-9 * b.max(1.0),
                    "bnb {} vs brute {}", sol.energy, b);
            }
            (None, Err(_)) => {}
            (b, r) => prop_assert!(false, "disagree: brute {b:?}, bnb {:?}",
                r.map(|s| s.energy)),
        }
    }

    #[test]
    fn vdd_lp_lower_bounds_brute_force((g, modes, d) in tiny_instance()) {
        if let Some(brute) = brute_force(&g, d, &modes) {
            let sched = vdd::solve_lp(&g, d, &modes, P).unwrap();
            let e_vdd = sched.energy(&g, P);
            prop_assert!(e_vdd <= brute * (1.0 + 1e-6),
                "vdd {e_vdd} must not exceed the discrete optimum {brute}");
        }
    }

    #[test]
    fn greedy_and_roundup_feasible_and_above_brute((g, modes, d) in tiny_instance()) {
        if let Some(brute) = brute_force(&g, d, &modes) {
            if let Ok(sp) = discrete::greedy_slowdown(&g, d, &modes, P) {
                let e = continuous::energy_of_speeds(&g, &sp, P);
                prop_assert!(e >= brute * (1.0 - 1e-9));
            }
            if let Ok(sp) = discrete::round_up(&g, d, &modes, P, None) {
                let e = continuous::energy_of_speeds(&g, &sp, P);
                prop_assert!(e >= brute * (1.0 - 1e-9));
            }
        }
    }
}
