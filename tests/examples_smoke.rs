//! Smoke test for the `quickstart` example path: the exact pipeline
//! the example walks (app graph → frozen list-schedule mapping →
//! execution graph → `reclaim::core::solve` → validated schedule) must
//! run end-to-end through the facade and produce a feasible,
//! deadline-respecting solution that beats the naive all-at-s_max
//! schedule.

use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{EnergyModel, PowerLaw};
use reclaim::taskgraph::{dot, TaskGraph};

#[test]
fn quickstart_path_runs_end_to_end() {
    // Same instance as examples/quickstart.rs.
    let app = TaskGraph::new(vec![2.0, 3.0, 5.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)])
        .expect("valid DAG");

    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping
        .execution_graph(&app)
        .expect("mapping respects precedence");
    assert_eq!(exec.n(), app.n(), "mapping must not add or drop tasks");
    assert!(exec.m() >= app.m(), "serialization can only add edges");

    let deadline = 8.0;
    let model = EnergyModel::continuous(2.0);
    let sol = solve(&exec, deadline, &model, PowerLaw::CUBIC).expect("quickstart instance solves");

    // Feasible and deadline-respecting, per the model's own validator
    // and an independent makespan check.
    sol.schedule
        .validate(&exec, &model, deadline)
        .expect("schedule validates");
    assert!(sol.schedule.makespan(&exec) <= deadline * (1.0 + 1e-9));
    assert!(sol.energy > 0.0);
    assert_eq!(sol.algorithm, "continuous");

    // It actually reclaims energy versus running flat out at s_max.
    let naive: f64 = exec
        .tasks()
        .map(|t| PowerLaw::CUBIC.energy_at_speed(exec.weight(t), 2.0))
        .sum();
    assert!(
        sol.energy < naive,
        "optimal {} must beat naive {naive}",
        sol.energy
    );

    // The DOT export the example ends with stays renderable.
    let rendered = dot::to_dot(&exec);
    assert!(rendered.contains("digraph"));
}

#[test]
fn quickstart_solution_is_optimal_for_the_relaxation() {
    // Sanity anchor: on the quickstart's execution graph the optimal
    // energy can never beat the independent-tasks lower bound.
    let app = TaskGraph::new(vec![2.0, 3.0, 5.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping.execution_graph(&app).unwrap();
    let deadline = 8.0;
    let sol = solve(
        &exec,
        deadline,
        &EnergyModel::continuous(2.0),
        PowerLaw::CUBIC,
    )
    .unwrap();
    let lower_bound: f64 = exec
        .weights()
        .iter()
        .map(|&w| PowerLaw::CUBIC.energy_for_work(w, deadline))
        .sum();
    assert!(sol.energy >= lower_bound * (1.0 - 1e-9));
}
