//! Property tests for the bicriteria inversion: deadline → energy →
//! deadline must round-trip, and the returned deadline is minimal.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::bicriteria::min_deadline_for_budget;
use reclaim::core::solve;
use reclaim::models::{DiscreteModes, EnergyModel, PowerLaw};
use reclaim::taskgraph::{analysis, generators, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_dag(n, 0.35, 0.5, 4.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn continuous_roundtrip(g in arb_graph(), factor in 1.2f64..4.0) {
        let model = EnergyModel::continuous_unbounded();
        let d0 = factor * analysis::critical_path_weight(&g);
        let e0 = solve(&g, d0, &model, P).unwrap().energy;
        let d = min_deadline_for_budget(&g, &model, P, e0, 1e-9).unwrap();
        prop_assert!((d - d0).abs() <= 1e-5 * d0, "{d} vs {d0}");
    }

    #[test]
    fn bounded_models_inversion_is_minimal(
        g in arb_graph(),
        factor in 1.1f64..3.0,
        budget_slack in 1.01f64..1.5,
    ) {
        let modes = DiscreteModes::new(&[0.5, 1.5, 3.0]).unwrap();
        for model in [
            EnergyModel::continuous(3.0),
            EnergyModel::VddHopping(modes.clone()),
        ] {
            let d0 = factor * analysis::critical_path_weight(&g) / 3.0;
            let e0 = solve(&g, d0, &model, P).unwrap().energy;
            let budget = e0 * budget_slack;
            let d = min_deadline_for_budget(&g, &model, P, budget, 1e-6).unwrap();
            // Respects the budget…
            let e = solve(&g, d, &model, P).unwrap().energy;
            prop_assert!(e <= budget * (1.0 + 1e-6));
            // …is no looser than the probe deadline…
            prop_assert!(d <= d0 * (1.0 + 1e-6));
            // …and is minimal up to the bisection tolerance: slightly
            // tighter deadlines need more than the budget (skip when d
            // is already at the feasibility floor).
            let d_floor = analysis::critical_path_weight(&g) / 3.0;
            let d_tighter = d * (1.0 - 1e-3);
            if d_tighter > d_floor * (1.0 + 1e-9) {
                let e_tight = solve(&g, d_tighter, &model, P).unwrap().energy;
                prop_assert!(e_tight >= budget * (1.0 - 1e-2),
                    "{}: {e_tight} far below budget {budget} at a tighter deadline",
                    model.name());
            }
        }
    }
}
