//! # reclaim — facade crate
//!
//! Re-exports the whole workspace behind one dependency, hosts the
//! runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).
//!
//! Start with [`reclaim_core::solve`] and the `quickstart` example.

pub use convex;
pub use lp;
pub use mapping;
pub use models;
pub use reclaim_cli as cli;
pub use reclaim_core as core;
pub use reclaim_service as service;
pub use report;
pub use sim;
pub use taskgraph;
