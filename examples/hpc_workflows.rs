//! Energy study on classic HPC workflow structures: FFT butterflies,
//! tiled LU, stencil wavefronts, divide-and-conquer, and Gaussian
//! elimination — mapped by list scheduling, then speed-scaled under a
//! deadline.
//!
//! ```text
//! cargo run --release --example hpc_workflows
//! ```

use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, PowerLaw};
use reclaim::report::Table;
use reclaim::taskgraph::{analysis, metrics, workflows, TaskGraph};

fn main() {
    let p = PowerLaw::CUBIC;
    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();

    let cases: Vec<(&str, TaskGraph, usize)> = vec![
        ("fft(8 pts)", workflows::fft(3), 4),
        ("lu(4 tiles)", workflows::lu(4), 3),
        ("stencil(6x6)", workflows::stencil(6, 6), 3),
        (
            "d&c(depth 3)",
            workflows::divide_and_conquer(3, 2, 1.0, 4.0),
            4,
        ),
        ("ge(8)", workflows::gaussian_elimination(8), 3),
    ];

    let mut table = Table::new(&[
        "workflow",
        "tasks",
        "depth",
        "parallelism",
        "E-cont",
        "E-vdd",
        "savings-vs-smax",
    ]);
    for (name, app, procs) in cases {
        let mapping = list_schedule(&app, procs, Priority::BottomLevel);
        let exec = mapping.execution_graph(&app).unwrap();
        let met = metrics::metrics(&exec);
        let d = 1.4 * analysis::critical_path_weight(&exec) / modes.s_max();
        let e_cont = solve(&exec, d, &EnergyModel::continuous(modes.s_max()), p)
            .unwrap()
            .energy;
        let e_vdd = solve(&exec, d, &EnergyModel::VddHopping(modes.clone()), p)
            .unwrap()
            .energy;
        let naive = p.energy_at_speed(exec.total_work(), modes.s_max());
        table.row(&[
            name.into(),
            met.n.to_string(),
            met.depth.to_string(),
            format!("{:.2}", met.parallelism),
            format!("{e_cont:.2}"),
            format!("{e_vdd:.2}"),
            format!("{:.1}%", 100.0 * (1.0 - e_vdd / naive)),
        ]);
    }
    println!(
        "Classic HPC workflows, mapped by critical-path list scheduling,\n\
         deadline = 1.4 × Dmin, DVFS ladder {:?}:\n",
        modes.speeds()
    );
    println!("{}", table.render());
    println!(
        "The reclaimable energy depends on the structure: wide graphs \
         (FFT) keep most tasks off the critical path, so their speeds \
         drop far below s_max; narrow wavefronts (stencil) are almost \
         chains and can only exploit the 1.4x deadline slack itself."
    );
}
