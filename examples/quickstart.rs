//! Quickstart: build a task graph, freeze a mapping, and reclaim the
//! energy of the schedule under the Continuous model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use reclaim::core::{solve, SolveError};
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{EnergyModel, PowerLaw};
use reclaim::taskgraph::{dot, TaskGraph, TaskId};

fn main() -> Result<(), SolveError> {
    // 1. An application task graph: T0 fans out to T1/T2, which join
    //    into T3 (costs in work units).
    let app = TaskGraph::new(vec![2.0, 3.0, 5.0, 1.0], &[(0, 1), (0, 2), (1, 3), (2, 3)])
        .expect("valid DAG");

    // 2. The mapping is *given* (here: produced once by critical-path
    //    list scheduling on 2 processors, then frozen — the paper's
    //    setting). The execution graph adds serialization edges.
    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping
        .execution_graph(&app)
        .expect("mapping respects precedence");
    println!("execution graph: {} tasks, {} edges", exec.n(), exec.m());

    // 3. Minimize energy under a deadline, with speeds capped at 2.0.
    let deadline = 8.0;
    let model = EnergyModel::continuous(2.0);
    let sol = solve(&exec, deadline, &model, PowerLaw::CUBIC)?;

    println!("\nmodel: {} (algorithm: {})", model.name(), sol.algorithm);
    println!(
        "deadline: {deadline}, makespan: {:.4}",
        sol.schedule.makespan(&exec)
    );
    println!("optimal energy: {:.4} J\n", sol.energy);
    println!("task  weight  speed   start   end");
    for t in exec.tasks() {
        let d = sol.schedule.duration(t, &exec);
        println!(
            "{:<5} {:<7.2} {:<7.3} {:<7.3} {:<7.3}",
            format!("T{}", t.index()),
            exec.weight(t),
            exec.weight(t) / d,
            sol.schedule.start(t),
            sol.schedule.completion(t, &exec),
        );
    }

    // 4. Compare against the naive "run everything at top speed".
    let naive: f64 = exec
        .tasks()
        .map(|t| PowerLaw::CUBIC.energy_at_speed(exec.weight(t), 2.0))
        .sum();
    println!(
        "\nnaive all-at-s_max energy: {naive:.4} J  →  reclaimed {:.1}%",
        100.0 * (1.0 - sol.energy / naive)
    );

    // 5. Export the execution graph with the chosen speeds for
    //    inspection (pipe into `dot -Tsvg`).
    let dot_out = dot::to_dot_with(&exec, |i| {
        let d = sol.schedule.duration(TaskId(i), &exec);
        Some(format!("s={:.3}", exec.weight(TaskId(i)) / d))
    });
    println!("\n--- DOT ---\n{dot_out}");
    Ok(())
}
