//! The paper-conclusion scenario in miniature: "a comparative study
//! of energy models" on one random execution graph, sweeping the
//! deadline from tight to loose.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::report::Table;
use reclaim::taskgraph::{analysis, generators};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let app = generators::layered_dag(4, 3, 0.35, 1.0, 5.0, &mut rng);
    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping.execution_graph(&app).unwrap();

    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
    let knob = IncrementalModes::new(0.5, 3.0, 0.25).unwrap();
    let p = PowerLaw::CUBIC;
    let dmin = analysis::critical_path_weight(&exec) / modes.s_max();

    println!(
        "execution graph: {} tasks, {} edges, minimum deadline {dmin:.3}\n",
        exec.n(),
        exec.m()
    );

    let mut table = Table::new(&[
        "D/Dmin",
        "Continuous",
        "Vdd-Hopping",
        "Discrete",
        "Incremental",
        "Disc/Cont",
    ]);
    for tight in [1.02, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0] {
        let d = tight * dmin;
        let e = |m: &EnergyModel| solve(&exec, d, m, p).map(|s| s.energy);
        let cont = e(&EnergyModel::continuous(modes.s_max())).unwrap();
        let vdd = e(&EnergyModel::VddHopping(modes.clone())).unwrap();
        let disc = e(&EnergyModel::Discrete(modes.clone())).unwrap();
        let inc = e(&EnergyModel::Incremental(knob.clone())).unwrap();
        table.row(&[
            format!("{tight:.2}"),
            format!("{cont:.3}"),
            format!("{vdd:.3}"),
            format!("{disc:.3}"),
            format!("{inc:.3}"),
            format!("{:.4}", disc / cont),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper's conclusion): Vdd-Hopping 'smooths out the \
         discrete nature of the modes' — it hugs Continuous at every \
         tightness. Discrete/Incremental pay a rounding premium near \
         D = Dmin. At very loose deadlines a second premium appears for \
         every bounded-speed model: they saturate at the slowest mode s_1 \
         while the Continuous model keeps slowing down (speed-floor \
         effect), so Disc/Cont rises again — the premium is U-shaped."
    );
}
