//! Security-driven pre-allocation scenario (paper §1: "tasks are
//! pre-allocated, for example for security reasons").
//!
//! A mixed-criticality avionics workload pins tasks to processors by
//! security domain: crypto tasks on the hardened core, I/O on the
//! peripheral core, everything else on the application core. The
//! placement is non-negotiable; speeds are not. We reclaim the energy
//! of the fixed placement under the Vdd-Hopping model and show the
//! per-task speed profiles.
//!
//! ```text
//! cargo run --example secure_placement
//! ```

use reclaim::core::solve;
use reclaim::mapping::Mapping;
use reclaim::models::{DiscreteModes, EnergyModel, PowerLaw, SpeedProfile};
use reclaim::taskgraph::{TaskGraph, TaskId};

fn main() {
    // Application DAG: sensor read (0) → decrypt (1) → {filter (2),
    // authenticate (3)} → fuse (4) → encrypt (5) → transmit (6).
    let app = TaskGraph::new(
        vec![1.0, 4.0, 6.0, 3.0, 2.0, 4.0, 1.5],
        &[(0, 1), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (5, 6)],
    )
    .expect("valid DAG");

    // Pinning by security domain (fixed, ordered lists per processor):
    //   P0 (hardened):  decrypt, authenticate, encrypt
    //   P1 (peripheral): sensor read, transmit
    //   P2 (application): filter, fuse
    let mapping = Mapping::new(vec![
        vec![TaskId(1), TaskId(3), TaskId(5)],
        vec![TaskId(0), TaskId(6)],
        vec![TaskId(2), TaskId(4)],
    ]);
    let exec = mapping
        .execution_graph(&app)
        .expect("placement is precedence-consistent");

    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
    let p = PowerLaw::CUBIC;
    let deadline = 14.0;

    println!(
        "secure placement: {} tasks on 3 cores, deadline {deadline}",
        exec.n()
    );
    for (core, names) in [
        ("P0 hardened", "decrypt, authenticate, encrypt"),
        ("P1 peripheral", "sensor, transmit"),
        ("P2 application", "filter, fuse"),
    ] {
        println!("  {core}: {names}");
    }

    for model in [
        EnergyModel::continuous(modes.s_max()),
        EnergyModel::VddHopping(modes.clone()),
        EnergyModel::Discrete(modes.clone()),
    ] {
        match solve(&exec, deadline, &model, p) {
            Ok(sol) => println!(
                "\n{:<12} energy {:>8.3} J  (makespan {:.3}, algorithm {})",
                model.name(),
                sol.energy,
                sol.schedule.makespan(&exec),
                sol.algorithm
            ),
            Err(e) => println!("\n{:<12} failed: {e}", model.name()),
        }
    }

    // Show the Vdd-Hopping profiles: which tasks hop between modes.
    let sol = solve(&exec, deadline, &EnergyModel::VddHopping(modes), p).unwrap();
    println!("\nVdd-Hopping speed profiles:");
    let names = [
        "sensor", "decrypt", "filter", "auth", "fuse", "encrypt", "tx",
    ];
    for t in exec.tasks() {
        match sol.schedule.profile(t) {
            SpeedProfile::Constant(s) => {
                println!("  {:<8} constant {s:.3}", names[t.index()]);
            }
            SpeedProfile::Pieces(ps) => {
                let desc: Vec<String> = ps
                    .iter()
                    .map(|(s, d)| format!("{s:.2} for {d:.3}"))
                    .collect();
                println!("  {:<8} hops: {}", names[t.index()], desc.join(", "));
            }
        }
    }
}
