//! Power-trace view: execute optimal schedules in the discrete-event
//! simulator and compare energy *and* peak power across models — speed
//! scaling both reclaims energy and flattens the platform's power
//! curve.
//!
//! ```text
//! cargo run --release --example power_trace
//! ```

use reclaim::core::solve;
use reclaim::mapping::{list_schedule, Priority};
use reclaim::models::{DiscreteModes, EnergyModel, PowerLaw};
use reclaim::report::Table;
use reclaim::sim::{gantt, simulate};
use reclaim::taskgraph::{analysis, generators};

fn main() {
    let app = generators::fork_join(2.0, &[4.0, 6.0, 3.0, 5.0], 1.0);
    let mapping = list_schedule(&app, 2, Priority::BottomLevel);
    let exec = mapping.execution_graph(&app).unwrap();
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
    let p = PowerLaw::CUBIC;
    let dmin = analysis::critical_path_weight(&exec) / modes.s_max();

    println!(
        "fork-join workload on 2 processors ({} tasks), Dmin = {dmin:.3}\n",
        exec.n()
    );

    let mut table = Table::new(&[
        "deadline",
        "model",
        "energy(J)",
        "peak(W)",
        "avg(W)",
        "makespan",
    ]);
    for tight in [1.1, 2.0] {
        let d = tight * dmin;
        for model in [
            EnergyModel::continuous(modes.s_max()),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes.clone()),
        ] {
            let sol = solve(&exec, d, &model, p).unwrap();
            let sim = simulate(&exec, &sol.schedule, p).unwrap();
            table.row(&[
                format!("{d:.3}"),
                model.name().into(),
                format!("{:.3}", sim.energy),
                format!("{:.3}", sim.trace.peak_power()),
                format!("{:.3}", sim.trace.average_power()),
                format!("{:.3}", sim.makespan),
            ]);
        }
    }
    println!("{}", table.render());

    // Gantt chart of the continuous optimum at the loose deadline.
    let d = 2.0 * dmin;
    let sol = solve(&exec, d, &EnergyModel::continuous(modes.s_max()), p).unwrap();
    println!("Gantt (Continuous, D = {d:.3}):\n");
    println!("{}", gantt(&exec, &sol.schedule, &mapping, 60));
    println!(
        "Note the flattening: at the loose deadline the optimum stretches \
         every task, cutting both total energy (∝ s²·w) and the peak power \
         (∝ s³) that the platform's power supply must sustain."
    );
}
