//! Legacy-application scenario (paper §1: "optimizing for legacy
//! applications" is a key motivation for keeping the mapping fixed).
//!
//! A legacy video-processing pipeline runs nine stages on one embedded
//! processor; the stage order is baked into the binary and cannot be
//! changed — but the DVFS operating points can. We compare how much
//! energy each model reclaims at several frame deadlines.
//!
//! ```text
//! cargo run --example legacy_pipeline
//! ```

use reclaim::core::solve;
use reclaim::models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim::report::Table;
use reclaim::taskgraph::generators;

fn main() {
    // Stage costs (work units) of the fixed pipeline:
    // demux, decode, deinterlace, scale, denoise, sharpen, encode,
    // mux, checksum.
    let stages = [3.0, 8.0, 4.0, 5.0, 9.0, 4.0, 10.0, 2.0, 1.0];
    let g = generators::chain(&stages);
    let total: f64 = stages.iter().sum();
    let p = PowerLaw::CUBIC;

    // A realistic DVFS ladder (normalized speeds) and its
    // potentiometer-style Incremental counterpart.
    let dvfs = DiscreteModes::new(&[0.6, 0.8, 1.0, 1.2, 1.5]).unwrap();
    let knob = IncrementalModes::new(0.6, 1.5, 0.1).unwrap();
    let s_max = dvfs.s_max();

    let models: Vec<(&str, EnergyModel)> = vec![
        ("Continuous", EnergyModel::continuous(s_max)),
        ("Vdd-Hopping", EnergyModel::VddHopping(dvfs.clone())),
        ("Discrete", EnergyModel::Discrete(dvfs.clone())),
        ("Incremental", EnergyModel::Incremental(knob)),
    ];

    let mut table = Table::new(&[
        "deadline",
        "slack-vs-smax",
        "Continuous",
        "Vdd-Hopping",
        "Discrete",
        "Incremental",
        "naive-smax",
    ]);

    for slack in [1.05, 1.2, 1.5, 2.0] {
        let deadline = slack * total / s_max;
        let naive = p.energy_at_speed(total, s_max);
        let mut row = vec![format!("{deadline:.2}"), format!("{slack:.2}x")];
        for (_, model) in &models {
            match solve(&g, deadline, model, p) {
                Ok(sol) => row.push(format!("{:.2}", sol.energy)),
                Err(e) => row.push(format!("({e})")),
            }
        }
        row.push(format!("{naive:.2}"));
        table.row(&row);
    }

    println!(
        "Legacy pipeline: {} stages, total work {total}",
        stages.len()
    );
    println!("DVFS modes: {:?}\n", dvfs.speeds());
    println!("{}", table.render());
    println!(
        "Reading: the pipeline is a chain, so Continuous runs at the single \
         speed total/D (Theorem 2 trivially); Vdd-Hopping matches it almost \
         exactly by mixing the two modes around that speed; Discrete and \
         Incremental must round per-stage speeds to the ladder."
    );
}
