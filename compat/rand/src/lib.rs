//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the (small) subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range`, `gen_bool`, and `gen`. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the tests and experiment harness rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: byte seeds and `seed_from_u64`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // Expand the u64 through SplitMix64, as rand does.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// User-facing convenience methods, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a raw `u64` to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        if lo == hi {
            return lo; // rand accepts x..=x for floats
        }
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
        if lo == hi {
            return lo; // rand accepts x..=x for floats
        }
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// ChaCha12-based `StdRng`; statistical quality is ample for test
    /// and experiment workloads).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_in_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: f64 = rng.gen_range(0.5..2.0);
                assert!((0.5..2.0).contains(&x));
                let n: usize = rng.gen_range(1..10);
                assert!((1..10).contains(&n));
                let m: u64 = rng.gen_range(0..=3);
                assert!(m <= 3);
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..100 {
                assert!(!rng.gen_bool(0.0));
                assert!(rng.gen_bool(1.0));
            }
        }
    }
}
