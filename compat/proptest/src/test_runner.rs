//! Runner configuration (subset: case count only).

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the same density.
        ProptestConfig { cases: 256 }
    }
}
