//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::{Any, Strategy};

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, moderately sized values; the suites never rely on
        // NaN/infinity generation.
        rng.gen_range(-1.0e6..1.0e6)
    }
}
