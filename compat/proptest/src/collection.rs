//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Size argument of [`vec()`]: an exact length or a half-open range.
pub trait IntoSizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
