//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Numeric ranges are strategies: `0.5f64..2.0`, `1usize..20`, ...
impl<T> Strategy for Range<T>
where
    T: SampleUniform + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Marker used by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

/// String literals are regex strategies in proptest. This stub
/// supports the one shape the workspace uses — a single character
/// class with a bounded repetition, `[<class>]{lo,hi}` or
/// `[<class>]{n}` — where the class may contain literal characters,
/// `a-z`-style ranges, and `\n`/`\t`/`\r`/`\\` escapes.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}: the offline proptest stub only handles `[class]{{lo,hi}}`"));
        let n = if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi + 1)
        };
        (0..n)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, reps) = rest.split_once(']')?;
    let reps = reps.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = reps.parse().ok()?;
            (n, n)
        }
    };

    let mut chars: Vec<char> = Vec::new();
    let mut iter = class.chars().peekable();
    while let Some(c) = iter.next() {
        let c = if c == '\\' {
            match iter.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        // `a-z` range (a '-' that is neither first nor last)?
        if iter.peek() == Some(&'-') && {
            let mut ahead = iter.clone();
            ahead.next();
            ahead.peek().is_some()
        } {
            iter.next(); // consume '-'
            let end = match iter.next()? {
                '\\' => match iter.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                },
                other => other,
            };
            let (a, b) = (c as u32, end as u32);
            if a > b {
                return None;
            }
            chars.extend((a..=b).filter_map(char::from_u32));
        } else {
            chars.push(c);
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}
