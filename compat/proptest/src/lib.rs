//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! suites use: the [`proptest!`] macro (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, [`strategy::Strategy`] with `prop_map`/`prop_filter`
//! /`boxed`, [`arbitrary::any`], [`collection::vec`], [`strategy::Just`],
//! and [`test_runner::ProptestConfig`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. Each test runs `cases` iterations with inputs drawn
//! from a generator seeded deterministically from the test name, and a
//! failing case panics immediately with its case index (reproducible,
//! since the seed is a pure function of the test name).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
pub mod __rt {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: FNV-1a over the test's full name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Run all embedded `#[test] fn name(pat in strategy, ...) { .. }`
/// items `cases` times each with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::__rt::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+);
                let __run = std::panic::AssertUnwindSafe(|| { $body });
                if let Err(e) = std::panic::catch_unwind(__run) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1, __config.cases, stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Real proptest records a rejection; here the case simply passes.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
/// (Real proptest supports `weight => strategy` entries; the workspace
/// only uses the unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
