//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup`
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! `Bencher::iter`, `BenchmarkId::new`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is a simple mean over `sample_size` batched iterations via
//! `std::time::Instant` — no warm-up, outlier analysis, or HTML
//! reports. Good enough to smoke-run benches and print comparable
//! per-iteration times; later PRs can vendor the real harness.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.samples.is_empty() {
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let iters = bencher.samples.len() as u128 * bencher.iters_per_sample as u128;
        let mean_ns = total.as_nanos() / iters.max(1);
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        println!("bench: {label:<50} {:>12} ns/iter", mean_ns);
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        hint::black_box(f());
        self.samples.push(start.elapsed());
        self.iters_per_sample = 1;
    }
}

/// `criterion_group!(name, target, ...)` — the config-less form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
