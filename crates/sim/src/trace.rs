//! Piecewise-constant platform power traces.

/// A piecewise-constant function of time: total dissipated power.
///
/// Built from the union of all task execution intervals; segments are
/// contiguous, non-overlapping, and sorted by time.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    /// `(t_start, t_end, watts)` segments, sorted, non-overlapping.
    segments: Vec<(f64, f64, f64)>,
}

impl PowerTrace {
    /// Build a trace from raw `(start, end, watts)` contributions
    /// (task pieces). Overlapping contributions add up.
    pub fn from_contributions(contribs: &[(f64, f64, f64)]) -> PowerTrace {
        // Sweep over all boundaries.
        let mut bounds: Vec<f64> = contribs.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let mut segments = Vec::new();
        for w in bounds.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= 1e-15 {
                continue;
            }
            let mid = 0.5 * (t0 + t1);
            let watts: f64 = contribs
                .iter()
                .filter(|&&(a, b, _)| a <= mid && mid < b)
                .map(|&(_, _, p)| p)
                .sum();
            segments.push((t0, t1, watts));
        }
        PowerTrace { segments }
    }

    /// The segments `(t_start, t_end, watts)`.
    pub fn segments(&self) -> &[(f64, f64, f64)] {
        &self.segments
    }

    /// Total energy: `∫ P dt`.
    pub fn energy(&self) -> f64 {
        self.segments.iter().map(|&(a, b, p)| (b - a) * p).sum()
    }

    /// Peak instantaneous power.
    pub fn peak_power(&self) -> f64 {
        self.segments.iter().map(|&(_, _, p)| p).fold(0.0, f64::max)
    }

    /// Time-averaged power over the trace's span (0 for an empty
    /// trace).
    pub fn average_power(&self) -> f64 {
        let span = self.span();
        if span <= 0.0 {
            0.0
        } else {
            self.energy() / span
        }
    }

    /// Total time span covered (first start to last end).
    pub fn span(&self) -> f64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(&(a, _, _)), Some(&(_, b, _))) => b - a,
            _ => 0.0,
        }
    }

    /// Power at a given time (0 outside the trace).
    pub fn power_at(&self, t: f64) -> f64 {
        self.segments
            .iter()
            .find(|&&(a, b, _)| a <= t && t < b)
            .map_or(0.0, |&(_, _, p)| p)
    }

    /// CSV export (`t_start,t_end,watts` rows with a header), for
    /// plotting outside the tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_start,t_end,watts\n");
        for &(a, b, p) in &self.segments {
            out.push_str(&format!("{a},{b},{p}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_contribution() {
        let tr = PowerTrace::from_contributions(&[(0.0, 2.0, 3.0)]);
        assert_eq!(tr.energy(), 6.0);
        assert_eq!(tr.peak_power(), 3.0);
        assert_eq!(tr.average_power(), 3.0);
        assert_eq!(tr.power_at(1.0), 3.0);
        assert_eq!(tr.power_at(2.5), 0.0);
    }

    #[test]
    fn overlapping_contributions_add() {
        let tr = PowerTrace::from_contributions(&[(0.0, 2.0, 1.0), (1.0, 3.0, 2.0)]);
        // [0,1): 1, [1,2): 3, [2,3): 2.
        assert_eq!(tr.power_at(0.5), 1.0);
        assert_eq!(tr.power_at(1.5), 3.0);
        assert_eq!(tr.power_at(2.5), 2.0);
        assert!((tr.energy() - (1.0 + 3.0 + 2.0)).abs() < 1e-12);
        assert_eq!(tr.peak_power(), 3.0);
        assert_eq!(tr.span(), 3.0);
    }

    #[test]
    fn gap_in_trace() {
        let tr = PowerTrace::from_contributions(&[(0.0, 1.0, 2.0), (2.0, 3.0, 4.0)]);
        assert_eq!(tr.power_at(1.5), 0.0);
        assert!((tr.energy() - 6.0).abs() < 1e-12);
        // Average over the 3-unit span.
        assert!((tr.average_power() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn csv_export() {
        let tr = PowerTrace::from_contributions(&[(0.0, 1.0, 2.0)]);
        let csv = tr.to_csv();
        assert!(csv.starts_with("t_start,t_end,watts\n"));
        assert!(csv.contains("0,1,2"));
    }

    #[test]
    fn empty_trace() {
        let tr = PowerTrace::from_contributions(&[]);
        assert_eq!(tr.energy(), 0.0);
        assert_eq!(tr.peak_power(), 0.0);
        assert_eq!(tr.average_power(), 0.0);
        assert_eq!(tr.span(), 0.0);
    }
}
