//! Event-driven execution of a schedule.

use crate::trace::PowerTrace;
use mapping::Mapping;
use models::{PowerLaw, Schedule, SpeedProfile};
use std::fmt;
use taskgraph::{TaskGraph, TaskId};

/// One executed task occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEvent {
    /// The task.
    pub task: TaskId,
    /// When it started.
    pub start: f64,
    /// When it completed.
    pub end: f64,
}

/// Why the simulation rejected the schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task started before one of its predecessors had completed.
    PrecedenceViolation {
        /// The late predecessor.
        pred: usize,
        /// The too-eager successor.
        succ: usize,
        /// How early the successor started.
        gap: f64,
    },
    /// Two tasks mapped to the same processor overlap in time.
    ProcessorOverlap {
        /// The processor.
        processor: usize,
        /// First task.
        a: usize,
        /// Second task.
        b: usize,
    },
    /// A start time is negative or non-finite.
    BadStart(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PrecedenceViolation { pred, succ, gap } => write!(
                f,
                "T{succ} starts {gap} before its predecessor T{pred} completes"
            ),
            SimError::ProcessorOverlap { processor, a, b } => {
                write!(f, "tasks T{a} and T{b} overlap on processor {processor}")
            }
            SimError::BadStart(i) => write!(f, "task T{i} has an invalid start time"),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a successful simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Executed intervals, sorted by start time.
    pub events: Vec<TaskEvent>,
    /// Total platform power over time.
    pub trace: PowerTrace,
    /// Integrated energy `∫ P dt` (independent of the analytic
    /// accounting in `models`).
    pub energy: f64,
    /// Completion time of the last task.
    pub makespan: f64,
}

/// Execute the schedule on the execution graph.
///
/// Replays every task at its scheduled start with its speed profile,
/// checking causality (every precedence edge) along the way, and
/// integrates the platform power trace.
pub fn simulate(g: &TaskGraph, schedule: &Schedule, p: PowerLaw) -> Result<SimResult, SimError> {
    assert_eq!(schedule.n(), g.n(), "schedule/graph size mismatch");
    const TOL: f64 = 1e-6;
    // Build events.
    let mut events = Vec::with_capacity(g.n());
    for t in g.tasks() {
        let start = schedule.start(t);
        if !start.is_finite() || start < -TOL {
            return Err(SimError::BadStart(t.index()));
        }
        let end = schedule.completion(t, g);
        events.push(TaskEvent {
            task: t,
            start,
            end,
        });
    }
    // Causality.
    for &(u, v) in g.edges() {
        let end_u = events[u.index()].end;
        let start_v = events[v.index()].start;
        if start_v < end_u - TOL * (1.0 + end_u.abs()) {
            return Err(SimError::PrecedenceViolation {
                pred: u.index(),
                succ: v.index(),
                gap: end_u - start_v,
            });
        }
    }
    // Power contributions, piece by piece.
    let mut contribs: Vec<(f64, f64, f64)> = Vec::new();
    for t in g.tasks() {
        let mut clock = schedule.start(t);
        match schedule.profile(t) {
            SpeedProfile::Constant(s) => {
                let d = g.weight(t) / s;
                contribs.push((clock, clock + d, p.power(*s)));
            }
            SpeedProfile::Pieces(ps) => {
                for &(s, d) in ps {
                    if d > 0.0 {
                        contribs.push((clock, clock + d, p.power(s)));
                        clock += d;
                    }
                }
            }
        }
    }
    let trace = PowerTrace::from_contributions(&contribs);
    let energy = trace.energy();
    let makespan = events.iter().map(|e| e.end).fold(0.0f64, f64::max);
    events.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
    Ok(SimResult {
        events,
        trace,
        energy,
        makespan,
    })
}

/// Verify that no two tasks sharing a processor overlap in time.
///
/// The serialization edges of the execution graph make this
/// automatic for schedules produced by the solvers; this is the
/// independent check.
pub fn check_mapping_consistency(
    g: &TaskGraph,
    schedule: &Schedule,
    mapping: &Mapping,
) -> Result<(), SimError> {
    const TOL: f64 = 1e-6;
    for (proc, list) in mapping.lists().iter().enumerate() {
        // Tasks on one processor, in their mapped order, must run
        // back-to-back or with gaps — never overlapping.
        for w in list.windows(2) {
            let end_a = schedule.completion(w[0], g);
            let start_b = schedule.start(w[1]);
            if start_b < end_a - TOL * (1.0 + end_a.abs()) {
                return Err(SimError::ProcessorOverlap {
                    processor: proc,
                    a: w[0].index(),
                    b: w[1].index(),
                });
            }
        }
    }
    Ok(())
}

/// Per-processor busy fraction over the makespan: `Σ durations on p /
/// makespan`. A perfectly packed processor reports 1.0.
pub fn utilization(g: &TaskGraph, schedule: &Schedule, mapping: &Mapping) -> Vec<f64> {
    let makespan = schedule.makespan(g).max(1e-12);
    mapping
        .lists()
        .iter()
        .map(|list| {
            let busy: f64 = list.iter().map(|&t| schedule.duration(t, g)).sum();
            busy / makespan
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::EnergyModel;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn integrated_energy_matches_analytic() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let sched = Schedule::asap_from_speeds(&g, &[1.0, 0.5, 1.5, 2.0]);
        let sim = simulate(&g, &sched, P).unwrap();
        let analytic = sched.energy(&g, P);
        assert!(
            (sim.energy - analytic).abs() < 1e-9 * analytic,
            "sim {} vs analytic {analytic}",
            sim.energy
        );
        assert!((sim.makespan - sched.makespan(&g)).abs() < 1e-9);
    }

    #[test]
    fn vdd_profiles_integrate_correctly() {
        let g = generators::chain(&[3.0]);
        let sched = Schedule::new(
            vec![0.0],
            vec![SpeedProfile::Pieces(vec![(1.0, 1.0), (2.0, 1.0)])],
        );
        let sim = simulate(&g, &sched, P).unwrap();
        assert!((sim.energy - 9.0).abs() < 1e-12);
        // Power steps from 1 to 8 watts.
        assert_eq!(sim.trace.power_at(0.5), 1.0);
        assert_eq!(sim.trace.power_at(1.5), 8.0);
        assert_eq!(sim.trace.peak_power(), 8.0);
    }

    #[test]
    fn causality_violation_detected() {
        let g = generators::chain(&[1.0, 1.0]);
        let bad = Schedule::new(
            vec![0.0, 0.5],
            vec![SpeedProfile::Constant(1.0), SpeedProfile::Constant(1.0)],
        );
        assert!(matches!(
            simulate(&g, &bad, P),
            Err(SimError::PrecedenceViolation {
                pred: 0,
                succ: 1,
                ..
            })
        ));
    }

    #[test]
    fn bad_start_detected() {
        let g = generators::chain(&[1.0]);
        let bad = Schedule::new(vec![f64::NAN], vec![SpeedProfile::Constant(1.0)]);
        assert!(matches!(simulate(&g, &bad, P), Err(SimError::BadStart(0))));
    }

    #[test]
    fn mapping_overlap_detected() {
        let g = taskgraph::TaskGraph::new(vec![2.0, 2.0], &[]).unwrap();
        // Both tasks on one processor, overlapping in time.
        let m = Mapping::new(vec![vec![TaskId(0), TaskId(1)]]);
        let sched = Schedule::new(
            vec![0.0, 1.0],
            vec![SpeedProfile::Constant(1.0), SpeedProfile::Constant(1.0)],
        );
        assert!(matches!(
            check_mapping_consistency(&g, &sched, &m),
            Err(SimError::ProcessorOverlap { processor: 0, .. })
        ));
        // Back-to-back is fine.
        let ok = Schedule::new(
            vec![0.0, 2.0],
            vec![SpeedProfile::Constant(1.0), SpeedProfile::Constant(1.0)],
        );
        check_mapping_consistency(&g, &ok, &m).unwrap();
    }

    #[test]
    fn solver_schedules_pass_simulation() {
        let g = generators::fork_join(1.0, &[2.0, 3.0], 1.0);
        let model = EnergyModel::continuous(2.0);
        let sol = reclaim_core::solve(&g, 6.0, &model, P).unwrap();
        let sim = simulate(&g, &sol.schedule, P).unwrap();
        assert!((sim.energy - sol.energy).abs() < 1e-6 * sol.energy);
    }

    #[test]
    fn utilization_of_packed_chain_is_one() {
        let g = generators::chain(&[1.0, 2.0]);
        let m = Mapping::new(vec![vec![TaskId(0), TaskId(1)]]);
        let sched = Schedule::asap_from_speeds(&g, &[1.0, 1.0]);
        let u = utilization(&g, &sched, &m);
        assert_eq!(u.len(), 1);
        assert!((u[0] - 1.0).abs() < 1e-12);
        // Slower second task on a second processor idles half the time.
        let m2 = Mapping::new(vec![vec![TaskId(0)], vec![TaskId(1)]]);
        let u2 = utilization(&g, &sched, &m2);
        assert!((u2[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((u2[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn events_sorted_by_start() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let sched = Schedule::asap_from_speeds(&g, &[1.0; 4]);
        let sim = simulate(&g, &sched, P).unwrap();
        for w in sim.events.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }
}
