//! ASCII Gantt charts of executed schedules.

use mapping::Mapping;
use models::Schedule;
use taskgraph::TaskGraph;

/// Render a per-processor Gantt chart of the schedule, `width`
/// characters wide. Each processor gets one row; task intervals are
/// drawn with the task id (mod 10) as fill, idle time with `·`.
///
/// ```text
/// P0 |0000111133·····|
/// P1 |··22222········|
/// ```
pub fn gantt(g: &TaskGraph, schedule: &Schedule, mapping: &Mapping, width: usize) -> String {
    assert!(width >= 8, "need a reasonable chart width");
    let makespan = schedule.makespan(g).max(1e-12);
    let scale = width as f64 / makespan;
    let mut out = String::new();
    for (p, list) in mapping.lists().iter().enumerate() {
        let mut row = vec!['·'; width];
        for &t in list {
            let s = schedule.start(t);
            let e = schedule.completion(t, g);
            let c0 = ((s * scale).floor() as usize).min(width - 1);
            let c1 = ((e * scale).ceil() as usize).clamp(c0 + 1, width);
            let ch = char::from_digit((t.index() % 10) as u32, 10).unwrap();
            for cell in &mut row[c0..c1] {
                *cell = ch;
            }
        }
        out.push_str(&format!("P{p:<2}|"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "    0{:>w$.3}\n",
        makespan,
        w = width.saturating_sub(1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::{generators, TaskId};

    #[test]
    fn renders_rows_per_processor() {
        let g = generators::chain(&[2.0, 2.0]);
        let m = Mapping::new(vec![vec![TaskId(0)], vec![TaskId(1)]]);
        let sched = Schedule::asap_from_speeds(&g, &[1.0, 1.0]);
        let out = gantt(&g, &sched, &m, 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("P0 |"));
        assert!(lines[1].starts_with("P1 |"));
        // Task 0 occupies the first half of P0's row, then idle.
        assert!(lines[0].contains('0'));
        assert!(lines[0].contains('·'));
        // Task 1 starts after task 0 on P1.
        assert!(lines[1].trim_start_matches("P1 |").starts_with('·'));
    }

    #[test]
    fn busy_processor_has_no_idle_gap() {
        let g = generators::chain(&[1.0, 1.0]);
        let m = Mapping::new(vec![vec![TaskId(0), TaskId(1)]]);
        let sched = Schedule::asap_from_speeds(&g, &[1.0, 1.0]);
        let out = gantt(&g, &sched, &m, 16);
        let row = out.lines().next().unwrap();
        let cells: String = row
            .trim_start_matches("P0 |")
            .trim_end_matches('|')
            .to_string();
        assert!(
            !cells.contains('·'),
            "back-to-back chain must fill the row: {row}"
        );
    }
}
