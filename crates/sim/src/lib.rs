//! # sim — discrete-event schedule execution
//!
//! An **independent oracle** for the solvers: instead of using the
//! analytic energy formula `Σ sᵢ^α·dᵢ`, this crate *executes* a
//! [`models::Schedule`] event by event, builds the platform's
//! piecewise-constant power trace, and integrates it. Agreement
//! between the integrated energy and the analytic accounting is a
//! strong end-to-end check on both sides (used in the workspace
//! integration tests).
//!
//! It also provides what an operator of the paper's platform would
//! want to see:
//!
//! * the executed timeline ([`SimResult::events`]),
//! * the total power trace with peak/average power
//!   ([`PowerTrace`]) — relevant because speed scaling trades energy
//!   *and* flattens power peaks,
//! * per-processor Gantt charts ([`gantt()`]) when the mapping is known,
//! * mapping-consistency checking (no two tasks sharing a processor
//!   may overlap — guaranteed by the serialization edges, verified
//!   here independently).

pub mod executor;
pub mod gantt;
pub mod trace;

pub use executor::{
    check_mapping_consistency, simulate, utilization, SimError, SimResult, TaskEvent,
};
pub use gantt::gantt;
pub use trace::PowerTrace;
