//! Property tests for the instance format: write→parse round-trips
//! over randomized instances, and parser robustness on mangled input.

use models::{DiscreteModes, EnergyModel, IncrementalModes};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_cli::{parse, write};
use taskgraph::generators;

fn arb_model() -> impl Strategy<Value = EnergyModel> {
    prop_oneof![
        Just(EnergyModel::continuous_unbounded()),
        (0.5f64..4.0).prop_map(EnergyModel::continuous),
        prop::collection::vec(0.25f64..4.0, 1..6)
            .prop_map(|v| { EnergyModel::Discrete(DiscreteModes::new(&v).unwrap()) }),
        prop::collection::vec(0.25f64..4.0, 1..6)
            .prop_map(|v| { EnergyModel::VddHopping(DiscreteModes::new(&v).unwrap()) }),
        (0.25f64..1.0, 1.5f64..4.0, 0.05f64..0.75).prop_map(|(lo, hi, d)| {
            EnergyModel::Incremental(IncrementalModes::new(lo, hi, d).unwrap())
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_roundtrip(
        n in 1usize..15,
        seed in any::<u64>(),
        model in arb_model(),
        deadline in 0.5f64..50.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_dag(n, 0.3, 0.5, 5.0, &mut rng);
        let text = write(&g, None, deadline, &model);
        let back = parse(&text).expect("own output must parse");
        prop_assert_eq!(&back.graph, &g);
        prop_assert_eq!(back.deadline, deadline);
        prop_assert_eq!(&back.model, &model);
        // Idempotence: writing again produces the same text.
        let text2 = write(&back.graph, None, back.deadline, &back.model);
        prop_assert_eq!(text, text2);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_panic_free(input in "[ -~\n]{0,300}") {
        let _ = parse(&input);
    }

    /// Mangling one random line of a valid instance yields either a
    /// clean error or a still-valid instance — never a panic.
    #[test]
    fn parser_survives_line_mangling(
        seed in any::<u64>(),
        junk in "[a-z0-9 .]{0,20}",
        line_pick in any::<u16>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_dag(5, 0.4, 0.5, 3.0, &mut rng);
        let text = write(&g, None, 5.0, &EnergyModel::continuous_unbounded());
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let k = (line_pick as usize) % lines.len();
        lines[k] = junk.clone();
        let _ = parse(&lines.join("\n"));
    }
}
