//! The plain-text instance format.
//!
//! ```text
//! # comments start with '#'; blank lines ignored
//! tasks 2.0 3.0 5.0 1.0          # task costs, ids 0..n in order
//! edge 0 1                        # precedence T0 -> T1
//! edge 0 2
//! edge 1 3
//! edge 2 3
//! proc 0 1 3                      # optional: ordered list for one processor
//! proc 2                          # (one 'proc' line per processor)
//! deadline 8.0
//! model continuous smax=2.0       # or: continuous  (unbounded)
//! # model discrete 0.5 1.0 2.0
//! # model vdd 0.5 1.0 2.0
//! # model incremental smin=0.5 smax=3.0 delta=0.25
//! ```
//!
//! When `proc` lines are present they must cover every task exactly
//! once; the execution graph then gains the serialization edges. With
//! no `proc` lines the graph is used as-is (it is already an execution
//! graph).

use mapping::Mapping;
use models::{DiscreteModes, EnergyModel, IncrementalModes};
use std::fmt;
use taskgraph::{GraphError, TaskGraph, TaskId};

/// A parsed instance: execution graph + deadline + model.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The execution graph (serialization edges already added when a
    /// mapping was given).
    pub graph: TaskGraph,
    /// The deadline `D`.
    pub deadline: f64,
    /// The energy model.
    pub model: EnergyModel,
    /// The mapping, if one was given.
    pub mapping: Option<Mapping>,
}

/// Parse failure with a line number and, when one exists, the
/// offending token — so a bad `.inst` deep in a corpus directory is
/// attributable from the error alone (`file:line`, plus the exact
/// text that broke).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending directive (0 for global errors —
    /// e.g. a missing directive or a cycle, which no single line
    /// owns).
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The offending token, verbatim, when the failure is pinnable to
    /// one (a malformed number, an out-of-range task id, an unknown
    /// directive or model kind).
    pub token: Option<String>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if let Some(t) = &self.token {
            write!(f, " (offending token {t:?})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
        token: None,
    })
}

fn err_tok<T>(
    line: usize,
    token: impl Into<String>,
    message: impl Into<String>,
) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
        token: Some(token.into()),
    })
}

fn parse_f64(line: usize, s: &str) -> Result<f64, ParseError> {
    match s.parse::<f64>() {
        Ok(v) => Ok(v),
        Err(_) => err_tok(line, s, "not a number"),
    }
}

fn parse_usize(line: usize, s: &str) -> Result<usize, ParseError> {
    match s.parse::<usize>() {
        Ok(v) => Ok(v),
        Err(_) => err_tok(line, s, "not a task id"),
    }
}

/// Parse `key=value` into `(key, value)`.
fn parse_kv(line: usize, s: &str) -> Result<(&str, f64), ParseError> {
    let Some((k, v)) = s.split_once('=') else {
        return err_tok(line, s, "expected key=value");
    };
    Ok((k, parse_f64(line, v)?))
}

/// Parse the instance format (see the module docs).
pub fn parse(text: &str) -> Result<Instance, ParseError> {
    let mut weights: Option<Vec<f64>> = None;
    let mut tasks_line = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut edge_lines: Vec<usize> = Vec::new();
    let mut procs: Vec<Vec<TaskId>> = Vec::new();
    let mut deadline: Option<f64> = None;
    let mut model: Option<EnergyModel> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap();
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "tasks" => {
                if weights.is_some() {
                    return err(line_no, "duplicate 'tasks' directive");
                }
                if rest.is_empty() {
                    return err(line_no, "'tasks' needs at least one cost");
                }
                let ws: Result<Vec<f64>, _> = rest.iter().map(|s| parse_f64(line_no, s)).collect();
                weights = Some(ws?);
                tasks_line = line_no;
            }
            "edge" => {
                if rest.len() != 2 {
                    return err(line_no, "'edge' needs exactly two task ids");
                }
                edges.push((
                    parse_usize(line_no, rest[0])?,
                    parse_usize(line_no, rest[1])?,
                ));
                edge_lines.push(line_no);
            }
            "proc" => {
                let ids: Result<Vec<usize>, _> =
                    rest.iter().map(|s| parse_usize(line_no, s)).collect();
                procs.push(ids?.into_iter().map(TaskId).collect());
            }
            "deadline" => {
                if rest.len() != 1 {
                    return err(line_no, "'deadline' needs exactly one value");
                }
                deadline = Some(parse_f64(line_no, rest[0])?);
            }
            "model" => {
                if model.is_some() {
                    return err(line_no, "duplicate 'model' directive");
                }
                model = Some(parse_model(line_no, &rest)?);
            }
            other => return err_tok(line_no, other, "unknown directive"),
        }
    }

    let missing = |what: &str| ParseError {
        line: 0,
        message: format!("missing '{what}' directive"),
        token: None,
    };
    let weights = weights.ok_or_else(|| missing("tasks"))?;
    let deadline = deadline.ok_or_else(|| missing("deadline"))?;
    let model = model.ok_or_else(|| missing("model"))?;

    // `TaskGraph::new` is the single validator; here its errors are
    // attributed back to the line (and token) that introduced them.
    // Only global properties (cycles) stay at line 0 — no one line
    // owns a cycle.
    let edge_line_of = |pred: &dyn Fn(usize, usize) -> bool| {
        edges
            .iter()
            .position(|&(u, v)| pred(u, v))
            .map_or(0, |i| edge_lines[i])
    };
    let app = TaskGraph::new(weights, &edges).map_err(|e| {
        let (line, token) = match &e {
            GraphError::BadWeight { task: _, weight } => (tasks_line, Some(format!("{weight}"))),
            GraphError::BadTask(t) => (
                edge_line_of(&|u, v| u == *t || v == *t),
                Some(format!("{t}")),
            ),
            GraphError::SelfLoop(t) => (edge_line_of(&|u, v| u == *t && v == *t), None),
            GraphError::Cycle(_) => (0, None),
        };
        ParseError {
            line,
            message: e.to_string(),
            token,
        }
    })?;
    let (graph, mapping) = if procs.is_empty() {
        (app, None)
    } else {
        let m = Mapping::new(procs);
        let exec = m.execution_graph(&app).map_err(|e| ParseError {
            line: 0,
            message: format!("bad mapping: {e}"),
            token: None,
        })?;
        (exec, Some(m))
    };
    Ok(Instance {
        graph,
        deadline,
        model,
        mapping,
    })
}

fn parse_model(line: usize, rest: &[&str]) -> Result<EnergyModel, ParseError> {
    let Some((&kind, args)) = rest.split_first() else {
        return err(
            line,
            "'model' needs a kind (continuous|discrete|vdd|incremental)",
        );
    };
    match kind {
        "continuous" => {
            let mut s_max = None;
            for a in args {
                let (k, v) = parse_kv(line, a)?;
                match k {
                    "smax" => s_max = Some(v),
                    other => return err_tok(line, other, "unknown continuous option"),
                }
            }
            Ok(match s_max {
                Some(m) => EnergyModel::continuous(m),
                None => EnergyModel::continuous_unbounded(),
            })
        }
        "discrete" | "vdd" => {
            let speeds: Result<Vec<f64>, _> = args.iter().map(|s| parse_f64(line, s)).collect();
            let modes = DiscreteModes::new(&speeds?).map_err(|e| ParseError {
                line,
                message: e.to_string(),
                token: None,
            })?;
            Ok(if kind == "discrete" {
                EnergyModel::Discrete(modes)
            } else {
                EnergyModel::VddHopping(modes)
            })
        }
        "incremental" => {
            let (mut smin, mut smax, mut delta) = (None, None, None);
            for a in args {
                let (k, v) = parse_kv(line, a)?;
                match k {
                    "smin" => smin = Some(v),
                    "smax" => smax = Some(v),
                    "delta" => delta = Some(v),
                    other => return err_tok(line, other, "unknown incremental option"),
                }
            }
            let (Some(lo), Some(hi), Some(d)) = (smin, smax, delta) else {
                return err(line, "incremental needs smin=, smax=, delta=");
            };
            let modes = IncrementalModes::new(lo, hi, d).map_err(|e| ParseError {
                line,
                message: e.to_string(),
                token: None,
            })?;
            Ok(EnergyModel::Incremental(modes))
        }
        other => err_tok(line, other, "unknown model kind"),
    }
}

/// Render an instance back into the text format. Round-trip safe:
/// parsing the output reproduces the same execution graph, deadline
/// and model (serialization edges are written explicitly and
/// deduplicated on re-parse).
pub fn write(
    graph: &TaskGraph,
    mapping: Option<&Mapping>,
    deadline: f64,
    model: &EnergyModel,
) -> String {
    let mut out = String::new();
    out.push_str("tasks");
    for &w in graph.weights() {
        out.push_str(&format!(" {w}"));
    }
    out.push('\n');
    for &(u, v) in graph.edges() {
        out.push_str(&format!("edge {} {}\n", u.index(), v.index()));
    }
    if let Some(m) = mapping {
        for list in m.lists() {
            out.push_str("proc");
            for t in list {
                out.push_str(&format!(" {}", t.index()));
            }
            out.push('\n');
        }
    }
    out.push_str(&format!("deadline {deadline}\n"));
    match model {
        EnergyModel::Continuous { s_max: None } => out.push_str("model continuous\n"),
        EnergyModel::Continuous { s_max: Some(m) } => {
            out.push_str(&format!("model continuous smax={m}\n"))
        }
        EnergyModel::Discrete(m) => {
            out.push_str("model discrete");
            for s in m.speeds() {
                out.push_str(&format!(" {s}"));
            }
            out.push('\n');
        }
        EnergyModel::VddHopping(m) => {
            out.push_str("model vdd");
            for s in m.speeds() {
                out.push_str(&format!(" {s}"));
            }
            out.push('\n');
        }
        EnergyModel::Incremental(m) => out.push_str(&format!(
            "model incremental smin={} smax={} delta={}\n",
            m.s_min(),
            m.s_max(),
            m.delta()
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIAMOND: &str = "\
# a diamond on two processors
tasks 2.0 3.0 5.0 1.0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
proc 0 1 3
proc 2
deadline 8.0
model continuous smax=2.0
";

    #[test]
    fn parses_full_instance() {
        let inst = parse(DIAMOND).unwrap();
        assert_eq!(inst.graph.n(), 4);
        // Serialization edge (1,3) already exists; mapping adds (0,1)
        // (already exists) — so the edge count matches the app graph.
        assert_eq!(inst.deadline, 8.0);
        assert_eq!(inst.model.name(), "Continuous");
        assert!(inst.mapping.is_some());
    }

    #[test]
    fn parses_all_model_kinds() {
        for (spec, name) in [
            ("model continuous", "Continuous"),
            ("model discrete 1.0 2.0", "Discrete"),
            ("model vdd 1.0 2.0", "Vdd-Hopping"),
            (
                "model incremental smin=0.5 smax=2.0 delta=0.5",
                "Incremental",
            ),
        ] {
            let text = format!("tasks 1.0\ndeadline 2.0\n{spec}\n");
            let inst = parse(&text).unwrap();
            assert_eq!(inst.model.name(), name, "{spec}");
        }
    }

    #[test]
    fn reports_line_numbers_and_offending_tokens() {
        // Edge endpoint out of range is pinned to its line and token.
        let text = "tasks 1.0 2.0\nedge 0 5\ndeadline 1.0\nmodel continuous\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.token.as_deref(), Some("5"));
        assert!(e.message.contains("unknown task T5"), "{e}");
        // Unknown directive carries the directive as the token.
        let e = parse("tasks 1.0\nbogus 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.token.as_deref(), Some("bogus"));
        assert!(e.to_string().contains("bogus"), "{e}");
        // Malformed number inside a directive.
        let e = parse("tasks 1.0 fast\ndeadline 1.0\nmodel continuous\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.token.as_deref(), Some("fast"));
        // Self-loop attribution.
        let e = parse("tasks 1.0\nedge 0 0\ndeadline 1.0\nmodel continuous\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("self-loop"), "{e}");
        // Unknown model kind.
        let e = parse("tasks 1.0\ndeadline 1.0\nmodel warp\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.token.as_deref(), Some("warp"));
    }

    #[test]
    fn missing_directives_are_reported() {
        assert!(parse("deadline 1.0\nmodel continuous\n")
            .unwrap_err()
            .message
            .contains("tasks"));
        assert!(parse("tasks 1.0\nmodel continuous\n")
            .unwrap_err()
            .message
            .contains("deadline"));
        assert!(parse("tasks 1.0\ndeadline 1.0\n")
            .unwrap_err()
            .message
            .contains("model"));
    }

    #[test]
    fn bad_mapping_is_rejected() {
        let text = "\
tasks 1.0 1.0
edge 0 1
proc 1 0
deadline 5.0
model continuous
";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("mapping"), "{e}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\ntasks 1.0  # inline comment\n\ndeadline 2.0\nmodel continuous\n";
        let inst = parse(text).unwrap();
        assert_eq!(inst.graph.n(), 1);
    }

    #[test]
    fn duplicate_directives_rejected() {
        let text = "tasks 1.0\ntasks 2.0\ndeadline 1.0\nmodel continuous\n";
        assert!(parse(text).unwrap_err().message.contains("duplicate"));
        let text = "tasks 1.0\ndeadline 1.0\nmodel continuous\nmodel continuous\n";
        assert!(parse(text).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn write_parse_roundtrip() {
        let inst = parse(DIAMOND).unwrap();
        let text = write(
            &inst.graph,
            inst.mapping.as_ref(),
            inst.deadline,
            &inst.model,
        );
        let back = parse(&text).unwrap();
        assert_eq!(back.graph, inst.graph);
        assert_eq!(back.deadline, inst.deadline);
        assert_eq!(back.model, inst.model);
        // All four model kinds survive a round-trip.
        for spec in [
            "model continuous\n",
            "model continuous smax=1.5\n",
            "model discrete 1.0 2.0\n",
            "model vdd 1.0 2.0\n",
            "model incremental smin=0.5 smax=2.0 delta=0.5\n",
        ] {
            let text = format!("tasks 1.0\ndeadline 2.0\n{spec}");
            let a = parse(&text).unwrap();
            let again = write(&a.graph, None, a.deadline, &a.model);
            let b = parse(&again).unwrap();
            assert_eq!(a.model, b.model, "{spec}");
        }
    }

    #[test]
    fn solve_roundtrip() {
        let inst = parse(DIAMOND).unwrap();
        let sol = reclaim_core::solve(
            &inst.graph,
            inst.deadline,
            &inst.model,
            models::PowerLaw::CUBIC,
        )
        .unwrap();
        assert!(sol.energy > 0.0);
    }
}
