//! Instance generation (`reclaim gen`): turn any workload family into
//! an instance file.

use crate::instance::write;
use mapping::{list_schedule, Priority};
use models::{DiscreteModes, EnergyModel, IncrementalModes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::{analysis, generators, workflows, TaskGraph};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Processors for the list-scheduled mapping (0 = no mapping:
    /// the graph is used as the execution graph directly).
    pub procs: usize,
    /// Deadline as a multiple of the minimum feasible deadline at the
    /// model's top speed.
    pub tightness: f64,
    /// Energy-model spec: `continuous`, `discrete`, `vdd`, or
    /// `incremental`.
    pub model: String,
    /// RNG seed for the random families.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            procs: 2,
            tightness: 1.4,
            model: "continuous".into(),
            seed: 42,
        }
    }
}

/// Build the application graph for a family spec like
/// `fft 3`, `lu 4`, `stencil 5 5`, `chain 8`, `fork 6`, `sp 12`,
/// `layered 4 3`, `ge 8`, `dac 3 2`.
pub fn family_graph(family: &str, params: &[usize], seed: u64) -> Result<TaskGraph, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = |i: usize, d: usize| params.get(i).copied().unwrap_or(d);
    Ok(match family {
        "fft" => workflows::fft(p(0, 3) as u32),
        "lu" => workflows::lu(p(0, 4)),
        "stencil" => workflows::stencil(p(0, 4), p(1, 4)),
        "ge" => workflows::gaussian_elimination(p(0, 6)),
        "dac" => workflows::divide_and_conquer(p(0, 3) as u32, p(1, 2), 1.0, 4.0),
        "chain" => generators::chain(&generators::random_weights(p(0, 8), 1.0, 5.0, &mut rng)),
        "fork" => {
            let ws = generators::random_weights(p(0, 6), 1.0, 5.0, &mut rng);
            generators::fork(2.0, &ws)
        }
        "tree" => generators::random_out_tree(p(0, 12), 1.0, 5.0, &mut rng),
        "sp" => generators::random_sp(p(0, 12), 0.55, 1.0, 5.0, &mut rng).0,
        "layered" => generators::layered_dag(p(0, 4), p(1, 3), 0.35, 1.0, 5.0, &mut rng),
        other => return Err(format!("unknown family {other:?}")),
    })
}

/// The default mode ladder used for the generated discrete-ish models.
fn default_modes() -> DiscreteModes {
    DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).expect("static ladder")
}

/// Generate a complete instance file for the family.
pub fn generate(family: &str, params: &[usize], opts: &GenOptions) -> Result<String, String> {
    let app = family_graph(family, params, opts.seed)?;
    let (graph, mapping) = if opts.procs == 0 {
        (app, None)
    } else {
        let m = list_schedule(&app, opts.procs, Priority::BottomLevel);
        let exec = m.execution_graph(&app).map_err(|e| e.to_string())?;
        (exec, Some(m))
    };
    let model = match opts.model.as_str() {
        "continuous" => EnergyModel::continuous(default_modes().s_max()),
        "discrete" => EnergyModel::Discrete(default_modes()),
        "vdd" => EnergyModel::VddHopping(default_modes()),
        "incremental" => {
            EnergyModel::Incremental(IncrementalModes::new(0.5, 3.0, 0.25).expect("static grid"))
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    let s_top = model.top_speed().expect("generated models are bounded");
    let deadline = opts.tightness * analysis::critical_path_weight(&graph) / s_top;
    Ok(write(&graph, mapping.as_ref(), deadline, &model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::parse;

    #[test]
    fn all_families_generate_parseable_instances() {
        for family in [
            "fft", "lu", "stencil", "ge", "dac", "chain", "fork", "tree", "sp", "layered",
        ] {
            for model in ["continuous", "discrete", "vdd", "incremental"] {
                let opts = GenOptions {
                    model: model.into(),
                    ..Default::default()
                };
                let text = generate(family, &[], &opts)
                    .unwrap_or_else(|e| panic!("{family}/{model}: {e}"));
                let inst =
                    parse(&text).unwrap_or_else(|e| panic!("{family}/{model}: reparse: {e}"));
                assert!(inst.graph.n() >= 2, "{family}");
            }
        }
    }

    #[test]
    fn generated_instances_solve() {
        let opts = GenOptions {
            model: "vdd".into(),
            ..Default::default()
        };
        let text = generate("lu", &[3], &opts).unwrap();
        let inst = parse(&text).unwrap();
        let sol = reclaim_core::solve(
            &inst.graph,
            inst.deadline,
            &inst.model,
            models::PowerLaw::CUBIC,
        )
        .unwrap();
        assert!(sol.energy > 0.0);
    }

    #[test]
    fn zero_procs_means_no_mapping() {
        let opts = GenOptions {
            procs: 0,
            ..Default::default()
        };
        let text = generate("stencil", &[3, 3], &opts).unwrap();
        let inst = parse(&text).unwrap();
        assert!(inst.mapping.is_none());
    }

    #[test]
    fn unknown_family_and_model_rejected() {
        assert!(generate("bogus", &[], &GenOptions::default()).is_err());
        let opts = GenOptions {
            model: "bogus".into(),
            ..Default::default()
        };
        assert!(generate("chain", &[], &opts).is_err());
    }
}
