//! # reclaim-cli — command-line front end
//!
//! Parses a plain-text instance format describing a task graph, an
//! optional fixed mapping, a deadline and an energy model, and drives
//! the `reclaim-core` solvers. See [`parse`] for the format and the
//! `reclaim` binary for the commands.

pub mod edits;
pub mod gen;
pub mod instance;
pub mod pareto;

pub use edits::{parse_edits, EditParseError};
pub use gen::{generate, GenOptions};
pub use instance::{parse, write, Instance, ParseError};
