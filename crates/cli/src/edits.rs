//! The `--patch` edit-spec mini-language.
//!
//! `reclaim ask <file> --patch SPEC` sends a protocol-v2 `patch`
//! request; `SPEC` is a `;`-separated list of edit operations, applied
//! in order:
//!
//! | op | meaning |
//! |---|---|
//! | `set:T:W` | set task `T`'s cost to `W` ([`GraphEdit::SetWeight`]) |
//! | `link:U:V` | insert precedence edge `U → V` ([`GraphEdit::InsertEdge`]) |
//! | `unlink:U:V` | remove precedence edge `U → V` ([`GraphEdit::RemoveEdge`]) |
//! | `add:W[:pA.B…][:sC.D…]` | append a task of cost `W` with predecessors `A.B…` and successors `C.D…` ([`GraphEdit::AddTask`]) |
//! | `drop:T` | remove task `T` ([`GraphEdit::RemoveTask`]) |
//!
//! Examples: `set:3:2.5`, `set:0:1;link:1:2`,
//! `add:1.5:p0.1:s3;drop:2`. Whitespace around ops is ignored.
//!
//! Parse failures are reported as a structured [`EditParseError`]
//! naming the 1-based op position and the offending token, in the
//! same spirit as [`crate::instance::ParseError`] — a bad spec on a
//! long command line is attributable from the error alone.

use std::fmt;

use taskgraph::edit::GraphEdit;

/// A `--patch` spec rejection: which op broke, and on what token.
#[derive(Debug, Clone, PartialEq)]
pub struct EditParseError {
    /// 1-based position of the offending op in the `;`-separated
    /// spec (0 for spec-global errors, e.g. an empty spec).
    pub op: usize,
    /// What went wrong, in one clause.
    pub message: String,
    /// The exact token that failed to parse, when one is to blame
    /// (a non-numeric id/weight, an unknown op head, a bad list tag).
    pub token: Option<String>,
}

impl fmt::Display for EditParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {}: {}", self.op, self.message)?;
        if let Some(t) = &self.token {
            write!(f, " (offending token {t:?})")?;
        }
        Ok(())
    }
}

impl std::error::Error for EditParseError {}

fn err_tok<T>(
    op: usize,
    token: impl Into<String>,
    message: impl Into<String>,
) -> Result<T, EditParseError> {
    Err(EditParseError {
        op,
        message: message.into(),
        token: Some(token.into()),
    })
}

/// Parse a `--patch` edit spec (see the module docs for the grammar).
pub fn parse_edits(spec: &str) -> Result<Vec<GraphEdit>, EditParseError> {
    let mut edits = Vec::new();
    for (idx, raw) in spec.split(';').enumerate() {
        let pos = idx + 1;
        let op = raw.trim();
        if op.is_empty() {
            continue;
        }
        let mut parts = op.split(':');
        let head = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let task = |s: &str| -> Result<usize, EditParseError> {
            s.parse().or_else(|_| err_tok(pos, s, "not a task id"))
        };
        let weight = |s: &str| -> Result<f64, EditParseError> {
            s.parse().or_else(|_| err_tok(pos, s, "not a weight"))
        };
        let edit = match (head, rest.as_slice()) {
            ("set", [t, w]) => GraphEdit::SetWeight {
                task: task(t)?,
                weight: weight(w)?,
            },
            ("link", [u, v]) => GraphEdit::InsertEdge {
                from: task(u)?,
                to: task(v)?,
            },
            ("unlink", [u, v]) => GraphEdit::RemoveEdge {
                from: task(u)?,
                to: task(v)?,
            },
            ("add", [w, lists @ ..]) if lists.len() <= 2 => {
                let mut preds = Vec::new();
                let mut succs = Vec::new();
                for list in lists {
                    let (target, ids) = if let Some(ids) = list.strip_prefix('p') {
                        (&mut preds, ids)
                    } else if let Some(ids) = list.strip_prefix('s') {
                        (&mut succs, ids)
                    } else {
                        return err_tok(pos, *list, "expected a p… or s… id list");
                    };
                    for id in ids.split('.').filter(|s| !s.is_empty()) {
                        target.push(task(id)?);
                    }
                }
                GraphEdit::AddTask {
                    weight: weight(w)?,
                    preds,
                    succs,
                }
            }
            ("drop", [t]) => GraphEdit::RemoveTask { task: task(t)? },
            _ => {
                return err_tok(
                    pos,
                    op,
                    "unknown edit op (want set:T:W, link:U:V, unlink:U:V, \
                     add:W[:pA.B][:sC.D], or drop:T)",
                )
            }
        };
        edits.push(edit);
    }
    if edits.is_empty() {
        return Err(EditParseError {
            op: 0,
            message: "empty edit spec".into(),
            token: None,
        });
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let edits = parse_edits("set:3:2.5; link:1:2 ;unlink:0:2;add:1.5:p0.1:s3;drop:2").unwrap();
        assert_eq!(
            edits,
            vec![
                GraphEdit::SetWeight {
                    task: 3,
                    weight: 2.5
                },
                GraphEdit::InsertEdge { from: 1, to: 2 },
                GraphEdit::RemoveEdge { from: 0, to: 2 },
                GraphEdit::AddTask {
                    weight: 1.5,
                    preds: vec![0, 1],
                    succs: vec![3]
                },
                GraphEdit::RemoveTask { task: 2 },
            ]
        );
    }

    #[test]
    fn add_lists_are_optional() {
        assert_eq!(
            parse_edits("add:2.0").unwrap(),
            vec![GraphEdit::AddTask {
                weight: 2.0,
                preds: vec![],
                succs: vec![]
            }]
        );
        assert_eq!(
            parse_edits("add:2.0:s1.2").unwrap(),
            vec![GraphEdit::AddTask {
                weight: 2.0,
                preds: vec![],
                succs: vec![1, 2]
            }]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            ";",
            "warp:1",
            "set:1",
            "set:x:1",
            "set:1:fast",
            "link:1",
            "add:1.0:q2",
            "add:2.0:",
            "add:1:é2",
            "drop:last",
        ] {
            assert!(parse_edits(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn errors_cite_op_position_and_token() {
        // The bad token sits in the *second* op; position is 1-based.
        let e = parse_edits("set:0:1;set:two:1").unwrap_err();
        assert_eq!(e.op, 2);
        assert_eq!(e.token.as_deref(), Some("two"));
        assert_eq!(
            e.to_string(),
            "op 2: not a task id (offending token \"two\")"
        );

        // Unknown op heads blame the whole op text.
        let e = parse_edits("set:0:1;warp:9").unwrap_err();
        assert_eq!((e.op, e.token.as_deref()), (2, Some("warp:9")));

        // A bad add-list tag names the list, not the op.
        let e = parse_edits("add:1.0:q2").unwrap_err();
        assert_eq!((e.op, e.token.as_deref()), (1, Some("q2")));

        // Empty specs are spec-global: op 0, no token.
        let e = parse_edits(" ; ").unwrap_err();
        assert_eq!((e.op, e.token.as_deref()), (0, None));
        assert_eq!(e.to_string(), "op 0: empty edit spec");
    }
}
