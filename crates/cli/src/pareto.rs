//! Energy–deadline trade-off curves (the bicriteria view: the paper
//! is a bi-criteria optimization — energy under a deadline — so the
//! natural user-facing output is the whole Pareto front).

use models::{EnergyModel, PowerLaw};
use reclaim_core::{solve, SolveError};
use taskgraph::analysis::critical_path_weight;
use taskgraph::TaskGraph;

/// One point of the energy–deadline curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// The deadline.
    pub deadline: f64,
    /// The optimal (or approximated, per the model's solver) energy.
    pub energy: f64,
}

/// Sample the energy–deadline curve at `points` geometrically spaced
/// deadlines between the minimum feasible deadline (scaled by
/// `lo_factor > 1`) and `hi_factor` times it.
///
/// Returns an error only if the model has no top speed **and**
/// `lo_factor`/`hi_factor` are invalid; infeasible leading points are
/// skipped.
pub fn energy_curve(
    g: &TaskGraph,
    model: &EnergyModel,
    p: PowerLaw,
    points: usize,
    lo_factor: f64,
    hi_factor: f64,
) -> Result<Vec<ParetoPoint>, SolveError> {
    assert!(points >= 2, "need at least two points");
    if !(lo_factor > 0.0 && hi_factor > lo_factor) {
        return Err(SolveError::Unsupported(
            "need 0 < lo_factor < hi_factor".into(),
        ));
    }
    // Reference deadline: critical path at top speed (or at unit speed
    // for unbounded Continuous, where any D > 0 is feasible).
    let base = match model.top_speed() {
        Some(sm) => critical_path_weight(g) / sm,
        None => critical_path_weight(g),
    };
    let mut out = Vec::with_capacity(points);
    let ratio = (hi_factor / lo_factor).powf(1.0 / (points - 1) as f64);
    let mut f = lo_factor;
    for _ in 0..points {
        let d = f * base;
        match solve(g, d, model, p) {
            Ok(sol) => out.push(ParetoPoint {
                deadline: d,
                energy: sol.energy,
            }),
            Err(SolveError::Infeasible { .. }) => {} // skip the infeasible edge
            Err(e) => return Err(e),
        }
        f *= ratio;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::DiscreteModes;
    use taskgraph::generators;

    #[test]
    fn curve_is_monotone_decreasing() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
        for model in [
            EnergyModel::continuous(2.0),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes),
        ] {
            let curve = energy_curve(&g, &model, PowerLaw::CUBIC, 6, 1.05, 4.0).unwrap();
            assert!(curve.len() >= 5, "{}", model.name());
            for w in curve.windows(2) {
                assert!(w[0].deadline < w[1].deadline);
                assert!(
                    w[1].energy <= w[0].energy * (1.0 + 1e-6),
                    "{}: energy must decrease along the front",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn unbounded_continuous_uses_unit_speed_reference() {
        let g = generators::chain(&[2.0, 2.0]);
        let curve = energy_curve(
            &g,
            &EnergyModel::continuous_unbounded(),
            PowerLaw::CUBIC,
            3,
            0.5,
            2.0,
        )
        .unwrap();
        assert_eq!(curve.len(), 3);
        // E(D) = (Σw)³/D²: check the first point.
        let d0 = curve[0].deadline;
        assert!((curve[0].energy - 64.0 / (d0 * d0)).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_factors() {
        let g = generators::chain(&[1.0]);
        assert!(energy_curve(
            &g,
            &EnergyModel::continuous_unbounded(),
            PowerLaw::CUBIC,
            3,
            2.0,
            1.0
        )
        .is_err());
    }
}
