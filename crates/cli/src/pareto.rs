//! Energy–deadline trade-off curves (the bicriteria view: the paper
//! is a bi-criteria optimization — energy under a deadline — so the
//! natural user-facing output is the whole Pareto front).
//!
//! Since the engine refactor this module is a thin veneer over
//! [`Engine::energy_curve`], which prepares the graph once, exploits
//! the unbounded-Continuous scaling law, warm-starts the Vdd LP
//! across points, and fans the remaining models out over threads.

use models::{EnergyModel, PowerLaw};
use reclaim_core::{Engine, SolveError};
use taskgraph::{PreparedGraph, TaskGraph};

/// One point of the energy–deadline curve (re-exported from the
/// engine; `ParetoPoint` is the historical name).
pub use reclaim_core::CurvePoint as ParetoPoint;

/// Sample the energy–deadline curve at `points ≥ 2` geometrically
/// spaced deadlines between the minimum feasible deadline (scaled by
/// `lo_factor > 1`) and `hi_factor` times it.
///
/// Errors on fewer than two points or invalid factors
/// (`SolveError::Unsupported`); infeasible leading points are
/// skipped.
pub fn energy_curve(
    g: &TaskGraph,
    model: &EnergyModel,
    p: PowerLaw,
    points: usize,
    lo_factor: f64,
    hi_factor: f64,
) -> Result<Vec<ParetoPoint>, SolveError> {
    let prep = PreparedGraph::new(g);
    Engine::new(p).energy_curve(&prep, model, points, lo_factor, hi_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::DiscreteModes;
    use taskgraph::generators;

    #[test]
    fn curve_is_monotone_decreasing() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
        for model in [
            EnergyModel::continuous(2.0),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes),
        ] {
            let curve = energy_curve(&g, &model, PowerLaw::CUBIC, 6, 1.05, 4.0).unwrap();
            assert!(curve.len() >= 5, "{}", model.name());
            for w in curve.windows(2) {
                assert!(w[0].deadline < w[1].deadline);
                assert!(
                    w[1].energy <= w[0].energy * (1.0 + 1e-6),
                    "{}: energy must decrease along the front",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn unbounded_continuous_uses_unit_speed_reference() {
        let g = generators::chain(&[2.0, 2.0]);
        let curve = energy_curve(
            &g,
            &EnergyModel::continuous_unbounded(),
            PowerLaw::CUBIC,
            3,
            0.5,
            2.0,
        )
        .unwrap();
        assert_eq!(curve.len(), 3);
        // E(D) = (Σw)³/D²: check the first point.
        let d0 = curve[0].deadline;
        assert!((curve[0].energy - 64.0 / (d0 * d0)).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_factors() {
        let g = generators::chain(&[1.0]);
        assert!(energy_curve(
            &g,
            &EnergyModel::continuous_unbounded(),
            PowerLaw::CUBIC,
            3,
            2.0,
            1.0
        )
        .is_err());
    }

    #[test]
    fn too_few_points_error_instead_of_panicking() {
        let g = generators::chain(&[1.0]);
        for points in [0, 1] {
            assert!(matches!(
                energy_curve(
                    &g,
                    &EnergyModel::continuous_unbounded(),
                    PowerLaw::CUBIC,
                    points,
                    1.0,
                    2.0
                ),
                Err(SolveError::Unsupported(_))
            ));
        }
    }
}
