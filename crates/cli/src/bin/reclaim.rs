//! `reclaim` — solve MinEnergy(Ĝ, D) instances from the command line.
//!
//! ```text
//! reclaim solve <instance-file> [--dot]
//! reclaim sweep <instance-file> [--points N] [--lo F] [--hi F]
//! reclaim dmin  <instance-file>
//! reclaim check <instance-file>
//! reclaim serve  [--socket PATH] [--tcp ADDR] [--workers N]
//!                [--store DIR] [--store-fsync] …
//! reclaim ask    [<instance-file>] [--socket PATH|--tcp ADDR]
//!                [--patch SPEC] [--stats] [--shutdown]
//!                [--pipeline K] [--timeout MS] [--as-of N]
//! reclaim lineage <key> [--socket PATH|--tcp ADDR]
//! reclaim corpus <dir> [--shards N] [--json DIR]
//!                [--socket PATH|--tcp ADDR]
//! ```
//!
//! See `crates/cli/src/instance.rs` for the instance format,
//! `docs/PROTOCOL.md` for the daemon wire protocol, and
//! `reclaim_cli::edits` for the `--patch` edit-spec grammar.

use models::PowerLaw;
use reclaim_cli::{parse, Instance};
use reclaim_core::Engine;
use reclaim_service::proto::{Request, Response};
use reclaim_service::{client::Client, corpus, daemon, Endpoint};
use report::Table;
use taskgraph::PreparedGraph;

fn usage() -> ! {
    eprintln!(
        "usage: reclaim <command> <instance-file> [options]\n\
         commands:\n\
           solve    — solve the instance, print the schedule [--dot]\n\
           simulate — solve, then replay in the discrete-event simulator\n\
           gantt    — per-processor Gantt chart (needs proc lines) [--width N]\n\
           sweep    — energy–deadline curve [--points N] [--lo F] [--hi F]\n\
           pareto   — the whole trade-off curve as closed-form segments\n\
                      [--lo F] [--hi F] [--exact] (without --exact:\n\
                      alias of sweep)\n\
           dmin     — minimum feasible deadline at top speed\n\
           check    — parse and validate the instance only\n\
           gen      — generate an instance: reclaim gen <family> [params…]\n\
                      [--procs P] [--model M] [--tightness T] [--seed S]\n\
                      families: fft lu stencil ge dac chain fork tree sp layered\n\
           serve    — run the reclaimd daemon in the foreground\n\
                      [--socket PATH] [--tcp ADDR] [--workers N]\n\
                      [--cache-entries N] [--cache-bytes B] [--alpha A]\n\
                      [--max-connections N] [--max-inflight N]\n\
                      [--store DIR] [--store-fsync]\n\
           ask      — send requests to a running daemon\n\
                      reclaim ask [<file>] [--socket PATH|--tcp ADDR]\n\
                      [--patch SPEC] [--stats] [--shutdown]\n\
                      [--pipeline K] [--timeout MS] [--as-of N]\n\
                      SPEC: ';'-separated edits — set:T:W link:U:V\n\
                      unlink:U:V add:W[:pA.B][:sC.D] drop:T\n\
                      --as-of N solves the version N recorded patches\n\
                      back up the store's lineage chain (needs --store)\n\
           lineage  — recorded patch history of a stored instance\n\
                      reclaim lineage <key> [--socket PATH|--tcp ADDR]\n\
           corpus   — shard a directory of .inst files across engines\n\
                      reclaim corpus <dir> [--shards N] [--json DIR]\n\
                      [--socket PATH|--tcp ADDR]  (run through a daemon)"
    );
    std::process::exit(2);
}

/// Resolve `--socket` / `--tcp` flags into a daemon endpoint
/// (default: `reclaimd.sock` in the working directory).
fn endpoint_from_flags(flags: &[String]) -> Endpoint {
    let value = |name: &str| {
        flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| flags.get(i + 1))
            .cloned()
    };
    if let Some(addr) = value("--tcp") {
        let addr = addr.parse().unwrap_or_else(|_| {
            eprintln!("bad --tcp address {addr:?}");
            std::process::exit(2);
        });
        Endpoint::Tcp(addr)
    } else {
        Endpoint::Unix(
            value("--socket")
                .unwrap_or_else(|| "reclaimd.sock".into())
                .into(),
        )
    }
}

fn ask_command(args: &[String]) {
    let file = args.first().filter(|a| !a.starts_with("--"));
    let flags: Vec<String> = args
        .iter()
        .skip(usize::from(file.is_some()))
        .cloned()
        .collect();
    let stats = flags.iter().any(|a| a == "--stats");
    let shutdown = flags.iter().any(|a| a == "--shutdown");
    let patch_spec = flags
        .iter()
        .position(|a| a == "--patch")
        .map(|i| match flags.get(i + 1) {
            Some(spec) => spec.clone(),
            None => {
                eprintln!("--patch requires an edit spec (e.g. 'set:3:2.5;link:1:2')");
                std::process::exit(2);
            }
        });
    if file.is_none() && !stats && !shutdown {
        eprintln!("ask needs an instance file, --stats, or --shutdown");
        std::process::exit(2);
    }
    if patch_spec.is_some() && file.is_none() {
        eprintln!("--patch needs the instance file the patch is based on");
        std::process::exit(2);
    }
    let flag_value = |name: &str| {
        flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| flags.get(i + 1))
            .cloned()
    };
    let pipeline_k: usize = flag_value("--pipeline")
        .map(|v| {
            v.parse().ok().filter(|&k| k >= 1).unwrap_or_else(|| {
                eprintln!("--pipeline needs an integer ≥ 1, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let timeout_ms: Option<u64> = flag_value("--timeout").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--timeout needs milliseconds, got {v:?}");
            std::process::exit(2);
        })
    });
    let as_of: Option<u64> = flag_value("--as-of").map(|v| {
        v.parse().ok().filter(|&d| d >= 1).unwrap_or_else(|| {
            eprintln!("--as-of needs a patch depth ≥ 1, got {v:?}");
            std::process::exit(2);
        })
    });
    if as_of.is_some() && file.is_none() {
        eprintln!("--as-of needs the instance file whose lineage to rewind");
        std::process::exit(2);
    }
    let ep = endpoint_from_flags(&flags);
    let mut client = Client::connect(&ep).unwrap_or_else(|e| {
        eprintln!("cannot connect to {ep}: {e} (is reclaimd running?)");
        std::process::exit(1);
    });
    client.set_timeout_ms(timeout_ms);
    client.set_as_of(as_of);
    // Pipelined mode: send the file's solve K times in one window
    // (responses matched by id, completion order) — a quick way to
    // drive the daemon cache and the out-of-order write path from the
    // shell.
    if pipeline_k > 1 {
        let Some(path) = file else {
            eprintln!("--pipeline needs an instance file");
            std::process::exit(2);
        };
        let inst = load(path);
        let req = Request::Solve {
            graph: inst.graph.clone(),
            model: inst.model.clone(),
            deadline: inst.deadline,
        };
        let t0 = std::time::Instant::now();
        let mut pipe = client.pipeline(pipeline_k);
        for _ in 0..pipeline_k {
            pipe.send(req.clone()).unwrap_or_else(|e| {
                eprintln!("pipelined send failed: {e}");
                std::process::exit(1);
            });
        }
        let responses = pipe.drain().unwrap_or_else(|e| {
            eprintln!("pipelined exchange failed: {e}");
            std::process::exit(1);
        });
        let elapsed = t0.elapsed();
        let mut hits = 0usize;
        for r in &responses {
            match &r.response {
                Response::Solve(s) => hits += usize::from(s.cached),
                Response::Error(e) => {
                    eprintln!("daemon error: {e}");
                    std::process::exit(1);
                }
                other => {
                    eprintln!("unexpected response: {other:?}");
                    std::process::exit(1);
                }
            }
        }
        println!(
            "pipelined {} solves | window {} | {} cache hits | {:.3} ms total | {:.1} µs/request",
            responses.len(),
            pipeline_k,
            hits,
            elapsed.as_secs_f64() * 1e3,
            elapsed.as_secs_f64() * 1e6 / responses.len() as f64,
        );
        if stats || shutdown {
            // Fall through to the serial paths below.
        } else {
            return;
        }
    }
    let mut roundtrip = |req: Request| {
        // `--as-of` applies to the solve only; the same invocation's
        // follow-ups (patch, stats, shutdown) run at the present.
        if !matches!(req, Request::Solve { .. }) {
            client.set_as_of(None);
        }
        client
            .roundtrip(req)
            .unwrap_or_else(|e| {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            })
            .response
    };
    // (In pipelined mode the file was already solved above.)
    if let Some(path) = file.filter(|_| pipeline_k == 1) {
        let inst = load(path);
        match roundtrip(Request::Solve {
            graph: inst.graph.clone(),
            model: inst.model.clone(),
            deadline: inst.deadline,
        }) {
            Response::Solve(r) => println!(
                "energy {:.6} | algorithm {} | makespan {:.6} | \
                 solve {} µs | prep {} µs | cache {} | worker {}",
                r.energy,
                r.algorithm,
                r.makespan,
                r.solve_ns / 1_000,
                r.prep_ns / 1_000,
                if r.cached { "hit" } else { "miss" },
                r.worker
            ),
            Response::Error(e) => {
                eprintln!("daemon error: {e}");
                std::process::exit(1);
            }
            other => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
        }
        if let Some(spec) = &patch_spec {
            let edits = reclaim_cli::parse_edits(spec).unwrap_or_else(|e| {
                eprintln!("--patch: {e}");
                std::process::exit(2);
            });
            // The daemon holds the just-solved instance; name it by
            // content key and send only the delta.
            let base = reclaim_core::engine::content_key(&inst.graph, &inst.model);
            match roundtrip(Request::Patch {
                base,
                edits,
                deadline: inst.deadline,
            }) {
                Response::Patch(p) => println!(
                    "patched energy {:.6} | algorithm {} | makespan {:.6} | \
                     solve {} µs | prep {} µs | lp {} | key {}",
                    p.report.energy,
                    p.report.algorithm,
                    p.report.makespan,
                    p.report.solve_ns / 1_000,
                    p.report.prep_ns / 1_000,
                    if p.warm_lp { "warm" } else { "cold" },
                    reclaim_service::proto::key_to_hex(p.key),
                ),
                Response::Error(e) => {
                    eprintln!("daemon error: {e}");
                    std::process::exit(1);
                }
                other => {
                    eprintln!("unexpected response: {other:?}");
                    std::process::exit(1);
                }
            }
        }
    }
    if stats {
        match roundtrip(Request::Stats) {
            Response::Stats(s) => {
                println!(
                    "cache: {} entries | {} bytes | {} hits | {} misses | {} evictions | \
                     {} patch hits | {} patch misses | {} rekeys",
                    s.cache.entries,
                    s.cache.bytes,
                    s.cache.hits,
                    s.cache.misses,
                    s.cache.evictions,
                    s.cache.patch_hits,
                    s.cache.patch_misses,
                    s.cache.rekeys
                );
                println!(
                    "store: {} entries | {} bytes | {} recovered | \
                     {} corrupt skipped | {} replays",
                    s.store.entries,
                    s.store.bytes,
                    s.store.recovered,
                    s.store.corrupt_skipped,
                    s.store.replays
                );
                for (i, w) in s.workers.iter().enumerate() {
                    println!(
                        "worker {i}: {} requests | {} solves | {} µs solving | {} warm lost | \
                         {} bnb nodes | {} steals | {} cancelled | \
                         {} splices ({} miss) | {} cone nodes",
                        w.requests,
                        w.solves,
                        w.solve_ns / 1_000,
                        w.warm_lost,
                        w.bnb_nodes,
                        w.bnb_steals,
                        w.bnb_cancelled,
                        w.sp_splice,
                        w.sp_splice_miss,
                        w.cone_nodes
                    );
                }
                println!(
                    "net: {} connections | {} queue depth | {} inflight | \
                     {} rejected | {} timeouts",
                    s.net.connections,
                    s.net.queue_depth,
                    s.net.inflight,
                    s.net.rejected,
                    s.net.timeouts
                );
            }
            other => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
        }
    }
    if shutdown {
        match roundtrip(Request::Shutdown) {
            Response::Shutdown => println!("daemon stopping"),
            other => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
        }
    }
}

fn corpus_command(args: &[String]) {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("corpus needs a directory of .inst files");
        std::process::exit(2);
    };
    let flags = &args[1..];
    let value = |name: &str| {
        flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| flags.get(i + 1))
            .map(String::as_str)
    };
    let shards: usize = value("--shards")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--shards needs an integer, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(2)
        .max(1);
    let out_dir = value("--json").unwrap_or("bench-json").to_string();

    // Deterministic enumeration: sorted file names. Parse errors are
    // fatal and fully attributed (file, line, offending token).
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("cannot read {dir}: {e}");
            std::process::exit(2);
        })
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "inst"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .inst files in {dir}");
        std::process::exit(2);
    }
    let jobs: Vec<corpus::CorpusJob> = paths
        .iter()
        .map(|p| {
            let inst = load(&p.display().to_string());
            corpus::CorpusJob {
                name: p
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string()),
                graph: inst.graph,
                model: inst.model,
                deadline: inst.deadline,
            }
        })
        .collect();

    // Daemon mode: ship the whole sharded corpus to a running
    // reclaimd as one protocol-v4 request. The daemon partitions with
    // the same content-key rule, so the table and JSON outputs are
    // byte-identical to a local run.
    let outcomes = if flags.iter().any(|a| a == "--socket" || a == "--tcp") {
        let ep = endpoint_from_flags(flags);
        let mut client = Client::connect(&ep).unwrap_or_else(|e| {
            eprintln!("cannot connect to {ep}: {e} (is reclaimd running?)");
            std::process::exit(1);
        });
        match client.roundtrip(Request::Corpus { shards, jobs }) {
            Ok(resp) => match resp.response {
                Response::Corpus(outcomes) => outcomes,
                Response::Error(e) => {
                    eprintln!("daemon error: {e}");
                    std::process::exit(1);
                }
                other => {
                    eprintln!("unexpected response: {other:?}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("corpus request failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        corpus::run_corpus(jobs, shards, PowerLaw::CUBIC)
    };
    let mut t = Table::new(&[
        "shard",
        "files",
        "solved",
        "errors",
        "max tasks",
        "time(ms)",
    ]);
    for o in &outcomes {
        t.row(&[
            format!("{}", o.shard),
            format!("{}", o.entries.len()),
            format!("{}", o.solved()),
            format!("{}", o.entries.len() - o.solved()),
            format!("{}", o.max_tasks()),
            format!("{:.2}", o.elapsed_ns as f64 / 1e6),
        ]);
    }
    println!("{}", t.render());
    let written =
        corpus::write_outputs(std::path::Path::new(&out_dir), &outcomes).unwrap_or_else(|e| {
            eprintln!("cannot write corpus outputs to {out_dir}: {e}");
            std::process::exit(1);
        });
    for p in written {
        println!("wrote {}", p.display());
    }
}

fn generate_command(args: &[String]) {
    let Some(family) = args.first() else { usage() };
    let mut params = Vec::new();
    let mut opts = reclaim_cli::GenOptions::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--procs" => {
                opts.procs = args[i + 1].parse().expect("--procs P");
                i += 2;
            }
            "--model" => {
                opts.model = args[i + 1].clone();
                i += 2;
            }
            "--tightness" => {
                opts.tightness = args[i + 1].parse().expect("--tightness T");
                i += 2;
            }
            "--seed" => {
                opts.seed = args[i + 1].parse().expect("--seed S");
                i += 2;
            }
            v => {
                params.push(v.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("bad family parameter {v:?}");
                    std::process::exit(2);
                }));
                i += 1;
            }
        }
    }
    match reclaim_cli::generate(family, &params, &opts) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("gen failed: {e}");
            std::process::exit(2);
        }
    }
}

/// `reclaim lineage <key>` — print the recorded patch history of the
/// instance stored under `key` (a `0x`-prefixed 32-hex content key,
/// as printed by `ask --patch`), oldest hop first. Needs a daemon
/// started with `--store`.
fn lineage_command(args: &[String]) {
    let Some(raw) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("lineage needs a content key (0x-prefixed 32 hex digits)");
        std::process::exit(2);
    };
    let key = reclaim_service::proto::key_from_hex(raw).unwrap_or_else(|| {
        eprintln!("malformed content key {raw:?} (want 0x-prefixed 32 hex digits)");
        std::process::exit(2);
    });
    let ep = endpoint_from_flags(&args[1..]);
    let mut client = Client::connect(&ep).unwrap_or_else(|e| {
        eprintln!("cannot reach daemon at {ep}: {e}");
        std::process::exit(1);
    });
    let reply = client.lineage(key).unwrap_or_else(|e| {
        eprintln!("request failed: {e}");
        std::process::exit(1);
    });
    match reply.response {
        Response::Lineage(report) => {
            println!(
                "lineage of {}: {} recorded patches",
                reclaim_service::proto::key_to_hex(report.key),
                report.depth
            );
            for (i, hop) in report.hops.iter().enumerate() {
                println!(
                    "  #{}: {} --[{} edits]--> {}",
                    i + 1,
                    reclaim_service::proto::key_to_hex(hop.parent),
                    hop.edits.len(),
                    reclaim_service::proto::key_to_hex(hop.child)
                );
            }
        }
        Response::Error(e) => {
            eprintln!("daemon error: {e}");
            std::process::exit(1);
        }
        other => {
            eprintln!("unexpected response: {other:?}");
            std::process::exit(1);
        }
    }
}

fn load(path: &str) -> Instance {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `gen`, the service commands, and `corpus` take their own
    // arguments, not a single instance file.
    match args.first().map(String::as_str) {
        Some("gen") => return generate_command(&args[1..]),
        Some("serve") => {
            let cfg = daemon::config_from_args(&args[1..]).unwrap_or_else(|e| {
                eprintln!("serve: {e}");
                std::process::exit(2);
            });
            let workers = cfg.workers;
            let d = daemon::Daemon::bind(cfg).unwrap_or_else(|e| {
                eprintln!("serve: bind failed: {e}");
                std::process::exit(1);
            });
            eprintln!("serving on {} ({workers} workers)", d.endpoint());
            if let Err(e) = d.run() {
                eprintln!("serve: {e}");
                std::process::exit(1);
            }
            return;
        }
        Some("ask") => return ask_command(&args[1..]),
        Some("lineage") => return lineage_command(&args[1..]),
        Some("corpus") => return corpus_command(&args[1..]),
        _ => {}
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        usage()
    };
    let flags = &args[2..];
    let flag_value = |name: &str| -> Option<&str> {
        flags
            .iter()
            .position(|a| a == name)
            .and_then(|i| flags.get(i + 1))
            .map(|s| s.as_str())
    };
    let p = PowerLaw::CUBIC;
    let inst = load(path);
    // One prepared graph + engine for whatever the command needs:
    // repeated solves (sweep) share the cached analysis.
    let engine = Engine::new(p);
    let prep = PreparedGraph::new(&inst.graph);
    let solve_or_die = || {
        engine
            .solve(&prep, &inst.model, inst.deadline)
            .unwrap_or_else(|e| {
                eprintln!("solve failed: {e}");
                std::process::exit(1);
            })
    };

    match cmd.as_str() {
        "check" => {
            println!(
                "ok: {} tasks, {} edges, model {}, deadline {}",
                inst.graph.n(),
                inst.graph.m(),
                inst.model.name(),
                inst.deadline
            );
        }
        "dmin" => match inst.model.top_speed() {
            Some(sm) => {
                let dmin = prep.critical_path_weight() / sm;
                println!("{dmin}");
                if inst.deadline < dmin {
                    eprintln!(
                        "warning: instance deadline {} is below dmin — infeasible",
                        inst.deadline
                    );
                    std::process::exit(1);
                }
            }
            None => println!("0 (unbounded speeds: any positive deadline is feasible)"),
        },
        "solve" => {
            let sol = solve_or_die();
            println!(
                "model {} | algorithm {} | energy {:.6} | makespan {:.6} / deadline {}",
                inst.model.name(),
                sol.algorithm,
                sol.energy,
                sol.schedule.makespan(&inst.graph),
                inst.deadline
            );
            let mut t = Table::new(&["task", "weight", "start", "end", "profile"]);
            for task in inst.graph.tasks() {
                let prof = match sol.schedule.profile(task) {
                    models::SpeedProfile::Constant(s) => format!("s={s:.4}"),
                    models::SpeedProfile::Pieces(ps) => ps
                        .iter()
                        .map(|(s, d)| format!("{s:.3}x{d:.3}"))
                        .collect::<Vec<_>>()
                        .join(" + "),
                };
                t.row(&[
                    format!("T{}", task.index()),
                    format!("{:.3}", inst.graph.weight(task)),
                    format!("{:.4}", sol.schedule.start(task)),
                    format!("{:.4}", sol.schedule.completion(task, &inst.graph)),
                    prof,
                ]);
            }
            println!("\n{}", t.render());
            if flags.iter().any(|a| a == "--dot") {
                let sched = &sol.schedule;
                let g = &inst.graph;
                println!(
                    "{}",
                    taskgraph::dot::to_dot_with(g, |i| {
                        let t = taskgraph::TaskId(i);
                        Some(format!(
                            "[{:.3},{:.3}]",
                            sched.start(t),
                            sched.completion(t, g)
                        ))
                    })
                );
            }
        }
        "simulate" => {
            let sol = solve_or_die();
            let res = sim::simulate(&inst.graph, &sol.schedule, p).unwrap_or_else(|e| {
                eprintln!("simulation rejected the schedule: {e}");
                std::process::exit(1);
            });
            if let Some(m) = &inst.mapping {
                sim::check_mapping_consistency(&inst.graph, &sol.schedule, m).unwrap_or_else(|e| {
                    eprintln!("mapping inconsistency: {e}");
                    std::process::exit(1);
                });
            }
            println!(
                "replayed {} tasks | integrated energy {:.6} (analytic {:.6}) | \
                 makespan {:.6} | peak power {:.4} W | avg power {:.4} W",
                res.events.len(),
                res.energy,
                sol.energy,
                res.makespan,
                res.trace.peak_power(),
                res.trace.average_power()
            );
            let drift = (res.energy - sol.energy).abs() / sol.energy.max(1e-12);
            if drift > 1e-6 {
                eprintln!("warning: energy drift {drift:.2e} between trace and analytic");
                std::process::exit(1);
            }
        }
        "gantt" => {
            let Some(m) = &inst.mapping else {
                eprintln!("gantt needs 'proc' lines in the instance");
                std::process::exit(2);
            };
            let width: usize = flag_value("--width")
                .map(|v| v.parse().expect("--width N"))
                .unwrap_or(64);
            let sol = solve_or_die();
            println!("{}", sim::gantt(&inst.graph, &sol.schedule, m, width));
        }
        "sweep" | "pareto" => {
            let points: usize = flag_value("--points")
                .map(|v| v.parse().expect("--points N"))
                .unwrap_or(8);
            let lo: f64 = flag_value("--lo")
                .map(|v| v.parse().expect("--lo F"))
                .unwrap_or(1.05);
            let hi: f64 = flag_value("--hi")
                .map(|v| v.parse().expect("--hi F"))
                .unwrap_or(4.0);
            if cmd == "pareto" && flags.iter().any(|a| a == "--exact") {
                let curve = engine
                    .energy_curve_exact(&prep, &inst.model, lo, hi)
                    .unwrap_or_else(|e| {
                        eprintln!("pareto failed: {e}");
                        std::process::exit(1);
                    });
                let mut t = Table::new(&["from D", "to D", "energy E(D)", "E(from)", "E(to)"]);
                for s in &curve.segments {
                    let form = match s.energy {
                        reclaim_core::CurveEnergy::Affine { a, b } => {
                            format!("{a:.4} {b:+.4}·D")
                        }
                        reclaim_core::CurveEnergy::Power { c, p } => {
                            format!("{c:.4}/D^{p:.2}")
                        }
                    };
                    t.row(&[
                        format!("{:.4}", s.deadline_lo),
                        format!("{:.4}", s.deadline_hi),
                        form,
                        format!("{:.6}", s.energy_at(s.deadline_lo)),
                        format!("{:.6}", s.energy_at(s.deadline_hi)),
                    ]);
                }
                println!("{}", t.render());
                println!(
                    "{} segments ({}) | {} LP breakpoints | {} samples",
                    curve.segments.len(),
                    if curve.exact {
                        "exact closed form"
                    } else {
                        "adaptively refined"
                    },
                    curve.stats.lp_breakpoints,
                    curve.stats.samples,
                );
            } else {
                let curve = engine
                    .energy_curve(&prep, &inst.model, points, lo, hi)
                    .unwrap_or_else(|e| {
                        eprintln!("sweep failed: {e}");
                        std::process::exit(1);
                    });
                let mut t = Table::new(&["deadline", "energy"]);
                for pt in &curve {
                    t.row(&[format!("{:.4}", pt.deadline), format!("{:.6}", pt.energy)]);
                }
                println!("{}", t.render());
                let energies: Vec<f64> = curve.iter().map(|p| p.energy).collect();
                println!("shape: {}", report::sparkline(&energies));
            }
        }
        _ => usage(),
    }
}
