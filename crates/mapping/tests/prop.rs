//! Property tests for mapping generation and execution-graph
//! augmentation.

use mapping::{bottom_levels, list_schedule, random_mapping, round_robin, Priority};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::{analysis, generators, TaskGraph};

fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..25, any::<u64>(), 0.05f64..0.5).prop_map(|(n, seed, pr)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_dag(n, pr, 0.5, 5.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every mapping policy covers each task exactly once and yields
    /// an acyclic execution graph.
    #[test]
    fn mappings_are_valid(g in arb_dag(), procs in 1usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for m in [
            list_schedule(&g, procs, Priority::BottomLevel),
            list_schedule(&g, procs, Priority::Topological),
            round_robin(&g, procs),
            random_mapping(&g, procs, &mut rng),
        ] {
            prop_assert_eq!(m.processors(), procs);
            let assignment = m.processor_of(g.n());
            prop_assert!(assignment.is_ok(), "{:?}", assignment);
            let exec = m.execution_graph(&g);
            prop_assert!(exec.is_ok());
            let exec = exec.unwrap();
            prop_assert!(exec.m() >= g.m());
            // The augmentation preserves weights.
            prop_assert_eq!(exec.weights(), g.weights());
        }
    }

    /// The execution graph's critical path is at least the original's
    /// (adding constraints cannot shorten it) and at most the serial
    /// time.
    #[test]
    fn augmentation_brackets_critical_path(g in arb_dag(), procs in 1usize..5) {
        let base_cp = analysis::critical_path_weight(&g);
        let m = list_schedule(&g, procs, Priority::BottomLevel);
        let exec = m.execution_graph(&g).unwrap();
        let cp = analysis::critical_path_weight(&exec);
        prop_assert!(cp >= base_cp - 1e-9);
        prop_assert!(cp <= g.total_work() + 1e-9);
    }

    /// One processor serializes everything: the execution graph's
    /// critical path equals the total work.
    #[test]
    fn single_processor_serializes(g in arb_dag()) {
        let m = list_schedule(&g, 1, Priority::BottomLevel);
        let exec = m.execution_graph(&g).unwrap();
        prop_assert!((analysis::critical_path_weight(&exec) - g.total_work()).abs()
            <= 1e-9 * g.total_work());
    }

    /// Bottom levels are monotone along edges
    /// (bl(u) ≥ bl(v) + w(u) for u → v).
    #[test]
    fn bottom_levels_monotone(g in arb_dag()) {
        let bl = bottom_levels(&g);
        for &(u, v) in g.edges() {
            prop_assert!(bl[u.index()] >= bl[v.index()] + g.weight(u) - 1e-9);
        }
    }

    /// The list schedule's unit-speed makespan respects the classic
    /// Graham bound: ≤ total/p + cp (a sanity check that the
    /// simulated placement is a real list schedule).
    #[test]
    fn graham_bound(g in arb_dag(), procs in 1usize..5) {
        let m = list_schedule(&g, procs, Priority::BottomLevel);
        let exec = m.execution_graph(&g).unwrap();
        let makespan = analysis::critical_path_weight(&exec);
        let bound = g.total_work() / procs as f64 + analysis::critical_path_weight(&g);
        prop_assert!(makespan <= bound + 1e-9,
            "makespan {makespan} exceeds Graham bound {bound}");
    }
}
