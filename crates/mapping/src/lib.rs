//! # mapping — fixed task-to-processor mappings
//!
//! The paper's core assumption is that "the mapping is given, say by an
//! ordered list of tasks to execute on each processor" (motivated by
//! legacy applications, task–resource affinities, or security-driven
//! pre-allocation). This crate produces such mappings and performs the
//! **execution-graph augmentation**: given the application graph `G`
//! and a mapping, build `Ĝ = (V, Ê)` by adding an edge between
//! consecutive tasks of each processor's list.
//!
//! Provided mapping generators (all respect precedence):
//!
//! * [`list_schedule`] — classic list scheduling with earliest-start
//!   placement and a priority order (critical-path a.k.a. bottom-level
//!   by default), the realistic "given" mapping;
//! * [`round_robin`] — topological order striped over processors;
//! * [`random_mapping`] — a topological order split at random.

use rand::Rng;
use taskgraph::analysis::topo_order;
use taskgraph::{GraphError, TaskGraph, TaskId};

/// A mapping: for each processor, the ordered list of tasks it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    lists: Vec<Vec<TaskId>>,
}

impl Mapping {
    /// Build from explicit per-processor ordered lists. Every task
    /// must appear exactly once; ordering constraints are validated by
    /// [`Mapping::execution_graph`] (which fails on a cycle).
    pub fn new(lists: Vec<Vec<TaskId>>) -> Mapping {
        Mapping { lists }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.lists.len()
    }

    /// Ordered task list of processor `p`.
    pub fn list(&self, p: usize) -> &[TaskId] {
        &self.lists[p]
    }

    /// All per-processor lists.
    pub fn lists(&self) -> &[Vec<TaskId>] {
        &self.lists
    }

    /// The processor assigned to each task (indexed by task id), or an
    /// error message if some task is missing or duplicated.
    pub fn processor_of(&self, n: usize) -> Result<Vec<usize>, String> {
        let mut proc = vec![usize::MAX; n];
        for (p, list) in self.lists.iter().enumerate() {
            for &t in list {
                if t.0 >= n {
                    return Err(format!("mapping references unknown task {t}"));
                }
                if proc[t.0] != usize::MAX {
                    return Err(format!("task {t} mapped twice"));
                }
                proc[t.0] = p;
            }
        }
        if let Some(i) = proc.iter().position(|&p| p == usize::MAX) {
            return Err(format!("task T{i} not mapped"));
        }
        Ok(proc)
    }

    /// The paper's augmentation: `Ê = E ∪ {(u, v) : u, v consecutive
    /// on the same processor}`. Fails when the serialization order
    /// contradicts precedence (the combined edge set has a cycle) or
    /// when the mapping does not cover the tasks exactly.
    pub fn execution_graph(&self, g: &TaskGraph) -> Result<TaskGraph, GraphError> {
        // Coverage check first for a clearer error than a bare cycle.
        if let Err(_msg) = self.processor_of(g.n()) {
            return Err(GraphError::BadTask(g.n()));
        }
        let mut extra = Vec::new();
        for list in &self.lists {
            for w in list.windows(2) {
                extra.push((w[0].0, w[1].0));
            }
        }
        g.with_extra_edges(&extra)
    }
}

/// Priority used by [`list_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Bottom level: weight of the heaviest path from the task to a
    /// sink (classic critical-path list scheduling).
    BottomLevel,
    /// Plain topological position (FIFO).
    Topological,
}

/// Bottom levels (heaviest task-weighted path from each task to any
/// sink, inclusive).
pub fn bottom_levels(g: &TaskGraph) -> Vec<f64> {
    let mut bl = vec![0.0; g.n()];
    for &t in topo_order(g).iter().rev() {
        let down = g.succs(t).iter().map(|&s| bl[s.0]).fold(0.0f64, f64::max);
        bl[t.0] = g.weight(t) + down;
    }
    bl
}

/// List scheduling at unit speed onto `p` identical processors.
///
/// Tasks become ready when all predecessors have completed; among
/// ready tasks the one with the highest priority is placed on the
/// processor that frees earliest. The resulting per-processor order is
/// the "ordered list of tasks" the paper takes as input.
pub fn list_schedule(g: &TaskGraph, p: usize, priority: Priority) -> Mapping {
    assert!(p >= 1, "need at least one processor");
    let n = g.n();
    let prio: Vec<f64> = match priority {
        Priority::BottomLevel => bottom_levels(g),
        Priority::Topological => {
            let order = topo_order(g);
            let mut v = vec![0.0; n];
            for (k, &t) in order.iter().enumerate() {
                v[t.0] = (n - k) as f64;
            }
            v
        }
    };
    let mut indeg: Vec<usize> = (0..n).map(|i| g.preds(TaskId(i)).len()).collect();
    let mut ready: Vec<TaskId> = (0..n).filter(|&i| indeg[i] == 0).map(TaskId).collect();
    let mut proc_free = vec![0.0f64; p];
    let mut finish = vec![0.0f64; n];
    let mut lists: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    let mut done = 0usize;
    while done < n {
        // Highest-priority ready task (stable tie-break on id).
        let (k, &t) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                prio[a.0]
                    .partial_cmp(&prio[b.0])
                    .unwrap()
                    .then(b.0.cmp(&a.0))
            })
            .expect("ready set cannot be empty while tasks remain");
        ready.swap_remove(k);
        // Earliest start on each processor: max(processor free time,
        // predecessors' completion).
        let pred_done = g
            .preds(t)
            .iter()
            .map(|&q| finish[q.0])
            .fold(0.0f64, f64::max);
        let (best_p, _) = proc_free
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .unwrap();
        let start = proc_free[best_p].max(pred_done);
        let end = start + g.weight(t);
        proc_free[best_p] = end;
        finish[t.0] = end;
        lists[best_p].push(t);
        done += 1;
        for &TaskId(v) in g.succs(t) {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                ready.push(TaskId(v));
            }
        }
    }
    Mapping::new(lists)
}

/// Topological order striped over `p` processors
/// (`task k → processor k mod p`).
pub fn round_robin(g: &TaskGraph, p: usize) -> Mapping {
    assert!(p >= 1);
    let mut lists: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    for (k, t) in topo_order(g).into_iter().enumerate() {
        lists[k % p].push(t);
    }
    Mapping::new(lists)
}

/// A random precedence-respecting mapping: assign each task of a
/// topological order to a uniformly random processor.
pub fn random_mapping<R: Rng>(g: &TaskGraph, p: usize, rng: &mut R) -> Mapping {
    assert!(p >= 1);
    let mut lists: Vec<Vec<TaskId>> = vec![Vec::new(); p];
    for t in topo_order(g) {
        lists[rng.gen_range(0..p)].push(t);
    }
    Mapping::new(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::generators;

    #[test]
    fn bottom_levels_diamond() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let bl = bottom_levels(&g);
        assert_eq!(bl, vec![8.0, 6.0, 7.0, 4.0]);
    }

    #[test]
    fn execution_graph_adds_serialization_edges() {
        // Fork 0 → {1, 2, 3} mapped on 2 processors: children sharing
        // a processor get a serialization edge.
        let g = generators::fork(1.0, &[1.0, 1.0, 1.0]);
        let m = Mapping::new(vec![vec![TaskId(0), TaskId(1), TaskId(2)], vec![TaskId(3)]]);
        let eg = m.execution_graph(&g).unwrap();
        assert!(eg.has_edge(TaskId(1), TaskId(2)));
        // Serialization adds (0,1) — already present, collapses — and (1,2).
        assert_eq!(eg.m(), g.m() + 1);
    }

    #[test]
    fn execution_graph_rejects_precedence_conflicts() {
        // Chain 0 → 1 but the processor list runs 1 before 0.
        let g = generators::chain(&[1.0, 1.0]);
        let m = Mapping::new(vec![vec![TaskId(1), TaskId(0)]]);
        assert!(m.execution_graph(&g).is_err());
    }

    #[test]
    fn execution_graph_rejects_partial_mappings() {
        let g = generators::chain(&[1.0, 1.0]);
        let m = Mapping::new(vec![vec![TaskId(0)]]);
        assert!(m.execution_graph(&g).is_err());
        let dup = Mapping::new(vec![vec![TaskId(0), TaskId(1), TaskId(0)]]);
        assert!(dup.execution_graph(&g).is_err());
    }

    #[test]
    fn list_schedule_covers_all_tasks_and_respects_precedence() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::layered_dag(4, 3, 0.4, 1.0, 5.0, &mut rng);
        for p in [1usize, 2, 3, 5] {
            let m = list_schedule(&g, p, Priority::BottomLevel);
            assert_eq!(m.processors(), p);
            let proc = m.processor_of(g.n()).unwrap();
            assert_eq!(proc.len(), g.n());
            // The augmented graph must stay acyclic.
            let eg = m.execution_graph(&g).unwrap();
            assert!(eg.m() >= g.m());
        }
    }

    #[test]
    fn round_robin_and_random_are_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_dag(25, 0.12, 1.0, 3.0, &mut rng);
        let rr = round_robin(&g, 4);
        rr.execution_graph(&g).unwrap();
        let rm = random_mapping(&g, 4, &mut rng);
        rm.execution_graph(&g).unwrap();
    }

    #[test]
    fn single_processor_serializes_everything() {
        let g = generators::diamond([1.0; 4]);
        let m = list_schedule(&g, 1, Priority::Topological);
        let eg = m.execution_graph(&g).unwrap();
        // On one processor the execution graph contains a Hamiltonian
        // chain: its critical path weight is the total work.
        assert_eq!(
            taskgraph::analysis::critical_path_weight(&eg),
            g.total_work()
        );
    }

    #[test]
    fn list_schedule_prefers_critical_path() {
        // Diamond with heavy T2: bottom-level priority runs T2 before
        // T1 when both are ready.
        let g = generators::diamond([1.0, 1.0, 10.0, 1.0]);
        let m = list_schedule(&g, 1, Priority::BottomLevel);
        let list = m.list(0);
        let pos2 = list.iter().position(|&t| t == TaskId(2)).unwrap();
        let pos1 = list.iter().position(|&t| t == TaskId(1)).unwrap();
        assert!(pos2 < pos1);
    }
}
