//! Edge cases across all solvers: degenerate sizes, boundary
//! deadlines, single-mode sets, and exact-boundary saturation.

use models::{DiscreteModes, EnergyModel, IncrementalModes, PowerLaw};
use reclaim_core::{continuous, discrete, incremental, solve, vdd};
use taskgraph::{generators, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;

#[test]
fn single_task_all_models() {
    let g = TaskGraph::single(4.0);
    let modes = DiscreteModes::new(&[1.0, 2.0, 4.0]).unwrap();
    let inc = IncrementalModes::new(1.0, 4.0, 1.0).unwrap();
    let d = 2.5;
    // Continuous: run exactly for the deadline.
    let s = continuous::solve(&g, d, None, P, None).unwrap();
    assert!((s[0] - 4.0 / 2.5).abs() < 1e-12);
    // Discrete: slowest mode ≥ 1.6 → 2.0.
    assert_eq!(discrete::exact(&g, d, &modes, P).unwrap().speeds, vec![2.0]);
    // Vdd: mix modes 1 and 2 to average 1.6.
    let sched = vdd::solve_lp(&g, d, &modes, P).unwrap();
    let e = sched.energy(&g, P);
    // x + 2y = 4, x + y = 2.5 → y = 1.5, x = 1: E = 1 + 8·1.5 = 13.
    assert!((e - 13.0).abs() < 1e-6, "{e}");
    // Incremental approximation at K = 1 is still feasible.
    let si = incremental::approx(&g, d, &inc, P, 1).unwrap();
    assert!(si[0] >= 1.6 - 1e-9);
}

#[test]
fn deadline_exactly_at_dmin() {
    // D = cp/s_max exactly: everything must run at top speed.
    let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
    let sm = 2.0;
    let d = taskgraph::analysis::critical_path_weight(&g) / sm;
    let modes = DiscreteModes::new(&[1.0, sm]).unwrap();
    let sol = discrete::exact(&g, d, &modes, P).unwrap();
    // Critical tasks (0, 2, 3) at s_max; the slack task may be slower.
    assert_eq!(sol.speeds[0], sm);
    assert_eq!(sol.speeds[2], sm);
    assert_eq!(sol.speeds[3], sm);
    // Continuous at the exact boundary with s_max.
    let sc = continuous::solve(&g, d, Some(sm), P, None);
    assert!(sc.is_ok(), "boundary deadline must be feasible: {sc:?}");
    // Just below is infeasible.
    assert!(continuous::solve(&g, d * 0.999, Some(sm), P, None).is_err());
}

#[test]
fn equal_weight_fork_symmetry() {
    // n identical children must all get the same speed, and the
    // source speed follows Theorem 1 with (n·w³)^{1/3}.
    let n = 5;
    let g = generators::fork(2.0, &vec![3.0; n]);
    let d = 4.0;
    let s = continuous::solve_fork(&g, d, None, P).unwrap();
    for i in 2..=n {
        assert!((s[i] - s[1]).abs() < 1e-12);
    }
    let comb = (n as f64).cbrt() * 3.0;
    assert!((s[0] - (comb + 2.0) / d).abs() < 1e-12);
}

#[test]
fn vdd_single_mode_set() {
    // m = 1: no mixing possible; the LP degenerates to fixed speeds.
    let g = generators::chain(&[2.0, 2.0]);
    let modes = DiscreteModes::new(&[2.0]).unwrap();
    let sched = vdd::solve_lp(&g, 2.0, &modes, P).unwrap();
    let e = sched.energy(&g, P);
    assert!((e - 16.0).abs() < 1e-6); // 4·4 work at s=2
    assert!(vdd::solve_lp(&g, 1.9, &modes, P).is_err());
}

#[test]
fn incremental_degenerate_grid() {
    // δ larger than the range → a single mode.
    let inc = IncrementalModes::new(1.0, 1.5, 2.0).unwrap();
    assert_eq!(inc.m(), 1);
    let g = generators::chain(&[2.0]);
    let speeds = incremental::approx(&g, 3.0, &inc, P, 10).unwrap();
    assert_eq!(speeds, vec![1.0]);
    assert!(incremental::approx(&g, 1.0, &inc, P, 10).is_err());
}

#[test]
fn fork_smax_exactly_at_unconstrained_optimum() {
    // s_max equal to the unconstrained s0: the unsaturated branch
    // applies and the speeds respect the cap exactly.
    let g = generators::fork(1.0, &[1.0, 2.0]);
    let d = 2.0;
    let s0 = (9.0f64.cbrt() + 1.0) / d;
    let s = continuous::solve_fork(&g, d, Some(s0), P).unwrap();
    assert!((s[0] - s0).abs() < 1e-9);
}

#[test]
fn chain_dp_boundary_resolution() {
    // Resolution 1: a single time slot — only all-at-one-mode-or-
    // faster fits.
    let g = generators::chain(&[2.0]);
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    let (speeds, _) = discrete::chain_dp(&g, 2.0, &modes, P, 1).unwrap();
    assert_eq!(speeds, vec![1.0]);
    // With two tasks and one slot, nothing fits (each task needs ≥ 1
    // slot).
    let g2 = generators::chain(&[2.0, 2.0]);
    assert!(discrete::chain_dp(&g2, 2.0, &modes, P, 1).is_err());
}

#[test]
fn solver_reports_algorithm_names() {
    let g = generators::chain(&[1.0, 1.0]);
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    let cases: Vec<(EnergyModel, &str)> = vec![
        (EnergyModel::continuous_unbounded(), "continuous"),
        (EnergyModel::VddHopping(modes.clone()), "vdd-lp"),
        (EnergyModel::Discrete(modes), "discrete-bnb"),
        (
            EnergyModel::Incremental(IncrementalModes::new(1.0, 2.0, 0.5).unwrap()),
            "incremental-approx",
        ),
    ];
    for (model, expect) in cases {
        let sol = solve(&g, 3.0, &model, P).unwrap();
        assert_eq!(sol.algorithm, expect);
    }
}

#[test]
fn zero_and_negative_deadlines_rejected_everywhere() {
    let g = generators::chain(&[1.0]);
    let modes = DiscreteModes::new(&[1.0]).unwrap();
    for d in [0.0, -1.0] {
        assert!(continuous::solve(&g, d, None, P, None).is_err());
        assert!(vdd::solve_lp(&g, d, &modes, P).is_err());
        assert!(discrete::exact(&g, d, &modes, P).is_err());
    }
}

#[test]
fn very_loose_deadline_numerics_hold() {
    // D = 10⁶ × dmin: speeds get tiny; the barrier must stay stable.
    let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
    let d = 1e6;
    let s = continuous::solve_general(&g, d, None, P, None).unwrap();
    let e = continuous::energy_of_speeds(&g, &s, P);
    // Scaling law from a reference deadline.
    let e_ref = continuous::energy_of_speeds(
        &g,
        &continuous::solve_general(&g, 10.0, None, P, None).unwrap(),
        P,
    );
    let expect = e_ref * (10.0 / d) * (10.0 / d);
    assert!(
        (e - expect).abs() <= 1e-3 * expect,
        "scaling law violated at extreme deadlines: {e} vs {expect}"
    );
}

#[test]
fn two_parallel_components_solve_independently() {
    // Disconnected execution graph (two independent chains): the
    // optimum treats them separately; energy adds up.
    let g = TaskGraph::new(vec![2.0, 3.0], &[]).unwrap();
    let d = 2.0;
    let s = continuous::solve(&g, d, None, P, None).unwrap();
    let e = continuous::energy_of_speeds(&g, &s, P);
    let expect = P.energy_for_work(2.0, d) + P.energy_for_work(3.0, d);
    assert!((e - expect).abs() < 1e-9 * expect);
}
