//! Incremental-model solvers (Theorem 5 approximation; exact via
//! branch-and-bound on the grid, which Theorem 4 covers since
//! Incremental is a special case of Discrete).

use crate::continuous;
use crate::discrete::{self, ExactSolution};
use crate::error::SolveError;
use models::{IncrementalModes, PowerLaw};
use taskgraph::{PreparedGraph, TaskGraph};

/// Theorem 5: for any integer `K > 0`, approximate
/// `MinEnergy(Ĝ, D)` within `(1 + δ/s_min)² · (1 + 1/K)²` in time
/// polynomial in the instance and in `K` (exponent 2 = `α_pow − 1`
/// for the paper's cubic power law).
///
/// Algorithm: solve the Continuous relaxation boxed to
/// `[s_min, top_mode]` to relative precision `1/K` (polynomial: the
/// barrier method needs `O(log(m·K))` outer iterations), then round
/// each speed **up** to the next grid mode. Rounding up shrinks
/// durations, so the schedule stays feasible; each speed inflates by
/// at most `1 + δ/s_min`, hence the energy by at most
/// `(1 + δ/s_min)^{α−1}`.
pub fn approx(
    g: &TaskGraph,
    deadline: f64,
    modes: &IncrementalModes,
    p: PowerLaw,
    k: u32,
) -> Result<Vec<f64>, SolveError> {
    approx_prepared(&PreparedGraph::new(g), deadline, modes, p, k)
}

/// [`approx`] on a prepared graph (cached analysis for the boxed
/// Continuous relaxation underneath).
pub fn approx_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &IncrementalModes,
    p: PowerLaw,
    k: u32,
) -> Result<Vec<f64>, SolveError> {
    let mut cold = continuous::SweepWarm::new();
    approx_warm(prep, deadline, modes, p, k, &mut cold)
}

/// [`approx_prepared`] with a [`continuous::SweepWarm`] chain threaded
/// through the boxed relaxation — the Incremental twin of
/// `discrete::round_up_warm`, for cheap sampled energy–deadline
/// curves.
pub fn approx_warm(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &IncrementalModes,
    p: PowerLaw,
    k: u32,
    warm: &mut continuous::SweepWarm,
) -> Result<Vec<f64>, SolveError> {
    if k == 0 {
        // Library code must not panic on bad user input (the CLI feeds
        // this straight through).
        return Err(SolveError::Unsupported(
            "Theorem 5 requires precision K > 0".into(),
        ));
    }
    let g = prep.graph();
    let relaxed = if modes.m() == 1 {
        vec![modes.s_min(); g.n()]
    } else {
        continuous::solve_general_warm(
            prep,
            deadline,
            Some(modes.s_min()),
            Some(modes.top_mode()),
            p,
            Some(k),
            warm,
        )?
    };
    let mut speeds = Vec::with_capacity(g.n());
    for &s in &relaxed {
        speeds.push(modes.round_up(s).unwrap_or(modes.top_mode()));
    }
    let durations: Vec<f64> = g
        .weights()
        .iter()
        .zip(&speeds)
        .map(|(&w, &s)| w / s)
        .collect();
    let mk = prep.makespan(&durations);
    if mk > deadline * (1.0 + 1e-6) {
        return Err(SolveError::Numerical(format!(
            "rounded schedule misses the deadline ({mk} > {deadline})"
        )));
    }
    Ok(speeds)
}

/// The guaranteed approximation factor of [`approx`]:
/// `(1 + δ/s_min)^{α−1} · (1 + 1/K)^{α−1}`.
pub fn approx_bound(modes: &IncrementalModes, p: PowerLaw, k: u32) -> f64 {
    modes.rounding_ratio(p.alpha()) * (1.0 + 1.0 / k as f64).powf(p.alpha() - 1.0)
}

/// Exact Incremental solve: Theorem 4 makes this NP-complete, so we
/// reuse the Discrete branch-and-bound on the materialized grid.
pub fn exact(
    g: &TaskGraph,
    deadline: f64,
    modes: &IncrementalModes,
    p: PowerLaw,
) -> Result<ExactSolution, SolveError> {
    discrete::exact(g, deadline, &modes.to_discrete(), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn approx_speeds_live_on_the_grid() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let modes = IncrementalModes::new(0.5, 3.0, 0.25).unwrap();
        let speeds = approx(&g, 5.0, &modes, P, 50).unwrap();
        for &s in &speeds {
            let i = (s - modes.s_min()) / modes.delta();
            assert!((i - i.round()).abs() < 1e-6, "{s} not on grid");
        }
    }

    #[test]
    fn approx_within_theorem5_bound_of_exact() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let modes = IncrementalModes::new(0.5, 3.0, 0.5).unwrap();
        let d = 5.0;
        let k = 10;
        let speeds = approx(&g, d, &modes, P, k).unwrap();
        let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
        let opt = exact(&g, d, &modes, P).unwrap().energy;
        let bound = approx_bound(&modes, P, k);
        assert!(
            e_alg <= opt * bound * (1.0 + 1e-6),
            "ratio {} > bound {bound}",
            e_alg / opt
        );
        assert!(e_alg >= opt * (1.0 - 1e-9));
    }

    #[test]
    fn finer_grid_tightens_energy() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let d = 5.0;
        let coarse = IncrementalModes::new(0.5, 3.0, 1.0).unwrap();
        let fine = IncrementalModes::new(0.5, 3.0, 0.05).unwrap();
        let e_coarse =
            continuous::energy_of_speeds(&g, &approx(&g, d, &coarse, P, 100).unwrap(), P);
        let e_fine = continuous::energy_of_speeds(&g, &approx(&g, d, &fine, P, 100).unwrap(), P);
        assert!(
            e_fine <= e_coarse * (1.0 + 1e-9),
            "finer grid must not cost more: {e_fine} vs {e_coarse}"
        );
        // And the fine grid approaches the continuous optimum.
        let cont = continuous::solve(&g, d, Some(3.0), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        assert!(e_fine <= e_cont * coarse.rounding_ratio(3.0));
        assert!(e_fine <= e_cont * fine.rounding_ratio(3.0) * 1.01);
    }

    #[test]
    fn approx_bound_formula() {
        let modes = IncrementalModes::new(1.0, 2.0, 0.1).unwrap();
        // (1.1)² · (1.01)² for K = 100.
        let b = approx_bound(&modes, P, 100);
        assert!((b - 1.21 * 1.0201).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let g = generators::chain(&[4.0]);
        let modes = IncrementalModes::new(0.5, 1.0, 0.25).unwrap();
        assert!(matches!(
            approx(&g, 3.0, &modes, P, 10),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn k_zero_is_rejected_without_panicking() {
        let g = generators::chain(&[1.0]);
        let modes = IncrementalModes::new(0.5, 1.0, 0.25).unwrap();
        assert!(matches!(
            approx(&g, 3.0, &modes, P, 0),
            Err(SolveError::Unsupported(_))
        ));
    }
}
