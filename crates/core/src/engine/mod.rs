//! The prepared-instance solver engine.
//!
//! The paper's experiments — and every consumer of this crate —
//! solve `MinEnergy(Ĝ, D)` many times on the **same** graph: deadline
//! sweeps, budget bisections, model comparisons. The plain
//! [`crate::solve`] entry point re-derives the topological order,
//! shape classification, SP decomposition, and critical path on every
//! call. This module amortizes all of that:
//!
//! * [`taskgraph::PreparedGraph`] caches the graph analysis once per
//!   graph (lazily, thread-safely);
//! * an [`Algorithm`] registry makes dispatch data-driven — each paper
//!   algorithm declares its own applicability, and the provenance tag
//!   on [`Solution`] is the name of whichever entry won;
//! * [`Engine::solve_batch`] / [`Engine::solve_deadlines`] fan
//!   independent instances out over scoped threads (no external
//!   dependencies — plain [`std::thread::scope`]);
//! * [`Engine::energy_curve`] samples a whole energy–deadline front,
//!   with two sweep-specific shortcuts: the unbounded-Continuous
//!   scaling law `E*(D) = E*(D₀)·(D₀/D)^{α−1}` collapses the sweep to
//!   one solve, and Vdd-Hopping points reuse the previous point's LP
//!   basis ([`vdd::solve_lp_sweep`]).
//!
//! The legacy [`crate::solve`] / [`crate::solve_with`] wrappers now
//! route through a transient engine, so every caller gets the same
//! dispatch — existing call sites compile and behave unchanged.

mod algorithms;
mod key;
pub mod par_bnb;
pub mod profiling;

pub use algorithms::{registry, Algorithm, Step};
pub use key::{content_key, patched_key};

use crate::continuous;
use crate::error::SolveError;
use crate::solver::{Solution, SolveOptions};
use crate::vdd;
pub use crate::vdd::VddWarm;
use models::{EnergyModel, PowerLaw, Schedule, SpeedProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
pub use taskgraph::edit::GraphEdit;
use taskgraph::TaskGraph;
pub use taskgraph::{PreparedGraph, PreparedInstance};

/// One point of an energy–deadline curve (the Pareto front of the
/// bicriteria problem).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The deadline.
    pub deadline: f64,
    /// The optimal (or approximated, per the model's solver) energy.
    pub energy: f64,
}

/// Closed-form energy of one [`CurveSegment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CurveEnergy {
    /// `E(D) = a + b·D`. Exact for Vdd-Hopping (LP optima are
    /// piecewise affine in the deadline — Theorem 3's LP under a
    /// parametric RHS); also the interpolation form of the
    /// adaptively-sampled fallback.
    Affine {
        /// Intercept.
        a: f64,
        /// Slope (non-positive along a Pareto front).
        b: f64,
    },
    /// `E(D) = c / D^p`. Exact for unbounded Continuous, where the
    /// scaling law `E*(D) = E*(D₀)·(D₀/D)^{α−1}` gives `p = α − 1`.
    Power {
        /// Coefficient.
        c: f64,
        /// Exponent (positive).
        p: f64,
    },
}

impl CurveEnergy {
    /// Evaluate the closed form at deadline `d`.
    pub fn at(&self, d: f64) -> f64 {
        match *self {
            CurveEnergy::Affine { a, b } => a + b * d,
            CurveEnergy::Power { c, p } => c / d.powf(p),
        }
    }
}

/// One maximal deadline interval of an exact (or refined-sampled)
/// energy–deadline curve with a single closed-form energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveSegment {
    /// Interval start.
    pub deadline_lo: f64,
    /// Interval end (segments of one curve are contiguous:
    /// each `deadline_hi` equals the next segment's `deadline_lo`).
    pub deadline_hi: f64,
    /// The energy on the interval, in closed form.
    pub energy: CurveEnergy,
}

impl CurveSegment {
    /// Energy at deadline `d` (exact for `d` inside the segment).
    pub fn energy_at(&self, d: f64) -> f64 {
        self.energy.at(d)
    }
}

/// Cost counters of one [`Engine::energy_curve_exact`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurveStats {
    /// Dual-simplex basis changes the parametric LP walk crossed
    /// (Vdd path; the whole curve costs `O(breakpoints)` pivots).
    pub lp_breakpoints: usize,
    /// Point solves performed by the adaptive-sampling fallback.
    pub samples: usize,
    /// Newton steps spent in barrier solves (Discrete/Incremental
    /// round-up path).
    pub barrier_newton_steps: u64,
    /// Barrier solves that were warm-seeded from the previous sweep
    /// point's primal.
    pub barrier_warm_seeded: u64,
}

/// A whole energy–deadline curve in closed form: the result of
/// [`Engine::energy_curve_exact`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExactCurve {
    /// Contiguous segments covering `[deadline_lo(), deadline_hi()]`
    /// in increasing deadline order.
    pub segments: Vec<CurveSegment>,
    /// `true` when every segment is an exact closed form (Vdd,
    /// unbounded Continuous); `false` when the curve was adaptively
    /// sampled and the segments interpolate (Discrete / Incremental /
    /// capped Continuous).
    pub exact: bool,
    /// What the curve cost to build.
    pub stats: CurveStats,
}

impl ExactCurve {
    /// First covered deadline.
    pub fn deadline_lo(&self) -> f64 {
        self.segments.first().map_or(f64::NAN, |s| s.deadline_lo)
    }

    /// Last covered deadline.
    pub fn deadline_hi(&self) -> f64 {
        self.segments.last().map_or(f64::NAN, |s| s.deadline_hi)
    }

    /// Energy at deadline `d`, or `None` outside the covered range.
    pub fn energy_at(&self, d: f64) -> Option<f64> {
        if self.segments.is_empty()
            || d < self.deadline_lo() * (1.0 - 1e-12)
            || d > self.deadline_hi() * (1.0 + 1e-12)
        {
            return None;
        }
        let seg = self
            .segments
            .iter()
            .rev()
            .find(|s| d >= s.deadline_lo)
            .unwrap_or(&self.segments[0]);
        Some(seg.energy_at(d.clamp(seg.deadline_lo, seg.deadline_hi)))
    }

    /// The segment covering deadline `d`, if any.
    pub fn segment_at(&self, d: f64) -> Option<&CurveSegment> {
        self.segments
            .iter()
            .find(|s| d >= s.deadline_lo * (1.0 - 1e-12) && d <= s.deadline_hi * (1.0 + 1e-12))
    }
}

/// Everything an [`Algorithm`] needs to attempt one instance.
pub struct Ctx<'a> {
    /// The prepared (analysis-cached) graph.
    pub prep: &'a PreparedGraph<'a>,
    /// The energy model.
    pub model: &'a EnergyModel,
    /// The deadline `D`.
    pub deadline: f64,
    /// The power law `P(s) = s^α`.
    pub power: PowerLaw,
    /// Engine tuning knobs.
    pub opts: &'a SolveOptions,
    /// Worker threads this solve may use (≥ 2 opts exact searches into
    /// `par_bnb`; the engine's fan-out entry points split their thread
    /// cap across concurrent jobs so a batch never oversubscribes).
    pub workers: usize,
}

impl Ctx<'_> {
    /// Build the ASAP schedule for constant per-task speeds using the
    /// cached topological order (no re-analysis).
    pub fn schedule_from_speeds(&self, speeds: &[f64]) -> Schedule {
        let g = self.prep.graph();
        assert_eq!(speeds.len(), g.n());
        let durations: Vec<f64> = speeds
            .iter()
            .zip(g.weights())
            .map(|(&s, &w)| w / s)
            .collect();
        let ecl = self.prep.earliest_completion(&durations);
        let starts: Vec<f64> = ecl.iter().zip(&durations).map(|(c, d)| c - d).collect();
        let profiles = speeds.iter().map(|&s| SpeedProfile::Constant(s)).collect();
        Schedule::new(starts, profiles)
    }
}

/// The solver engine: a power law plus tuning options, with batch and
/// sweep entry points that amortize graph analysis and fan out over
/// threads.
///
/// ```
/// use models::{EnergyModel, PowerLaw};
/// use reclaim_core::engine::{Engine, PreparedGraph};
/// use taskgraph::TaskGraph;
///
/// let g = TaskGraph::new(vec![2.0, 4.0], &[(0, 1)]).unwrap();
/// let engine = Engine::new(PowerLaw::CUBIC);
/// let prep = PreparedGraph::new(&g);
/// let model = EnergyModel::continuous_unbounded();
/// // One prepared graph, many deadlines: analysis runs once.
/// let a = engine.solve(&prep, &model, 3.0).unwrap();
/// let b = engine.solve(&prep, &model, 6.0).unwrap();
/// assert!((a.energy - 24.0).abs() < 1e-9);
/// assert!((b.energy - 6.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    power: PowerLaw,
    opts: SolveOptions,
    threads: Option<usize>,
}

impl Engine {
    /// An engine with default [`SolveOptions`].
    pub fn new(power: PowerLaw) -> Engine {
        Engine::with_options(power, SolveOptions::default())
    }

    /// An engine with explicit options.
    pub fn with_options(power: PowerLaw, opts: SolveOptions) -> Engine {
        Engine {
            power,
            opts,
            threads: None,
        }
    }

    /// Cap the worker threads used by the batch/sweep entry points
    /// (default: [`std::thread::available_parallelism`]).
    pub fn threads(mut self, n: usize) -> Engine {
        self.threads = Some(n.max(1));
        self
    }

    /// The engine's power law.
    pub fn power(&self) -> PowerLaw {
        self.power
    }

    /// The engine's tuning options.
    pub fn options(&self) -> &SolveOptions {
        &self.opts
    }

    /// Solve one prepared instance: pre-check feasibility against the
    /// cached critical path, then dispatch through the algorithm
    /// [`registry`]. The returned schedule is always validated against
    /// the model and deadline.
    pub fn solve(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        deadline: f64,
    ) -> Result<Solution, SolveError> {
        self.solve_inner(prep, model, deadline, self.ctx_workers())
    }

    /// Worker threads a single top-level solve may use. Parallel
    /// branch-and-bound is strictly opt-in: it engages only when the
    /// caller set [`Engine::threads`] to 2 or more (never from
    /// ambient parallelism), so default engines keep bitwise-stable
    /// sequential behavior.
    fn ctx_workers(&self) -> usize {
        self.threads.unwrap_or(1)
    }

    /// Per-job worker share for a fan-out over `n` concurrent jobs:
    /// the thread cap divided among them, at least 1.
    fn job_share(&self, n: usize) -> usize {
        (self.ctx_workers() / n.max(1)).max(1)
    }

    fn solve_inner(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        deadline: f64,
        workers: usize,
    ) -> Result<Solution, SolveError> {
        crate::continuous::check_feasible_prepared(prep, deadline, model.top_speed())?;
        let ctx = Ctx {
            prep,
            model,
            deadline,
            power: self.power,
            opts: &self.opts,
            workers,
        };
        for alg in registry() {
            if !alg.applies(&ctx) {
                continue;
            }
            match alg.run(&ctx)? {
                Step::Solved(schedule) => return self.finish(&ctx, schedule, alg.name()),
                Step::Tagged(tag, schedule) => return self.finish(&ctx, schedule, tag),
                Step::Deferred => continue,
            }
        }
        Err(SolveError::Unsupported(format!(
            "no registered algorithm applies to model {}",
            model.name()
        )))
    }

    /// Validate and package a schedule produced by an algorithm.
    fn finish(
        &self,
        ctx: &Ctx<'_>,
        schedule: Schedule,
        algorithm: &'static str,
    ) -> Result<Solution, SolveError> {
        schedule
            .validate(ctx.prep.graph(), ctx.model, ctx.deadline)
            .map_err(|e| SolveError::Numerical(format!("produced schedule invalid: {e}")))?;
        let energy = schedule.energy(ctx.prep.graph(), self.power);
        Ok(Solution {
            schedule,
            energy,
            algorithm,
        })
    }

    /// Solve one instance, reusing (and refreshing) a retained
    /// Vdd-Hopping warm-start handle across calls.
    ///
    /// For [`EnergyModel::VddHopping`], a populated `warm` handle is
    /// re-optimized from its retained basis
    /// ([`VddWarm::resolve`] → [`lp::PreparedLp::resolve_rhs`]) — the
    /// same parametric-RHS chain [`Engine::energy_curve`] runs across
    /// deadline sweeps, here extended to weight edits. The resulting
    /// schedule gets the same validation as every cold solve; on any
    /// warm failure the handle is dropped and the instance re-solved
    /// cold (so this never fails where [`Engine::solve`] would
    /// succeed), and a successful cold solve refills `warm` for the
    /// next call. Warm solutions are tagged `"vdd-lp-warm"`.
    ///
    /// For every other model this is exactly [`Engine::solve`]
    /// (`warm` is left untouched — the handle belongs to the Vdd LP).
    pub fn solve_warm(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        deadline: f64,
        warm: &mut Option<VddWarm>,
    ) -> Result<Solution, SolveError> {
        let EnergyModel::VddHopping(modes) = model else {
            return self.solve(prep, model, deadline);
        };
        // A handle built over a different mode ladder cannot serve
        // this solve.
        if warm
            .as_ref()
            .is_some_and(|w| w.modes().speeds() != modes.speeds())
        {
            *warm = None;
        }
        crate::continuous::check_feasible_prepared(prep, deadline, model.top_speed())?;
        if let Some(w) = warm.as_mut() {
            // Feasibility was just established, so a warm Infeasible
            // (or any other failure) means the basis is spent, not
            // that the instance is unsolvable: fall through to cold.
            if let Ok(sched) = w.resolve(prep, deadline) {
                if sched.validate(prep.graph(), model, deadline).is_ok() {
                    let energy = sched.energy(prep.graph(), self.power);
                    return Ok(Solution {
                        schedule: sched,
                        energy,
                        algorithm: "vdd-lp-warm",
                    });
                }
            }
            profiling::bump_warm_lost();
            *warm = None;
        }
        let (sched, handle) = vdd::solve_lp_warm(prep, deadline, modes, self.power)?;
        sched
            .validate(prep.graph(), model, deadline)
            .map_err(|e| SolveError::Numerical(format!("produced schedule invalid: {e}")))?;
        let energy = sched.energy(prep.graph(), self.power);
        *warm = Some(handle);
        Ok(Solution {
            schedule: sched,
            energy,
            algorithm: "vdd-lp",
        })
    }

    /// Apply an edit batch to a prepared instance and solve the
    /// edited instance, invalidating only what the edits can have
    /// dirtied ([`PreparedInstance::apply`]) and routing Vdd-Hopping
    /// re-solves through the retained LP basis ([`Engine::solve_warm`])
    /// whenever it still describes the patched LP. The Vdd LP matrix
    /// is a function of the task count, the mode ladder, and the
    /// **transitively reduced** precedence rows — so the handle
    /// survives not just weight-only batches but any structural edit
    /// that leaves the reduced edge sequence unchanged (e.g. inserting
    /// or removing a transitive edge). Edits that change the reduction
    /// (or the task set) spend the handle: the LP they imply is a
    /// different one, and a stale basis could validate as feasible yet
    /// be suboptimal.
    ///
    /// Returns the patched instance alongside the solution so callers
    /// (the daemon's `patch` handler, sweep drivers) can keep solving
    /// — or keep editing — without re-preparation.
    pub fn solve_edited(
        &self,
        base: &PreparedInstance,
        edits: &[GraphEdit],
        model: &EnergyModel,
        deadline: f64,
        warm: &mut Option<VddWarm>,
    ) -> Result<(PreparedInstance, Solution), SolveError> {
        let patched = base
            .apply(edits)
            .map_err(|e| SolveError::Unsupported(format!("invalid edit batch: {e}")))?;
        if !edits.iter().all(GraphEdit::is_weight_only) {
            // Row order matters (basis indices are positional), so the
            // reduced edge *sequences* must match exactly.
            let same_lp = warm.is_some()
                && !edits.iter().any(|e| e.changes_task_set())
                && base.view().reduced().edges() == patched.view().reduced().edges();
            if !same_lp {
                *warm = None;
            }
        }
        let sol = self.solve_warm(&patched.view(), model, deadline, warm)?;
        Ok((patched, sol))
    }

    /// Solve one graph (convenience: prepares it transiently).
    pub fn solve_graph(
        &self,
        g: &TaskGraph,
        model: &EnergyModel,
        deadline: f64,
    ) -> Result<Solution, SolveError> {
        self.solve(&PreparedGraph::new(g), model, deadline)
    }

    /// Solve a batch of `(graph, deadline)` instances under one model,
    /// in parallel across scoped threads. Each **distinct** graph (by
    /// [`content_key`] — content, not address) is prepared once and
    /// its analysis shared across every job and worker that references
    /// it, so identical graphs loaded from two files still share one
    /// [`PreparedGraph`]; results come back in input order, identical
    /// to solving sequentially.
    pub fn solve_batch(
        &self,
        model: &EnergyModel,
        jobs: &[(&TaskGraph, f64)],
    ) -> Vec<Result<Solution, SolveError>> {
        // Deduplicate preparation by content hash so a batch of many
        // deadlines on few graphs amortizes like `solve_deadlines`,
        // even when equal graphs arrive as separate allocations. The
        // hash itself is memoized per allocation, so the common case —
        // one `&TaskGraph` repeated across the whole batch — hashes
        // the graph once, not once per job.
        use std::collections::HashMap;
        let mut key_of_ptr: HashMap<*const TaskGraph, u128> = HashMap::new();
        let mut seen: HashMap<u128, usize> = HashMap::new();
        let mut preps: Vec<PreparedGraph<'_>> = Vec::new();
        let prep_of: Vec<usize> = jobs
            .iter()
            .map(|&(g, _)| {
                let key = *key_of_ptr
                    .entry(std::ptr::from_ref(g))
                    .or_insert_with(|| content_key(g, model));
                *seen.entry(key).or_insert_with(|| {
                    preps.push(PreparedGraph::new(g));
                    preps.len() - 1
                })
            })
            .collect();
        let share = self.job_share(jobs.len());
        self.run_ordered(jobs.len(), |i| {
            self.solve_inner(&preps[prep_of[i]], model, jobs[i].1, share)
        })
    }

    /// Solve one prepared graph at many deadlines. Results come back
    /// in caller order, identical to independent [`Engine::solve`]
    /// calls up to solver tolerance.
    ///
    /// Vdd-Hopping requests are sorted, deduplicated, and threaded
    /// through **one** [`VddWarm`] chain in increasing-deadline order
    /// (each point re-optimizes the previous optimal basis instead of
    /// re-running the two-phase simplex; duplicates share one solve).
    /// Every other model fans the independent solves out over scoped
    /// worker threads, with the analysis cache shared (first one to
    /// need a pass fills it for everyone).
    pub fn solve_deadlines(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        deadlines: &[f64],
    ) -> Vec<Result<Solution, SolveError>> {
        if matches!(model, EnergyModel::VddHopping(_)) {
            let mut order: Vec<usize> = (0..deadlines.len()).collect();
            order.sort_by(|&a, &b| deadlines[a].total_cmp(&deadlines[b]));
            let mut warm: Option<VddWarm> = None;
            let mut out: Vec<Option<Result<Solution, SolveError>>> = vec![None; deadlines.len()];
            let mut prev: Option<usize> = None;
            for &i in &order {
                // Dedup: an equal deadline reuses the previous result.
                if let Some(pi) = prev {
                    if deadlines[pi].total_cmp(&deadlines[i]).is_eq() {
                        out[i] = out[pi].clone();
                        continue;
                    }
                }
                out[i] = Some(self.solve_warm(prep, model, deadlines[i], &mut warm));
                prev = Some(i);
            }
            return out
                .into_iter()
                .map(|r| r.expect("every index visited"))
                .collect();
        }
        let share = self.job_share(deadlines.len());
        self.run_ordered(deadlines.len(), |i| {
            self.solve_inner(prep, model, deadlines[i], share)
        })
    }

    /// Sample the energy–deadline curve at `points ≥ 2` geometrically
    /// spaced deadlines between `lo_factor` and `hi_factor` times the
    /// reference deadline (critical path at top speed, or at unit
    /// speed for unbounded Continuous). Infeasible points are skipped;
    /// other errors abort.
    ///
    /// Sweep shortcuts (each produces the same values as independent
    /// [`Engine::solve`] calls, up to solver tolerance):
    ///
    /// * unbounded Continuous: one solve plus the exact scaling law
    ///   `E*(D) = E*(D₀)·(D₀/D)^{α−1}` — the sweep costs one solve
    ///   instead of N;
    /// * Vdd-Hopping: consecutive points re-optimize the previous LP
    ///   basis under the moved deadline rows instead of solving cold
    ///   ([`vdd::solve_lp_sweep`]);
    /// * everything else: the points are independent solves fanned out
    ///   over threads.
    pub fn energy_curve(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        points: usize,
        lo_factor: f64,
        hi_factor: f64,
    ) -> Result<Vec<CurvePoint>, SolveError> {
        if points < 2 {
            return Err(SolveError::Unsupported(format!(
                "energy_curve needs at least two points, got {points}"
            )));
        }
        if !(lo_factor > 0.0 && hi_factor > lo_factor) {
            return Err(SolveError::Unsupported(
                "need 0 < lo_factor < hi_factor".into(),
            ));
        }
        let base = match model.top_speed() {
            Some(sm) => prep.critical_path_weight() / sm,
            None => prep.critical_path_weight(),
        };
        let ratio = (hi_factor / lo_factor).powf(1.0 / (points - 1) as f64);
        let mut deadlines = Vec::with_capacity(points);
        let mut f = lo_factor;
        for _ in 0..points {
            deadlines.push(f * base);
            f *= ratio;
        }

        // Unbounded Continuous: the optimum scales as D^{1−α}, so one
        // solve pins the whole curve.
        if matches!(model, EnergyModel::Continuous { s_max: None }) {
            let d0 = deadlines[0];
            let e0 = self.solve(prep, model, d0)?.energy;
            let expo = self.power.alpha() - 1.0;
            return Ok(deadlines
                .into_iter()
                .map(|d| CurvePoint {
                    deadline: d,
                    energy: e0 * (d0 / d).powf(expo),
                })
                .collect());
        }

        // Vdd-Hopping: warm-started LP chain over the sweep. Each
        // schedule gets the same validation every other solve path
        // applies (warm re-optimization must not smuggle in drift); a
        // warm point that fails it is re-solved cold, so the sweep
        // never fails where 32 independent solves would succeed.
        if let EnergyModel::VddHopping(modes) = model {
            let g = prep.graph();
            let mut out = Vec::with_capacity(points);
            for (sched, &d) in vdd::solve_lp_sweep(prep, &deadlines, modes, self.power)
                .into_iter()
                .zip(&deadlines)
            {
                let energy = match sched {
                    Ok(s) if s.validate(g, model, d).is_ok() => s.energy(g, self.power),
                    Ok(_) => {
                        // A warm re-optimization produced a schedule
                        // that failed validation: the basis is not
                        // trustworthy at this point — ledger the loss
                        // and re-solve cold.
                        profiling::bump_warm_lost();
                        match self.solve(prep, model, d) {
                            Ok(sol) => sol.energy,
                            Err(SolveError::Infeasible { .. }) => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    Err(SolveError::Infeasible { .. }) => continue,
                    Err(e) => return Err(e),
                };
                out.push(CurvePoint {
                    deadline: d,
                    energy,
                });
            }
            return Ok(out);
        }

        // General case: independent solves, fanned out over threads.
        let solutions = self.solve_deadlines(prep, model, &deadlines);
        let mut out = Vec::with_capacity(points);
        for (sol, d) in solutions.into_iter().zip(deadlines) {
            match sol {
                Ok(sol) => out.push(CurvePoint {
                    deadline: d,
                    energy: sol.energy,
                }),
                Err(SolveError::Infeasible { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// The **whole** energy–deadline curve between `lo_factor` and
    /// `hi_factor` times the reference deadline (see
    /// [`Engine::energy_curve`] for the reference), as contiguous
    /// [`CurveSegment`]s with closed-form energies — not samples.
    ///
    /// Per model:
    ///
    /// * **Vdd-Hopping** — exact. The Theorem-3 LP's deadline rows are
    ///   a parametric RHS ray, so one breakpoint-walking dual-simplex
    ///   pass ([`vdd::VddWarm::deadline_ray`]) yields the optimum as
    ///   piecewise-affine segments in `O(breakpoints)` pivots, with no
    ///   per-sample work at all.
    /// * **unbounded Continuous** — exact: one solve plus the scaling
    ///   law `E*(D) = E*(D₀)·(D₀/D)^{α−1}` gives a single
    ///   [`CurveEnergy::Power`] segment.
    /// * **Discrete / Incremental / capped Continuous** — adaptive
    ///   sampling (`exact: false`): a coarse grid is refined only
    ///   where linear interpolation disagrees with a midpoint solve,
    ///   and the round-up paths thread one barrier warm-start chain
    ///   ([`continuous::SweepWarm`]) through each ascending round, so
    ///   sweep points reuse the previous point's interior primal.
    ///
    /// Deadlines below the instance's minimum makespan are clamped
    /// away (like the sampled curve's infeasible-point skipping); an
    /// entirely infeasible range is [`SolveError::Infeasible`].
    pub fn energy_curve_exact(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        lo_factor: f64,
        hi_factor: f64,
    ) -> Result<ExactCurve, SolveError> {
        let mut warm = None;
        self.energy_curve_exact_warm(prep, model, lo_factor, hi_factor, &mut warm)
    }

    /// [`Engine::energy_curve_exact`] reusing (and refreshing) a
    /// retained Vdd warm-start handle: when `warm` holds the basis of
    /// a previous solve of this instance, the exact Vdd curve skips
    /// the cold two-phase LP entirely — the daemon's cached instances
    /// ride this path. For other models `warm` is left untouched.
    pub fn energy_curve_exact_warm(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        lo_factor: f64,
        hi_factor: f64,
        warm: &mut Option<VddWarm>,
    ) -> Result<ExactCurve, SolveError> {
        if !(lo_factor > 0.0 && hi_factor > lo_factor) {
            return Err(SolveError::Unsupported(
                "need 0 < lo_factor < hi_factor".into(),
            ));
        }
        let cp = prep.critical_path_weight();
        let (base, dmin) = match model.top_speed() {
            Some(sm) => (cp / sm, Some(cp / sm)),
            None => (cp, None),
        };
        let mut d_lo = lo_factor * base;
        if let Some(dm) = dmin {
            // Clamp the infeasible prefix away, mirroring the sampled
            // curve's infeasible-point skipping.
            d_lo = d_lo.max(dm);
        }
        let d_hi = hi_factor * base;
        if d_hi <= d_lo {
            return Err(SolveError::Infeasible {
                deadline: d_hi,
                min_makespan: dmin.unwrap_or(d_lo),
            });
        }
        let mut stats = CurveStats::default();

        // Unbounded Continuous: the scaling law pins the whole curve.
        if matches!(model, EnergyModel::Continuous { s_max: None }) {
            let e0 = self.solve(prep, model, d_lo)?.energy;
            let p = self.power.alpha() - 1.0;
            stats.samples = 1;
            return Ok(ExactCurve {
                segments: vec![CurveSegment {
                    deadline_lo: d_lo,
                    deadline_hi: d_hi,
                    energy: CurveEnergy::Power {
                        c: e0 * d_lo.powf(p),
                        p,
                    },
                }],
                exact: true,
                stats,
            });
        }

        // Vdd-Hopping: the parametric ray, warm when possible.
        if let EnergyModel::VddHopping(modes) = model {
            if warm
                .as_ref()
                .is_some_and(|w| w.modes().speeds() != modes.speeds())
            {
                *warm = None;
            }
            let ray = match warm.as_mut() {
                Some(w) => match w.deadline_ray(prep, d_lo, d_hi) {
                    Ok(ray) => Ok(ray),
                    Err(e @ SolveError::Infeasible { .. }) => return Err(e),
                    Err(_) => {
                        // Spent basis: ledger it and rebuild cold.
                        profiling::bump_warm_lost();
                        *warm = None;
                        vdd::deadline_ray_prepared(prep, d_lo, d_hi, modes, self.power).map(
                            |(ray, handle)| {
                                *warm = Some(handle);
                                ray
                            },
                        )
                    }
                },
                None => vdd::deadline_ray_prepared(prep, d_lo, d_hi, modes, self.power).map(
                    |(ray, handle)| {
                        *warm = Some(handle);
                        ray
                    },
                ),
            };
            match ray {
                Ok(ray) => {
                    stats.lp_breakpoints = ray.breakpoints();
                    let segments = ray
                        .segments
                        .iter()
                        .map(|s| CurveSegment {
                            deadline_lo: s.t_lo,
                            deadline_hi: s.t_hi.min(d_hi),
                            energy: CurveEnergy::Affine {
                                a: s.value_lo - s.slope * s.t_lo,
                                b: s.slope,
                            },
                        })
                        .collect();
                    return Ok(ExactCurve {
                        segments,
                        exact: true,
                        stats,
                    });
                }
                Err(e @ SolveError::Infeasible { .. }) => return Err(e),
                Err(_) => {
                    // The walk itself degenerated (iteration cap,
                    // blocked artificial): degrade to the sampled
                    // fallback rather than failing the request.
                }
            }
        }

        // Adaptive sampling: Discrete / Incremental / capped
        // Continuous (and the rare degenerate Vdd walk).
        let segments = self.adaptive_curve(prep, model, d_lo, d_hi, &mut stats)?;
        Ok(ExactCurve {
            segments,
            exact: false,
            stats,
        })
    }

    /// One point solve for the adaptive-sampling curve, mirroring the
    /// registry's Discrete/Incremental routing but threading the
    /// barrier warm-start chain through the round-up paths.
    fn curve_sample(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        d: f64,
        chain: &mut continuous::SweepWarm,
    ) -> Result<f64, SolveError> {
        let n = prep.graph().n();
        match model {
            EnergyModel::Discrete(modes)
                if !algorithms::bnb_tractable_for(n, &self.opts, modes.m()) =>
            {
                let speeds = crate::discrete::round_up_warm(
                    prep,
                    d,
                    modes,
                    self.power,
                    Some(self.opts.precision_k),
                    chain,
                )?;
                Ok(continuous::energy_of_speeds(
                    prep.graph(),
                    &speeds,
                    self.power,
                ))
            }
            EnergyModel::Incremental(modes)
                if !(self.opts.exact_incremental
                    && algorithms::bnb_tractable_for(n, &self.opts, modes.m())) =>
            {
                let speeds = crate::incremental::approx_warm(
                    prep,
                    d,
                    modes,
                    self.power,
                    self.opts.precision_k,
                    chain,
                )?;
                Ok(continuous::energy_of_speeds(
                    prep.graph(),
                    &speeds,
                    self.power,
                ))
            }
            // Capped Continuous on a general DAG: the dispatch would
            // run the same barrier solve cold; thread the chain
            // through it. (Recognized shapes keep their closed forms —
            // cheaper than any warm-started barrier.)
            EnergyModel::Continuous { s_max: Some(sm) }
                if matches!(prep.shape(), taskgraph::structure::Shape::General) =>
            {
                let speeds = continuous::solve_general_warm(
                    prep,
                    d,
                    None,
                    Some(*sm),
                    self.power,
                    None,
                    chain,
                )?;
                Ok(continuous::energy_of_speeds(
                    prep.graph(),
                    &speeds,
                    self.power,
                ))
            }
            _ => Ok(self.solve(prep, model, d)?.energy),
        }
    }

    /// The sampled fallback of [`Engine::energy_curve_exact`]: a
    /// geometric starter grid, then rounds of midpoint refinement
    /// wherever linear interpolation disagrees with a real solve.
    /// Every round solves its new points in ascending-deadline order
    /// through one fresh barrier warm-start chain.
    fn adaptive_curve(
        &self,
        prep: &PreparedGraph<'_>,
        model: &EnergyModel,
        d_lo: f64,
        d_hi: f64,
        stats: &mut CurveStats,
    ) -> Result<Vec<CurveSegment>, SolveError> {
        const INIT_POINTS: usize = 9;
        const REL_TOL: f64 = 1e-3;
        const MAX_SAMPLES: usize = 65;

        let record = |stats: &mut CurveStats, chain: &continuous::SweepWarm| {
            stats.barrier_newton_steps += chain.stats.newton_steps;
            stats.barrier_warm_seeded += chain.stats.warm_seeded;
        };
        // Starter grid (geometric, ascending) through one warm chain.
        let ratio = (d_hi / d_lo).powf(1.0 / (INIT_POINTS - 1) as f64);
        let mut samples: Vec<(f64, f64)> = Vec::with_capacity(MAX_SAMPLES);
        let mut chain = continuous::SweepWarm::new();
        let mut d = d_lo;
        for k in 0..INIT_POINTS {
            // Pin the endpoints exactly despite powf drift.
            let dk = if k == INIT_POINTS - 1 { d_hi } else { d };
            samples.push((dk, self.curve_sample(prep, model, dk, &mut chain)?));
            d *= ratio;
        }
        stats.samples += INIT_POINTS;
        record(stats, &chain);

        // Refinement rounds: split every interval whose midpoint
        // disagrees with interpolation, until all agree or the sample
        // budget is gone.
        let mut suspect: Vec<(f64, f64)> = samples.windows(2).map(|w| (w[0].0, w[1].0)).collect();
        while !suspect.is_empty() && samples.len() < MAX_SAMPLES {
            suspect.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut next = Vec::new();
            let mut chain = continuous::SweepWarm::new();
            let mut solved = 0usize;
            for (lo, hi) in suspect.drain(..) {
                if samples.len() + solved >= MAX_SAMPLES {
                    break;
                }
                let mid = (lo * hi).sqrt();
                if mid <= lo || mid >= hi {
                    continue; // interval at float resolution
                }
                let e_mid = self.curve_sample(prep, model, mid, &mut chain)?;
                solved += 1;
                let (e_lo, e_hi) = (
                    samples
                        .iter()
                        .find(|s| s.0 == lo)
                        .expect("interval endpoint solved")
                        .1,
                    samples
                        .iter()
                        .find(|s| s.0 == hi)
                        .expect("interval endpoint solved")
                        .1,
                );
                let interp = e_lo + (e_hi - e_lo) * (mid - lo) / (hi - lo);
                samples.push((mid, e_mid));
                if (interp - e_mid).abs() > REL_TOL * (1.0 + e_mid.abs()) {
                    next.push((lo, mid));
                    next.push((mid, hi));
                }
            }
            stats.samples += solved;
            record(stats, &chain);
            samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            suspect = next;
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let segments = samples
            .windows(2)
            .map(|w| {
                let ((d0, e0), (d1, e1)) = (w[0], w[1]);
                let b = (e1 - e0) / (d1 - d0);
                CurveSegment {
                    deadline_lo: d0,
                    deadline_hi: d1,
                    energy: CurveEnergy::Affine { a: e0 - b * d0, b },
                }
            })
            .collect();
        Ok(segments)
    }

    /// Run `f(0..n)` across scoped worker threads, returning results
    /// in index order. Work is pulled from a shared atomic counter so
    /// uneven instances balance; with one worker (or one item) it runs
    /// inline.
    fn run_ordered<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let workers = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(n.max(1));
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, T)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            mine.push((i, f(i)));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{DiscreteModes, IncrementalModes};
    use taskgraph::{generators, profiling};

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn analysis_runs_exactly_once_per_prepared_graph() {
        // The acceptance hook: classify / SP recognition / topo order
        // each run once per prepared graph no matter how many solves
        // reuse it. Counters are thread-local, so keep everything on
        // this thread (single solves never spawn).
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let model = EnergyModel::continuous_unbounded();
        let before = profiling::counts();
        let mut energies = Vec::new();
        for k in 0..8 {
            let d = 4.0 + k as f64;
            energies.push(engine.solve(&prep, &model, d).unwrap().energy);
        }
        let delta = profiling::counts() - before;
        assert_eq!(delta.classify, 1, "classification must run once");
        assert_eq!(delta.sp_from_graph, 1, "SP recognition must run once");
        assert_eq!(delta.topo_order, 1, "topo order must be computed once");
        // Sanity: the solves were real.
        assert!(energies.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn vdd_path_reuses_prepared_analysis() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let before = profiling::counts();
        for k in 0..5 {
            engine.solve(&prep, &model, 5.0 + k as f64).unwrap();
        }
        let delta = profiling::counts() - before;
        // Vdd never needs the shape, and the reduction/critical path
        // reuse the single cached topo order.
        assert_eq!(delta.topo_order, 1);
        assert_eq!(delta.classify, 0);
        assert_eq!(delta.sp_from_graph, 0);
    }

    #[test]
    fn engine_matches_legacy_dispatch_tags() {
        let g = generators::chain(&[1.0, 1.0]);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let engine = Engine::new(P);
        let cases: Vec<(EnergyModel, &str)> = vec![
            (EnergyModel::continuous_unbounded(), "continuous"),
            (EnergyModel::VddHopping(modes.clone()), "vdd-lp"),
            (EnergyModel::Discrete(modes), "discrete-bnb"),
            (
                EnergyModel::Incremental(IncrementalModes::new(1.0, 2.0, 0.5).unwrap()),
                "incremental-approx",
            ),
        ];
        for (model, expect) in cases {
            let prep = PreparedGraph::new(&g);
            let sol = engine.solve(&prep, &model, 3.0).unwrap();
            assert_eq!(sol.algorithm, expect);
        }
    }

    #[test]
    fn batch_matches_sequential_in_order_and_values() {
        let graphs: Vec<TaskGraph> = vec![
            generators::chain(&[1.0, 2.0, 3.0]),
            generators::diamond([1.0, 2.0, 3.0, 1.5]),
            generators::fork(1.0, &[2.0, 1.0, 3.0]),
            generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5),
        ];
        let jobs: Vec<(&TaskGraph, f64)> =
            graphs.iter().flat_map(|g| [(g, 5.0), (g, 8.0)]).collect();
        let model = EnergyModel::continuous(2.5);
        let sequential = Engine::new(P).threads(1).solve_batch(&model, &jobs);
        let parallel = Engine::new(P).threads(4).solve_batch(&model, &jobs);
        assert_eq!(sequential.len(), parallel.len());
        for (s, q) in sequential.iter().zip(&parallel) {
            let (s, q) = (s.as_ref().unwrap(), q.as_ref().unwrap());
            assert_eq!(s.algorithm, q.algorithm);
            assert!((s.energy - q.energy).abs() <= 1e-12 * (1.0 + s.energy));
        }
    }

    #[test]
    fn batch_prepares_each_distinct_graph_once() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let h = generators::chain(&[1.0, 2.0]);
        let jobs: Vec<(&TaskGraph, f64)> = vec![(&g, 5.0), (&g, 6.0), (&h, 4.0), (&g, 7.0)];
        let model = EnergyModel::continuous_unbounded();
        let before = profiling::counts();
        // Single worker: everything stays on this thread so the
        // thread-local counters see the whole batch.
        let results = Engine::new(P).threads(1).solve_batch(&model, &jobs);
        assert!(results.iter().all(Result::is_ok));
        let delta = profiling::counts() - before;
        // Two distinct graphs → exactly two classifications and two
        // topo orders, not four.
        assert_eq!(delta.classify, 2);
        assert_eq!(delta.topo_order, 2);
    }

    #[test]
    fn batch_dedups_identical_graphs_by_content() {
        // Two separate allocations of the same graph (as if loaded
        // from two files): content hashing must prepare only once.
        let g1 = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let g2 = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        assert!(!std::ptr::eq(&g1, &g2));
        let jobs: Vec<(&TaskGraph, f64)> = vec![(&g1, 5.0), (&g2, 6.0), (&g1, 7.0)];
        let model = EnergyModel::continuous_unbounded();
        let before = profiling::counts();
        let results = Engine::new(P).threads(1).solve_batch(&model, &jobs);
        assert!(results.iter().all(Result::is_ok));
        let delta = profiling::counts() - before;
        assert_eq!(delta.classify, 1, "equal content must share one prep");
        assert_eq!(delta.topo_order, 1);
    }

    #[test]
    fn solve_edited_weight_only_recomputes_no_structure() {
        use std::sync::Arc;

        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let model = EnergyModel::continuous_unbounded();
        let mut warm = None;
        let before = profiling::counts();
        let (patched, sol) = engine
            .solve_edited(
                &inst,
                &[GraphEdit::SetWeight {
                    task: 1,
                    weight: 4.0,
                }],
                &model,
                8.0,
                &mut warm,
            )
            .unwrap();
        let delta = profiling::counts() - before;
        assert_eq!(delta.topo_order, 0);
        assert_eq!(delta.classify, 0);
        assert_eq!(delta.sp_from_graph, 0);
        assert_eq!(delta.transitive_reduction, 0);
        // Equivalent to rebuilding and solving from scratch.
        let rebuilt =
            TaskGraph::new(vec![1.0, 4.0, 3.0, 1.5], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let cold = engine.solve_graph(&rebuilt, &model, 8.0).unwrap();
        assert!((sol.energy - cold.energy).abs() <= 1e-9 * (1.0 + cold.energy));
        assert_eq!(patched.graph(), &rebuilt);
    }

    #[test]
    fn vdd_warm_chain_matches_cold_and_tags_warm() {
        use std::sync::Arc;

        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        let mut warm = None;
        let d = 6.0;
        // First edited solve: no warm state yet → cold LP, handle filled.
        let (i1, s1) = engine
            .solve_edited(
                &inst,
                &[GraphEdit::SetWeight {
                    task: 1,
                    weight: 2.5,
                }],
                &model,
                d,
                &mut warm,
            )
            .unwrap();
        assert_eq!(s1.algorithm, "vdd-lp");
        assert!(warm.is_some());
        // Second edit: warm path.
        let (i2, s2) = engine
            .solve_edited(
                &i1,
                &[GraphEdit::SetWeight {
                    task: 2,
                    weight: 4.0,
                }],
                &model,
                d,
                &mut warm,
            )
            .unwrap();
        assert_eq!(s2.algorithm, "vdd-lp-warm");
        let cold = engine.solve(&i2.view(), &model, d).unwrap();
        assert!(
            (s2.energy - cold.energy).abs() <= 1e-6 * (1.0 + cold.energy),
            "warm {} vs cold {}",
            s2.energy,
            cold.energy
        );
        // A structural edit that leaves the transitively reduced
        // precedence rows unchanged keeps the handle: inserting the
        // transitive edge 0→4 changes the graph but not the LP.
        let (i3, s3) = engine
            .solve_edited(
                &i2,
                &[GraphEdit::InsertEdge { from: 0, to: 4 }],
                &model,
                d,
                &mut warm,
            )
            .unwrap();
        assert_eq!(s3.algorithm, "vdd-lp-warm", "same LP: handle survives");
        let cold = engine.solve(&i3.view(), &model, d).unwrap();
        assert!((s3.energy - cold.energy).abs() <= 1e-6 * (1.0 + cold.energy));
        // A structural edit that changes the reduction spends the
        // handle: the next solve is cold again.
        let (_, s4) = engine
            .solve_edited(
                &i3,
                &[GraphEdit::InsertEdge { from: 1, to: 2 }],
                &model,
                d,
                &mut warm,
            )
            .unwrap();
        assert_eq!(s4.algorithm, "vdd-lp");
    }

    #[test]
    fn solve_edited_rejects_invalid_batches() {
        use std::sync::Arc;

        let g = generators::chain(&[1.0, 2.0]);
        let engine = Engine::new(P);
        let inst = PreparedInstance::new(Arc::new(g));
        let mut warm = None;
        let err = engine
            .solve_edited(
                &inst,
                &[GraphEdit::InsertEdge { from: 1, to: 0 }],
                &EnergyModel::continuous_unbounded(),
                3.0,
                &mut warm,
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::Unsupported(_)));
    }

    #[test]
    fn curve_shortcut_matches_pointwise_solves() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let model = EnergyModel::continuous_unbounded();
        let curve = engine.energy_curve(&prep, &model, 6, 0.8, 3.0).unwrap();
        assert_eq!(curve.len(), 6);
        for pt in &curve {
            let direct = engine.solve(&prep, &model, pt.deadline).unwrap().energy;
            assert!(
                (pt.energy - direct).abs() <= 1e-9 * (1.0 + direct),
                "scaling shortcut diverged at D = {}",
                pt.deadline
            );
        }
    }

    #[test]
    fn vdd_warm_sweep_matches_cold_solves() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let curve = engine.energy_curve(&prep, &model, 8, 1.05, 4.0).unwrap();
        assert!(curve.len() >= 7);
        for pt in &curve {
            let cold = engine.solve(&prep, &model, pt.deadline).unwrap().energy;
            assert!(
                (pt.energy - cold).abs() <= 1e-6 * (1.0 + cold),
                "warm LP diverged at D = {}: {} vs {}",
                pt.deadline,
                pt.energy,
                cold
            );
        }
        // Monotone non-increasing along the front.
        for w in curve.windows(2) {
            assert!(w[1].energy <= w[0].energy * (1.0 + 1e-6));
        }
    }

    #[test]
    fn exact_vdd_curve_matches_sampled_curve_pointwise() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let curve = engine.energy_curve_exact(&prep, &model, 1.05, 4.0).unwrap();
        assert!(curve.exact);
        assert!(!curve.segments.is_empty());
        // Contiguous, monotone boundaries; non-increasing energy.
        for w in curve.segments.windows(2) {
            assert!((w[0].deadline_hi - w[1].deadline_lo).abs() < 1e-9 * w[0].deadline_hi);
            assert!(w[0].deadline_lo < w[0].deadline_hi);
        }
        let sampled = engine.energy_curve(&prep, &model, 16, 1.05, 4.0).unwrap();
        for pt in &sampled {
            let exact = curve.energy_at(pt.deadline).unwrap();
            assert!(
                (exact - pt.energy).abs() <= 1e-6 * (1.0 + pt.energy),
                "exact {exact} vs sampled {} at D = {}",
                pt.energy,
                pt.deadline
            );
        }
    }

    #[test]
    fn exact_vdd_curve_warm_handle_skips_cold_lp() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        // Seed a warm handle the way the daemon does.
        let mut warm = None;
        engine.solve_warm(&prep, &model, 6.0, &mut warm).unwrap();
        assert!(warm.is_some());
        let a = engine
            .energy_curve_exact_warm(&prep, &model, 1.05, 4.0, &mut warm)
            .unwrap();
        assert!(warm.is_some(), "handle survives the walk");
        // A repeat request through the retained handle gives the same
        // value function (segment boundaries may differ at degenerate
        // ties between alternate optimal bases — the values may not).
        let b = engine
            .energy_curve_exact_warm(&prep, &model, 1.05, 4.0, &mut warm)
            .unwrap();
        assert!((a.deadline_lo() - b.deadline_lo()).abs() < 1e-9 * (1.0 + a.deadline_lo()));
        assert!((a.deadline_hi() - b.deadline_hi()).abs() < 1e-9 * (1.0 + a.deadline_hi()));
        for k in 0..=32 {
            let d = a.deadline_lo() + (a.deadline_hi() - a.deadline_lo()) * k as f64 / 32.0;
            let (ea, eb) = (a.energy_at(d).unwrap(), b.energy_at(d).unwrap());
            assert!(
                (ea - eb).abs() <= 1e-6 * (1.0 + ea),
                "repeat walk diverged at D = {d}: {ea} vs {eb}"
            );
        }
    }

    #[test]
    fn exact_continuous_curve_is_the_scaling_law() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let model = EnergyModel::continuous_unbounded();
        let curve = engine.energy_curve_exact(&prep, &model, 0.8, 3.0).unwrap();
        assert!(curve.exact);
        assert_eq!(curve.segments.len(), 1);
        for k in 0..8 {
            let d =
                curve.deadline_lo() + (curve.deadline_hi() - curve.deadline_lo()) * k as f64 / 7.0;
            let direct = engine.solve(&prep, &model, d).unwrap().energy;
            let exact = curve.energy_at(d).unwrap();
            assert!((exact - direct).abs() <= 1e-9 * (1.0 + direct));
        }
    }

    #[test]
    fn exact_discrete_curve_brackets_pointwise_solves() {
        // Discrete (bnb-tractable here): the adaptive fallback samples
        // real solves, so any deadline's interpolated energy must lie
        // between the true energies at its segment's endpoints
        // (monotone non-increasing curve).
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
        let model = EnergyModel::Discrete(modes);
        let curve = engine.energy_curve_exact(&prep, &model, 1.05, 3.0).unwrap();
        assert!(!curve.exact);
        assert!(curve.stats.samples >= 9);
        for k in 1..8 {
            let d = curve.deadline_lo()
                * (curve.deadline_hi() / curve.deadline_lo()).powf(k as f64 / 8.0);
            let seg = curve.segment_at(d).unwrap();
            let e = curve.energy_at(d).unwrap();
            let hi_true = engine.solve(&prep, &model, seg.deadline_lo).unwrap().energy;
            let lo_true = engine.solve(&prep, &model, seg.deadline_hi).unwrap().energy;
            assert!(
                e <= hi_true * (1.0 + 1e-6) && e >= lo_true * (1.0 - 1e-6),
                "interpolated {e} outside [{lo_true}, {hi_true}] at D = {d}"
            );
        }
    }

    #[test]
    fn exact_curve_rejects_structurally_stale_warm_handle() {
        use taskgraph::edit::GraphEdit;

        // A handle built over one precedence structure must not walk
        // a curve for a structurally different (same-n) graph: the
        // engine has to detect the stale basis, ledger it, and rebuild
        // cold — matching the edited graph's true optimum.
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let inst = PreparedInstance::new(std::sync::Arc::new(g));
        let mut warm = None;
        engine
            .solve_warm(&inst.view(), &model, 6.0, &mut warm)
            .unwrap();
        let patched = inst
            .apply(&[GraphEdit::InsertEdge { from: 1, to: 2 }])
            .unwrap();
        let before = super::profiling::counts();
        let curve = engine
            .energy_curve_exact_warm(&patched.view(), &model, 1.05, 3.0, &mut warm)
            .unwrap();
        let delta = super::profiling::counts() - before;
        assert_eq!(delta.warm_lost, 1, "stale handle must be ledgered");
        // The curve must describe the *edited* graph.
        for k in 0..6 {
            let d =
                curve.deadline_lo() + (curve.deadline_hi() - curve.deadline_lo()) * k as f64 / 5.0;
            let cold = engine.solve(&patched.view(), &model, d).unwrap().energy;
            let exact = curve.energy_at(d).unwrap();
            assert!(
                (exact - cold).abs() <= 1e-6 * (1.0 + cold),
                "stale-handle curve wrong at D = {d}: {exact} vs {cold}"
            );
        }
    }

    #[test]
    fn exact_curve_clamps_infeasible_prefix_and_rejects_empty_range() {
        let g = generators::chain(&[4.0]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        // dmin = 2; lo_factor 0.5 starts below it: clamped, not fatal.
        let curve = engine.energy_curve_exact(&prep, &model, 0.5, 3.0).unwrap();
        assert!((curve.deadline_lo() - 2.0).abs() < 1e-9);
        // A range entirely below dmin is infeasible.
        assert!(matches!(
            engine.energy_curve_exact(&prep, &model, 0.2, 0.5),
            Err(SolveError::Infeasible { .. })
        ));
        assert!(matches!(
            engine.energy_curve_exact(&prep, &model, 2.0, 1.0),
            Err(SolveError::Unsupported(_))
        ));
    }

    #[test]
    fn solve_deadlines_vdd_warm_chain_keeps_caller_order() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        // Unsorted, with duplicates and an infeasible entry.
        let deadlines = [8.0, 5.0, 1.0, 6.5, 5.0, 12.0];
        let results = engine.solve_deadlines(&prep, &model, &deadlines);
        assert_eq!(results.len(), deadlines.len());
        assert!(matches!(results[2], Err(SolveError::Infeasible { .. })));
        for (i, &d) in deadlines.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let sol = results[i].as_ref().unwrap();
            let cold = engine.solve(&prep, &model, d).unwrap();
            assert!(
                (sol.energy - cold.energy).abs() <= 1e-6 * (1.0 + cold.energy),
                "order-restored result at index {i} (D = {d})"
            );
        }
        // The duplicate pair shares one solve (identical results).
        let (a, b) = (results[1].as_ref().unwrap(), results[4].as_ref().unwrap());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        // Only the smallest feasible deadline runs cold; the rest of
        // the chain re-optimizes the retained basis.
        let warm_tags = results
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|s| s.algorithm == "vdd-lp-warm"))
            .count();
        assert!(warm_tags >= 3, "warm chain must carry the sweep");
    }

    #[test]
    fn warm_lost_counter_ledgers_spent_handles() {
        use taskgraph::edit::GraphEdit;

        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let engine = Engine::new(P);
        let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let model = EnergyModel::VddHopping(modes);
        let inst = PreparedInstance::new(std::sync::Arc::new(g));
        let mut warm = None;
        engine
            .solve_warm(&inst.view(), &model, 6.0, &mut warm)
            .unwrap();
        assert!(warm.is_some());
        // A structural edit invalidates the basis; feeding the stale
        // handle a structurally different instance must be ledgered.
        let patched = inst
            .apply(&[GraphEdit::InsertEdge { from: 1, to: 2 }])
            .unwrap();
        let before = super::profiling::counts();
        engine
            .solve_warm(&patched.view(), &model, 6.0, &mut warm)
            .unwrap();
        let delta = super::profiling::counts() - before;
        assert_eq!(delta.warm_lost, 1, "spent handle must be counted");
    }

    #[test]
    fn infeasible_points_are_skipped_not_fatal() {
        let g = generators::chain(&[4.0]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        // lo_factor < 1: the first points sit below dmin.
        let curve = engine
            .energy_curve(&prep, &EnergyModel::Discrete(modes), 5, 0.5, 3.0)
            .unwrap();
        assert!(!curve.is_empty() && curve.len() < 5);
    }

    #[test]
    fn bad_curve_parameters_error_instead_of_panicking() {
        let g = generators::chain(&[1.0]);
        let engine = Engine::new(P);
        let prep = PreparedGraph::new(&g);
        let model = EnergyModel::continuous_unbounded();
        assert!(matches!(
            engine.energy_curve(&prep, &model, 1, 1.0, 2.0),
            Err(SolveError::Unsupported(_))
        ));
        assert!(matches!(
            engine.energy_curve(&prep, &model, 4, 2.0, 1.0),
            Err(SolveError::Unsupported(_))
        ));
    }
}
