//! Thread-local counters for engine-level warm-start events, in the
//! style of [`taskgraph::profiling`].
//!
//! The engine's warm paths (the Vdd LP basis chain, the barrier sweep
//! chain) all promise "fall back to a cold solve on any warm failure,
//! never fail where a cold solve would succeed". That fallback used to
//! be invisible: a sweep could silently lose its basis at every point
//! and re-solve cold without anyone noticing the regression. These
//! counters make the event observable — tests assert deltas, and the
//! daemon surfaces per-worker totals in `stats`.

use std::cell::Cell;

thread_local! {
    static WARM_LOST: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's engine warm-start counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Times a retained warm state (Vdd LP basis or validated warm
    /// solution) was lost and the solve fell back to a cold path:
    /// `resolve_rhs` failures inside sweeps, warm schedules failing
    /// validation, spent [`crate::engine::VddWarm`] handles.
    pub warm_lost: u64,
}

impl std::ops::Sub for Counts {
    type Output = Counts;
    fn sub(self, rhs: Counts) -> Counts {
        Counts {
            warm_lost: self.warm_lost - rhs.warm_lost,
        }
    }
}

/// This thread's current counts.
pub fn counts() -> Counts {
    Counts {
        warm_lost: WARM_LOST.with(Cell::get),
    }
}

pub(crate) fn bump_warm_lost() {
    WARM_LOST.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_bumps_and_subtracts() {
        let before = counts();
        bump_warm_lost();
        bump_warm_lost();
        let delta = counts() - before;
        assert_eq!(delta.warm_lost, 2);
    }
}
