//! Thread-local counters for engine-level warm-start events, in the
//! style of [`taskgraph::profiling`].
//!
//! The engine's warm paths (the Vdd LP basis chain, the barrier sweep
//! chain) all promise "fall back to a cold solve on any warm failure,
//! never fail where a cold solve would succeed". That fallback used to
//! be invisible: a sweep could silently lose its basis at every point
//! and re-solve cold without anyone noticing the regression. These
//! counters make the event observable — tests assert deltas, and the
//! daemon surfaces per-worker totals in `stats`.
//!
//! The branch-and-bound counters follow the same discipline for the
//! parallel search: `engine::par_bnb` aggregates its subtree workers'
//! statistics internally and the *calling* thread bumps the totals
//! exactly once per solve (scoped worker threads have their own
//! thread-locals that die with them), so a daemon worker's counter
//! deltas around a request capture the whole parallel solve.

use std::cell::Cell;

thread_local! {
    static WARM_LOST: Cell<u64> = const { Cell::new(0) };
    static BNB_NODES: Cell<u64> = const { Cell::new(0) };
    static BNB_STEALS: Cell<u64> = const { Cell::new(0) };
    static BNB_CANCELLED: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's engine warm-start counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Times a retained warm state (Vdd LP basis or validated warm
    /// solution) was lost and the solve fell back to a cold path:
    /// `resolve_rhs` failures inside sweeps, warm schedules failing
    /// validation, spent [`crate::engine::VddWarm`] handles.
    pub warm_lost: u64,
    /// Branch-and-bound nodes expanded by exact Discrete/Incremental
    /// solves issued from this thread (parallel subtree workers are
    /// folded into the issuing thread's total).
    pub bnb_nodes: u64,
    /// Subtree pickups beyond each parallel worker's first — how much
    /// the atomic work-queue rebalanced beyond the static split.
    pub bnb_steals: u64,
    /// Subtrees cancelled mid-search by a portfolio race's stop flag.
    pub bnb_cancelled: u64,
}

impl std::ops::Sub for Counts {
    type Output = Counts;
    fn sub(self, rhs: Counts) -> Counts {
        Counts {
            warm_lost: self.warm_lost - rhs.warm_lost,
            bnb_nodes: self.bnb_nodes - rhs.bnb_nodes,
            bnb_steals: self.bnb_steals - rhs.bnb_steals,
            bnb_cancelled: self.bnb_cancelled - rhs.bnb_cancelled,
        }
    }
}

/// This thread's current counts.
pub fn counts() -> Counts {
    Counts {
        warm_lost: WARM_LOST.with(Cell::get),
        bnb_nodes: BNB_NODES.with(Cell::get),
        bnb_steals: BNB_STEALS.with(Cell::get),
        bnb_cancelled: BNB_CANCELLED.with(Cell::get),
    }
}

pub(crate) fn bump_warm_lost() {
    WARM_LOST.with(|c| c.set(c.get() + 1));
}

/// Fold one exact solve's branch-and-bound totals into this thread's
/// counters (called once per solve by the sequential and parallel
/// entry points).
pub(crate) fn add_bnb(nodes: u64, steals: u64, cancelled: u64) {
    BNB_NODES.with(|c| c.set(c.get() + nodes));
    BNB_STEALS.with(|c| c.set(c.get() + steals));
    BNB_CANCELLED.with(|c| c.set(c.get() + cancelled));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_bumps_and_subtracts() {
        let before = counts();
        bump_warm_lost();
        bump_warm_lost();
        add_bnb(100, 3, 1);
        let delta = counts() - before;
        assert_eq!(delta.warm_lost, 2);
        assert_eq!(delta.bnb_nodes, 100);
        assert_eq!(delta.bnb_steals, 3);
        assert_eq!(delta.bnb_cancelled, 1);
    }
}
