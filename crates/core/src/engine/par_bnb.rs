//! Deterministic parallel branch-and-bound with portfolio racing.
//!
//! The Discrete exact solver (`discrete::exact`, the paper's Theorem-4
//! problem) is a depth-first search over per-task mode assignments.
//! This module parallelizes it Bobpp-style (PAPERS.md: Menouer &
//! Le Cun, *deterministic parallel tree search*):
//!
//! 1. **Partition.** The search tree is split at a fixed depth by
//!    iterative breadth-first deepening
//!    (`SearchCtx::enumerate_frontier`): the frontier is expanded
//!    level by level — children in candidate order, prefixes in
//!    lexicographic order — until at least the target number of live
//!    prefixes exist. Each prefix is the **content-stable key** of its
//!    subtree: two runs with the same partition target enumerate
//!    byte-identical partition sets, independent of thread scheduling.
//! 2. **Explore.** The subtrees run on a `std::thread::scope` fan-out
//!    pulling from an atomic work queue. The incumbent bound is shared
//!    through a `SharedIncumbent` — an `f64`-as-bits CAS-min
//!    `AtomicU64` readable every node without a lock.
//! 3. **Determinism contract.** In the default (deterministic) mode a
//!    subtree *publishes* improvements to the shared cell but prunes
//!    only against its own seed + local incumbent, so every subtree's
//!    node count is a pure function of `(instance, prefix, seed,
//!    per-subtree budget)` — identical across repeated runs at any
//!    worker count, which is what the X10 manifest `cmp` gate checks.
//!    Which *thread* runs a subtree is irrelevant to its node count,
//!    so dynamic work pickup ("steals") costs no determinism.
//! 4. **Portfolio racing** ([`ParBnbConfig::racing`]). Two
//!    heterogeneous arms race on split worker pools: arm
//!    `"warm-slowest"` (round-up warm seed, slowest-first branching)
//!    vs. arm `"cold-fastest"` (cold, fastest-first branching). Both
//!    prune against the shared bound (`prune_shared`), and the first
//!    arm to exhaust **all** its subtrees proves the optimum and
//!    cancels the other through a shared stop flag. Racing trades the
//!    node-count determinism for earlier completion — the returned
//!    *values* are still exact, node counts are not reproducible.
//!
//! Correctness of the combine step: the optimal assignment lives in
//! exactly one partition (the frontier tiles the unpruned space), the
//! bounds are admissible, and the lexicographic combine with strict
//! `<` reproduces the sequential DFS's tie-breaking — a complete
//! deterministic parallel solve returns bit-identical energy *and
//! speeds* to the sequential search.
//!
//! Budget trips degrade to **anytime** results exactly like the
//! sequential path: the best incumbent (the warm seed at worst) comes
//! back with a certified [`ParSolution::lower_bound`], and only a trip
//! with no incumbent at all is [`SolveError::BudgetExhausted`].

use crate::continuous;
use crate::discrete::{
    round_up_with_bound, BnbStats, BranchOrder, Incumbent, SearchCtx, SharedIncumbent,
    SubtreeOutcome, DEFAULT_NODE_BUDGET,
};
use crate::engine::profiling;
use crate::error::SolveError;
use models::{DiscreteModes, PowerLaw};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use taskgraph::TaskGraph;

/// Configuration of one parallel exact solve.
#[derive(Debug, Clone, Copy)]
pub struct ParBnbConfig {
    /// Worker threads to fan the subtrees out over (1 = inline).
    pub workers: usize,
    /// Target partition count; `0` means `4 × workers` (over-splitting
    /// keeps the atomic work queue busy when subtree costs are
    /// skewed). The node counts of a run are reproducible **per
    /// partition count**, so pin this (not just `workers`) when
    /// comparing manifests.
    pub partitions: usize,
    /// Total node budget, split evenly across partitions
    /// (`ceil(budget / partitions)` each).
    pub node_budget: u64,
    /// Seed the incumbent with the Proposition 1(b) round-up.
    pub warm_start: bool,
    /// Use the dynamic chain-cover lower bound.
    pub chain_bound: bool,
    /// Race heterogeneous arms instead of the single deterministic
    /// partition sweep (exact values, nondeterministic node counts).
    pub racing: bool,
}

impl ParBnbConfig {
    /// Deterministic defaults at `workers` threads.
    pub fn with_workers(workers: usize) -> ParBnbConfig {
        ParBnbConfig {
            workers: workers.max(1),
            ..ParBnbConfig::default()
        }
    }

    fn target_partitions(&self) -> usize {
        if self.partitions > 0 {
            self.partitions
        } else {
            4 * self.workers.max(1)
        }
    }
}

impl Default for ParBnbConfig {
    fn default() -> Self {
        ParBnbConfig {
            workers: 1,
            partitions: 0,
            node_budget: DEFAULT_NODE_BUDGET,
            warm_start: true,
            chain_bound: true,
            racing: false,
        }
    }
}

/// Per-subtree search report (the X10 partition manifest rows).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Which portfolio arm searched this subtree (`"det"` outside
    /// racing).
    pub arm: &'static str,
    /// The subtree's content-stable key: the mode indices of the fixed
    /// assignment prefix, in topological task order.
    pub key: Vec<usize>,
    /// Nodes expanded inside the subtree.
    pub nodes: u64,
    /// Deadline prunes inside the subtree.
    pub pruned_infeasible: u64,
    /// Bound prunes inside the subtree.
    pub pruned_bound: u64,
    /// Whether the subtree was exhausted (not budget-tripped or
    /// cancelled).
    pub complete: bool,
    /// Best energy found *inside* this subtree, when it improved on
    /// the seed bound the subtree started from.
    pub energy: Option<f64>,
}

/// Result of a parallel exact solve.
#[derive(Debug, Clone)]
pub struct ParSolution {
    /// Best per-task speeds found (optimal when `complete`).
    pub speeds: Vec<f64>,
    /// Energy of `speeds`.
    pub energy: f64,
    /// Aggregated search statistics (partition enumeration included).
    pub stats: BnbStats,
    /// Whether the searched space proves `energy` optimal: every
    /// partition of the winning sweep ran to completion.
    pub complete: bool,
    /// Certified lower bound on the optimum (equals `energy` when
    /// `complete`).
    pub lower_bound: f64,
    /// Depth of the partition split (tasks fixed per prefix).
    pub depth: usize,
    /// Per-subtree reports, in deterministic partition order.
    pub partitions: Vec<PartitionReport>,
    /// Subtree pickups beyond each worker's first — dynamic
    /// rebalancing activity (telemetry; not part of the deterministic
    /// contract).
    pub steals: u64,
    /// Subtrees cancelled by a racing stop flag.
    pub cancellations: u64,
    /// The racing arm that proved the optimum, if racing was on and
    /// one finished.
    pub winner: Option<&'static str>,
}

impl ParSolution {
    /// Relative optimality gap (0 when `complete`).
    pub fn gap(&self) -> f64 {
        if self.complete || self.lower_bound <= 0.0 {
            return 0.0;
        }
        ((self.energy - self.lower_bound) / self.lower_bound).max(0.0)
    }
}

const ARM_DET: &str = "det";
const ARM_WARM: &str = "warm-slowest";
const ARM_COLD: &str = "cold-fastest";

/// Parallel exact Discrete solve. See the module docs for the
/// partition scheme, the determinism contract, and racing.
pub fn exact_par(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    cfg: &ParBnbConfig,
) -> Result<ParSolution, SolveError> {
    // Racing needs two pools; degrade to the deterministic sweep at
    // one worker.
    if cfg.racing && cfg.workers >= 2 {
        exact_par_racing(g, deadline, modes, p, cfg)
    } else {
        exact_par_deterministic(g, deadline, modes, p, cfg)
    }
}

struct SubtreeResult {
    report: PartitionReport,
    best: Option<(f64, Vec<usize>)>,
    outcome: SubtreeOutcome,
}

/// Search one subtree from a clean per-subtree incumbent seeded at
/// `seed_energy` (determinism: the result depends only on the
/// arguments, never on sibling progress unless `prune_shared`).
#[allow(clippy::too_many_arguments)]
fn run_one(
    ctx: &SearchCtx<'_>,
    arm: &'static str,
    prefix: &[usize],
    budget: u64,
    seed_energy: f64,
    shared: Option<&SharedIncumbent>,
    prune_shared: bool,
    stop: Option<&AtomicBool>,
) -> SubtreeResult {
    let mut stats = BnbStats::default();
    let mut inc = Incumbent {
        energy: seed_energy,
        modes: None,
    };
    let outcome = if stop.is_some_and(|f| f.load(Ordering::Relaxed)) {
        // Cancelled before it started (race already decided).
        SubtreeOutcome::Stopped
    } else {
        ctx.search_subtree(
            prefix,
            budget,
            &mut inc,
            shared,
            prune_shared,
            stop,
            &mut stats,
        )
    };
    SubtreeResult {
        report: PartitionReport {
            arm,
            key: prefix.to_vec(),
            nodes: stats.nodes,
            pruned_infeasible: stats.pruned_infeasible,
            pruned_bound: stats.pruned_bound,
            complete: outcome == SubtreeOutcome::Complete,
            energy: inc.modes.as_ref().map(|_| inc.energy),
        },
        best: inc.modes.map(|m| (inc.energy, m)),
        outcome,
    }
}

/// Fan the subtrees out over `workers` scoped threads pulling from an
/// atomic queue. Results come back in partition order; the second
/// return is the steal count (pickups beyond each worker's first).
#[allow(clippy::too_many_arguments)]
fn run_subtrees(
    ctx: &SearchCtx<'_>,
    arm: &'static str,
    prefixes: &[Vec<usize>],
    workers: usize,
    per_budget: u64,
    seed_energy: f64,
    shared: Option<&SharedIncumbent>,
    prune_shared: bool,
    stop: Option<&AtomicBool>,
) -> (Vec<SubtreeResult>, u64) {
    let nworkers = workers.clamp(1, prefixes.len().max(1));
    if nworkers <= 1 {
        let results = prefixes
            .iter()
            .map(|prefix| {
                run_one(
                    ctx,
                    arm,
                    prefix,
                    per_budget,
                    seed_energy,
                    shared,
                    prune_shared,
                    stop,
                )
            })
            .collect();
        return (results, 0);
    }
    let next = AtomicUsize::new(0);
    let steals = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<SubtreeResult>>> =
        prefixes.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..nworkers {
            s.spawn(|| {
                let mut picked = 0u64;
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= prefixes.len() {
                        break;
                    }
                    picked += 1;
                    let res = run_one(
                        ctx,
                        arm,
                        &prefixes[idx],
                        per_budget,
                        seed_energy,
                        shared,
                        prune_shared,
                        stop,
                    );
                    *slots[idx].lock().expect("subtree slot poisoned") = Some(res);
                }
                if picked > 1 {
                    steals.fetch_add(picked - 1, Ordering::Relaxed);
                }
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("subtree slot poisoned")
                .expect("every subtree index was claimed")
        })
        .collect();
    (results, steals.load(Ordering::Relaxed))
}

/// The warm seed: Proposition 1(b) round-up as `(energy, mode
/// indices)` plus its certified relaxation lower bound.
fn warm_seed(
    ctx: &SearchCtx<'_>,
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> (Option<(f64, Vec<usize>)>, f64) {
    match round_up_with_bound(g, deadline, modes, p, None) {
        Ok((speeds, lb)) => {
            let energy = continuous::energy_of_speeds(g, &speeds, p);
            (Some((energy, ctx.modes_of_speeds(&speeds))), lb)
        }
        // No seed: the search starts cold (it still proves optimality
        // on completion; a budget trip then has nothing to return).
        Err(_) => (None, 0.0),
    }
}

fn exact_par_deterministic(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    cfg: &ParBnbConfig,
) -> Result<ParSolution, SolveError> {
    let ctx = SearchCtx::new(
        g,
        deadline,
        modes,
        p,
        cfg.chain_bound,
        BranchOrder::SlowestFirst,
    )?;
    let mut stats = BnbStats::default();
    let (seed, relax_lb) = if cfg.warm_start {
        warm_seed(&ctx, g, deadline, modes, p)
    } else {
        (None, 0.0)
    };
    let seed_energy = seed.as_ref().map_or(f64::INFINITY, |(e, _)| *e);

    let (depth, prefixes) =
        ctx.enumerate_frontier(cfg.target_partitions(), seed_energy, &mut stats);
    if prefixes.is_empty() {
        // The whole tree was pruned against the seed during
        // enumeration: the seed is optimal (or the instance holds no
        // feasible assignment at all).
        profiling::add_bnb(stats.nodes, 0, 0);
        return match seed {
            Some((energy, mi)) => Ok(ParSolution {
                speeds: ctx.speeds_of(&mi),
                energy,
                stats,
                complete: true,
                lower_bound: energy,
                depth,
                partitions: Vec::new(),
                steals: 0,
                cancellations: 0,
                winner: None,
            }),
            None => Err(SolveError::Infeasible {
                deadline,
                min_makespan: ctx.min_makespan(),
            }),
        };
    }

    let per_budget = cfg.node_budget.div_ceil(prefixes.len() as u64).max(1);
    // Publish-only shared cell: improvements become visible (racing
    // callers and telemetry read it) but deterministic subtrees never
    // prune against it.
    let shared = SharedIncumbent::new();
    let (results, steals) = run_subtrees(
        &ctx,
        ARM_DET,
        &prefixes,
        cfg.workers,
        per_budget,
        seed_energy,
        Some(&shared),
        false,
        None,
    );

    // Lexicographic combine with strict `<`: reproduces the
    // sequential DFS's first-optimal-leaf tie-breaking exactly.
    let mut best = seed;
    let mut complete = true;
    let mut partitions = Vec::with_capacity(results.len());
    for r in results {
        complete &= r.outcome == SubtreeOutcome::Complete;
        if let Some((e, mi)) = r.best {
            if best.as_ref().is_none_or(|(b, _)| e < *b) {
                best = Some((e, mi));
            }
        }
        stats.absorb(BnbStats {
            nodes: r.report.nodes,
            pruned_infeasible: r.report.pruned_infeasible,
            pruned_bound: r.report.pruned_bound,
        });
        partitions.push(r.report);
    }
    profiling::add_bnb(stats.nodes, steals, 0);

    match best {
        Some((energy, mi)) => {
            let lower_bound = if complete {
                energy
            } else {
                relax_lb.max(ctx.root_lower_bound()).min(energy)
            };
            Ok(ParSolution {
                speeds: ctx.speeds_of(&mi),
                energy,
                stats,
                complete,
                lower_bound,
                depth,
                partitions,
                steals,
                cancellations: 0,
                winner: None,
            })
        }
        None if complete => Err(SolveError::Infeasible {
            deadline,
            min_makespan: ctx.min_makespan(),
        }),
        None => Err(SolveError::BudgetExhausted {
            nodes: stats.nodes,
            budget: cfg.node_budget,
        }),
    }
}

struct ArmOutcome {
    stats: BnbStats,
    depth: usize,
    partitions: Vec<PartitionReport>,
    steals: u64,
    cancellations: u64,
}

/// One racing arm: enumerate its own frontier (under its own branching
/// order), sweep the subtrees pruning against the shared bound, and —
/// if every subtree completed — declare victory and stop the race.
#[allow(clippy::too_many_arguments)]
fn run_arm(
    ctx: &SearchCtx<'_>,
    arm: &'static str,
    arm_idx: usize,
    workers: usize,
    target_partitions: usize,
    node_budget: u64,
    shared: &SharedIncumbent,
    stop: &AtomicBool,
    winner: &AtomicUsize,
) -> ArmOutcome {
    let mut stats = BnbStats::default();
    // Enumeration prunes against whatever the race has already
    // published (at least the warm seed, when one exists).
    let (depth, prefixes) = ctx.enumerate_frontier(target_partitions, shared.bound(), &mut stats);
    let (results, steals) = if prefixes.is_empty() {
        (Vec::new(), 0)
    } else {
        let per_budget = node_budget.div_ceil(prefixes.len() as u64).max(1);
        run_subtrees(
            ctx,
            arm,
            &prefixes,
            workers,
            per_budget,
            f64::INFINITY,
            Some(shared),
            true,
            Some(stop),
        )
    };
    let mut complete = true;
    let mut cancellations = 0u64;
    let mut partitions = Vec::with_capacity(results.len());
    for r in results {
        complete &= r.outcome == SubtreeOutcome::Complete;
        if r.outcome == SubtreeOutcome::Stopped {
            cancellations += 1;
        }
        stats.absorb(BnbStats {
            nodes: r.report.nodes,
            pruned_infeasible: r.report.pruned_infeasible,
            pruned_bound: r.report.pruned_bound,
        });
        partitions.push(r.report);
    }
    if complete {
        // First fully-finished arm wins and cancels the rest: its
        // sweep covered the whole space, so the shared bound is now
        // the proven optimum.
        if winner
            .compare_exchange(usize::MAX, arm_idx, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            stop.store(true, Ordering::Relaxed);
        }
    }
    ArmOutcome {
        stats,
        depth,
        partitions,
        steals,
        cancellations,
    }
}

fn exact_par_racing(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    cfg: &ParBnbConfig,
) -> Result<ParSolution, SolveError> {
    let ctx_warm = SearchCtx::new(
        g,
        deadline,
        modes,
        p,
        cfg.chain_bound,
        BranchOrder::SlowestFirst,
    )?;
    let ctx_cold = SearchCtx::new(
        g,
        deadline,
        modes,
        p,
        cfg.chain_bound,
        BranchOrder::FastestFirst,
    )?;
    let shared = SharedIncumbent::new();
    let stop = AtomicBool::new(false);
    let winner = AtomicUsize::new(usize::MAX);

    let (seed, relax_lb) = if cfg.warm_start {
        warm_seed(&ctx_warm, g, deadline, modes, p)
    } else {
        (None, 0.0)
    };
    if let Some((energy, mi)) = &seed {
        // The seed enters the race through the shared cell, so every
        // arm prunes against it and the final result can never be
        // worse than the round-up.
        shared.publish(*energy, mi);
    }

    let w_warm = cfg.workers.div_ceil(2);
    let w_cold = cfg.workers - w_warm;
    let target = cfg.target_partitions();
    let (warm_out, cold_out) = std::thread::scope(|s| {
        let warm_handle = s.spawn(|| {
            run_arm(
                &ctx_warm,
                ARM_WARM,
                0,
                w_warm,
                target,
                cfg.node_budget,
                &shared,
                &stop,
                &winner,
            )
        });
        let cold_out = run_arm(
            &ctx_cold,
            ARM_COLD,
            1,
            w_cold.max(1),
            target,
            cfg.node_budget,
            &shared,
            &stop,
            &winner,
        );
        (warm_handle.join().expect("racing arm panicked"), cold_out)
    });

    let winner_idx = winner.load(Ordering::Acquire);
    let winner_name = match winner_idx {
        0 => Some(ARM_WARM),
        1 => Some(ARM_COLD),
        _ => None,
    };
    let complete = winner_name.is_some();
    // Report the winning arm's split depth (the warm arm's when the
    // race was inconclusive).
    let depth = if winner_idx == 1 {
        cold_out.depth
    } else {
        warm_out.depth
    };
    let mut stats = BnbStats::default();
    let mut partitions = Vec::new();
    let mut steals = 0u64;
    let mut cancellations = 0u64;
    for arm in [warm_out, cold_out] {
        stats.absorb(arm.stats);
        steals += arm.steals;
        cancellations += arm.cancellations;
        partitions.extend(arm.partitions);
    }
    profiling::add_bnb(stats.nodes, steals, cancellations);

    match shared.take_best().or(seed) {
        Some((energy, mi)) => {
            let lower_bound = if complete {
                energy
            } else {
                relax_lb.max(ctx_warm.root_lower_bound()).min(energy)
            };
            Ok(ParSolution {
                speeds: ctx_warm.speeds_of(&mi),
                energy,
                stats,
                complete,
                lower_bound,
                depth,
                partitions,
                steals,
                cancellations,
                winner: winner_name,
            })
        }
        None if complete => Err(SolveError::Infeasible {
            deadline,
            min_makespan: ctx_warm.min_makespan(),
        }),
        None => Err(SolveError::BudgetExhausted {
            nodes: stats.nodes,
            budget: cfg.node_budget,
        }),
    }
}

/// Convenience wrapper mirroring [`crate::discrete::exact`]: parallel
/// solve with deterministic defaults at `workers` threads.
pub fn exact_par_workers(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    workers: usize,
) -> Result<ParSolution, SolveError> {
    exact_par(g, deadline, modes, p, &ParBnbConfig::with_workers(workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    fn modes(v: &[f64]) -> DiscreteModes {
        DiscreteModes::new(v).unwrap()
    }

    fn fixture() -> (TaskGraph, f64, DiscreteModes) {
        let g = taskgraph::TaskGraph::new(
            vec![1.0, 2.0, 3.0, 1.5, 2.5, 1.0, 2.0, 1.2],
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (5, 7),
            ],
        )
        .unwrap();
        let ms = modes(&[0.6, 1.2, 1.8, 2.4]);
        let d = 1.35 * taskgraph::analysis::critical_path_weight(&g) / ms.s_max();
        (g, d, ms)
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let (g, d, ms) = fixture();
        let seq = discrete::exact(&g, d, &ms, P).unwrap();
        for workers in [1, 2, 4] {
            let par = exact_par_workers(&g, d, &ms, P, workers).unwrap();
            assert!(par.complete);
            assert_eq!(
                par.energy.to_bits(),
                seq.energy.to_bits(),
                "workers {workers}: {} vs {}",
                par.energy,
                seq.energy
            );
            assert_eq!(par.speeds, seq.speeds, "workers {workers}");
            assert_eq!(par.gap(), 0.0);
        }
    }

    #[test]
    fn deterministic_mode_reproduces_per_partition_node_counts() {
        let (g, d, ms) = fixture();
        for partitions in [1, 2, 4, 8] {
            let cfg = ParBnbConfig {
                workers: 4,
                partitions,
                ..Default::default()
            };
            let a = exact_par(&g, d, &ms, P, &cfg).unwrap();
            let b = exact_par(&g, d, &ms, P, &cfg).unwrap();
            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "p={partitions}");
            assert_eq!(a.speeds, b.speeds, "p={partitions}");
            assert_eq!(a.depth, b.depth, "p={partitions}");
            assert_eq!(
                a.partitions.len(),
                b.partitions.len(),
                "p={partitions}: partition sets must agree"
            );
            for (x, y) in a.partitions.iter().zip(&b.partitions) {
                assert_eq!(
                    x, y,
                    "p={partitions}: per-partition report must be identical"
                );
            }
        }
    }

    #[test]
    fn racing_returns_exact_values() {
        let (g, d, ms) = fixture();
        let seq = discrete::exact(&g, d, &ms, P).unwrap();
        let cfg = ParBnbConfig {
            workers: 4,
            racing: true,
            ..Default::default()
        };
        let par = exact_par(&g, d, &ms, P, &cfg).unwrap();
        assert!(par.complete, "some arm must finish");
        assert!(par.winner.is_some());
        assert!(
            (par.energy - seq.energy).abs() <= 1e-12 * seq.energy,
            "racing {} vs sequential {}",
            par.energy,
            seq.energy
        );
    }

    #[test]
    fn budget_trip_returns_anytime_incumbent() {
        // Tiny budget on a PARTITION gadget: the warm seed must
        // survive the trip as an anytime result.
        let values: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.31).collect();
        let (g, d) = generators::partition_chain(&values);
        let ms = modes(&[1.0, 2.0]);
        let cfg = ParBnbConfig {
            workers: 4,
            node_budget: 50,
            ..Default::default()
        };
        let sol = exact_par(&g, d, &ms, P, &cfg).unwrap();
        assert!(!sol.complete);
        assert!(sol.lower_bound <= sol.energy);
        // Feasible and no worse than the round-up seed.
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&sol.speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-9));
        let seed = discrete::round_up(&g, d, &ms, P, None).unwrap();
        let e_seed = continuous::energy_of_speeds(&g, &seed, P);
        assert!(sol.energy <= e_seed * (1.0 + 1e-12));
    }

    #[test]
    fn cold_budget_trip_is_budget_exhausted() {
        let values: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.31).collect();
        let (g, d) = generators::partition_chain(&values);
        let ms = modes(&[1.0, 2.0]);
        let cfg = ParBnbConfig {
            workers: 2,
            node_budget: 8,
            warm_start: false,
            ..Default::default()
        };
        assert!(matches!(
            exact_par(&g, d, &ms, P, &cfg),
            Err(SolveError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn profiling_counters_fold_into_calling_thread() {
        let (g, d, ms) = fixture();
        let before = profiling::counts();
        let sol = exact_par_workers(&g, d, &ms, P, 4).unwrap();
        let delta = profiling::counts() - before;
        assert_eq!(delta.bnb_nodes, sol.stats.nodes);
        assert_eq!(delta.bnb_steals, sol.steals);
    }
}
