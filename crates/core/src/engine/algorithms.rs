//! The algorithm registry: one pluggable solver per paper result.
//!
//! Each [`Algorithm`] declares its own applicability, so the engine's
//! dispatch is data-driven — a flat scan of [`registry`] in preference
//! order replaces the old hard-coded `match` in `solver.rs`, and the
//! provenance tag on [`crate::Solution`] is simply the name of
//! whichever entry solved the instance.

use crate::engine::Ctx;
use crate::error::SolveError;
use crate::{continuous, discrete, incremental, vdd};
use models::{EnergyModel, Schedule};

/// What one algorithm attempt produced.
pub enum Step {
    /// A candidate schedule (validated by the engine before it is
    /// handed back).
    Solved(Schedule),
    /// The algorithm applies in principle but declined this instance
    /// (e.g. branch-and-bound tripped its node budget); the engine
    /// moves on to the next applicable entry.
    Deferred,
}

/// A `MinEnergy(Ĝ, D)` solver with self-declared applicability.
pub trait Algorithm: Sync {
    /// Provenance tag recorded on [`crate::Solution::algorithm`].
    fn name(&self) -> &'static str;
    /// Whether this algorithm can attempt the instance.
    fn applies(&self, ctx: &Ctx<'_>) -> bool;
    /// Attempt the instance. Feasibility has already been pre-checked
    /// by the engine against the cached critical path.
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError>;
}

/// All registered algorithms, in dispatch-preference order (exact and
/// specialized entries before approximations; the first applicable,
/// non-deferring entry wins).
pub fn registry() -> &'static [&'static dyn Algorithm] {
    static REGISTRY: [&dyn Algorithm; 6] = [
        &Continuous,
        &VddLp,
        &DiscreteBnb,
        &DiscreteRoundUp,
        &IncrementalBnb,
        &IncrementalApprox,
    ];
    &REGISTRY
}

/// Whether exhaustive per-task mode search is plausibly tractable
/// (Theorem 4: it is exponential in general).
fn bnb_tractable(ctx: &Ctx<'_>, n_modes: usize) -> bool {
    bnb_tractable_for(ctx.prep.graph().n(), ctx.opts, n_modes)
}

/// [`bnb_tractable`] without a [`Ctx`] — the engine's exact-curve
/// sampler mirrors the registry's Discrete/Incremental routing and
/// needs the same predicate.
pub(crate) fn bnb_tractable_for(
    n: usize,
    opts: &crate::solver::SolveOptions,
    n_modes: usize,
) -> bool {
    n <= opts.exact_discrete_limit && (n_modes as f64).powi(n as i32) <= 5e9
}

/// Continuous model: Theorem 1/2 closed forms on recognized shapes,
/// the §2.1 geometric program otherwise (both exact, so one entry).
struct Continuous;

impl Algorithm for Continuous {
    fn name(&self) -> &'static str {
        "continuous"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Continuous { .. })
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Continuous { s_max } = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = continuous::solve_dispatched(ctx.prep, ctx.deadline, *s_max, ctx.power, None)?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}

/// Vdd-Hopping: the Theorem 3 LP (exact, polynomial).
struct VddLp;

impl Algorithm for VddLp {
    fn name(&self) -> &'static str {
        "vdd-lp"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::VddHopping(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::VddHopping(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let schedule = vdd::solve_lp_prepared(ctx.prep, ctx.deadline, modes, ctx.power)?;
        Ok(Step::Solved(schedule))
    }
}

/// Discrete, exact: branch-and-bound over mode assignments (Theorem
/// 4). Defers on a node-budget trip so the rounding approximation can
/// take over.
struct DiscreteBnb;

impl Algorithm for DiscreteBnb {
    fn name(&self) -> &'static str {
        "discrete-bnb"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        match ctx.model {
            EnergyModel::Discrete(modes) => bnb_tractable(ctx, modes.m()),
            _ => false,
        }
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Discrete(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        match discrete::exact(ctx.prep.graph(), ctx.deadline, modes, ctx.power) {
            Ok(sol) => Ok(Step::Solved(ctx.schedule_from_speeds(&sol.speeds))),
            // Budget trip: degrade gracefully to the rounding entry.
            Err(SolveError::Numerical(_)) => Ok(Step::Deferred),
            Err(e) => Err(e),
        }
    }
}

/// Discrete, approximate: Proposition 1(b) round-up of the boxed
/// Continuous relaxation.
struct DiscreteRoundUp;

impl Algorithm for DiscreteRoundUp {
    fn name(&self) -> &'static str {
        "discrete-round-up"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Discrete(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Discrete(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = discrete::round_up_prepared(
            ctx.prep,
            ctx.deadline,
            modes,
            ctx.power,
            Some(ctx.opts.precision_k),
        )?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}

/// Incremental, exact (opt-in): branch-and-bound on the materialized
/// grid.
struct IncrementalBnb;

impl Algorithm for IncrementalBnb {
    fn name(&self) -> &'static str {
        "incremental-bnb"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        match ctx.model {
            EnergyModel::Incremental(modes) => {
                ctx.opts.exact_incremental && bnb_tractable(ctx, modes.m())
            }
            _ => false,
        }
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Incremental(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        match incremental::exact(ctx.prep.graph(), ctx.deadline, modes, ctx.power) {
            Ok(sol) => Ok(Step::Solved(ctx.schedule_from_speeds(&sol.speeds))),
            Err(SolveError::Numerical(_)) => Ok(Step::Deferred),
            Err(e) => Err(e),
        }
    }
}

/// Incremental, approximate: the Theorem 5 rounding scheme.
struct IncrementalApprox;

impl Algorithm for IncrementalApprox {
    fn name(&self) -> &'static str {
        "incremental-approx"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Incremental(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Incremental(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = incremental::approx_prepared(
            ctx.prep,
            ctx.deadline,
            modes,
            ctx.power,
            ctx.opts.precision_k,
        )?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}
