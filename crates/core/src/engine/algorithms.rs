//! The algorithm registry: one pluggable solver per paper result.
//!
//! Each [`Algorithm`] declares its own applicability, so the engine's
//! dispatch is data-driven — a flat scan of [`registry`] in preference
//! order replaces the old hard-coded `match` in `solver.rs`, and the
//! provenance tag on [`crate::Solution`] is simply the name of
//! whichever entry solved the instance.

use crate::engine::par_bnb::{self, ParBnbConfig};
use crate::engine::{profiling, Ctx};
use crate::error::SolveError;
use crate::{continuous, discrete, incremental, vdd};
use models::{DiscreteModes, EnergyModel, Schedule};

/// What one algorithm attempt produced.
pub enum Step {
    /// A candidate schedule (validated by the engine before it is
    /// handed back).
    Solved(Schedule),
    /// A candidate schedule whose provenance tag differs from the
    /// registry entry's name — e.g. an anytime incumbent from a
    /// budget-tripped exact search (`"discrete-bnb-anytime"`), or a
    /// parallel-search solve (`"discrete-bnb-par"`).
    Tagged(&'static str, Schedule),
    /// The algorithm applies in principle but declined this instance
    /// (e.g. branch-and-bound tripped its node budget with no
    /// incumbent); the engine moves on to the next applicable entry.
    Deferred,
}

/// A `MinEnergy(Ĝ, D)` solver with self-declared applicability.
pub trait Algorithm: Sync {
    /// Provenance tag recorded on [`crate::Solution::algorithm`].
    fn name(&self) -> &'static str;
    /// Whether this algorithm can attempt the instance.
    fn applies(&self, ctx: &Ctx<'_>) -> bool;
    /// Attempt the instance. Feasibility has already been pre-checked
    /// by the engine against the cached critical path.
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError>;
}

/// All registered algorithms, in dispatch-preference order (exact and
/// specialized entries before approximations; the first applicable,
/// non-deferring entry wins).
pub fn registry() -> &'static [&'static dyn Algorithm] {
    static REGISTRY: [&dyn Algorithm; 6] = [
        &Continuous,
        &VddLp,
        &DiscreteBnb,
        &DiscreteRoundUp,
        &IncrementalBnb,
        &IncrementalApprox,
    ];
    &REGISTRY
}

/// Whether exhaustive per-task mode search is plausibly tractable
/// (Theorem 4: it is exponential in general).
fn bnb_tractable(ctx: &Ctx<'_>, n_modes: usize) -> bool {
    bnb_tractable_for(ctx.prep.graph().n(), ctx.opts, n_modes)
}

/// [`bnb_tractable`] without a [`Ctx`] — the engine's exact-curve
/// sampler mirrors the registry's Discrete/Incremental routing and
/// needs the same predicate.
pub(crate) fn bnb_tractable_for(
    n: usize,
    opts: &crate::solver::SolveOptions,
    n_modes: usize,
) -> bool {
    n <= opts.exact_discrete_limit && (n_modes as f64).powi(n as i32) <= 5e9
}

/// Continuous model: Theorem 1/2 closed forms on recognized shapes,
/// the §2.1 geometric program otherwise (both exact, so one entry).
struct Continuous;

impl Algorithm for Continuous {
    fn name(&self) -> &'static str {
        "continuous"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Continuous { .. })
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Continuous { s_max } = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = continuous::solve_dispatched(ctx.prep, ctx.deadline, *s_max, ctx.power, None)?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}

/// Vdd-Hopping: the Theorem 3 LP (exact, polynomial).
struct VddLp;

impl Algorithm for VddLp {
    fn name(&self) -> &'static str {
        "vdd-lp"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::VddHopping(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::VddHopping(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let schedule = vdd::solve_lp_prepared(ctx.prep, ctx.deadline, modes, ctx.power)?;
        Ok(Step::Solved(schedule))
    }
}

/// Shared body of the two exact branch-and-bound entries: sequential
/// at one worker, `par_bnb` when the solve's thread share allows
/// ([`Ctx::workers`] ≥ 2, set only via `Engine::threads`). A complete
/// solve keeps the entry's own name (or `par_tag` for the parallel
/// path); a budget trip **with** an incumbent comes back as an
/// anytime schedule under `anytime_tag`; a trip with no incumbent
/// defers to the rounding entry — matched structurally on
/// [`SolveError::BudgetExhausted`], never on message strings.
fn run_exact_bnb(
    ctx: &Ctx<'_>,
    modes: &DiscreteModes,
    par_tag: &'static str,
    anytime_tag: &'static str,
) -> Result<Step, SolveError> {
    let g = ctx.prep.graph();
    if ctx.workers >= 2 {
        let cfg = ParBnbConfig {
            workers: ctx.workers,
            racing: ctx.opts.bnb_racing,
            ..Default::default()
        };
        // par_bnb folds its own node/steal/cancel totals into this
        // thread's profiling counters.
        return match par_bnb::exact_par(g, ctx.deadline, modes, ctx.power, &cfg) {
            Ok(sol) => {
                let tag = if sol.complete { par_tag } else { anytime_tag };
                Ok(Step::Tagged(tag, ctx.schedule_from_speeds(&sol.speeds)))
            }
            Err(SolveError::BudgetExhausted { .. }) => Ok(Step::Deferred),
            Err(e) => Err(e),
        };
    }
    match discrete::exact(g, ctx.deadline, modes, ctx.power) {
        Ok(sol) => {
            profiling::add_bnb(sol.stats.nodes, 0, 0);
            let sched = ctx.schedule_from_speeds(&sol.speeds);
            if sol.complete {
                Ok(Step::Solved(sched))
            } else {
                Ok(Step::Tagged(anytime_tag, sched))
            }
        }
        // Budget trip with nothing in hand: degrade gracefully to the
        // rounding entry.
        Err(SolveError::BudgetExhausted { nodes, .. }) => {
            profiling::add_bnb(nodes, 0, 0);
            Ok(Step::Deferred)
        }
        Err(e) => Err(e),
    }
}

/// Discrete, exact: branch-and-bound over mode assignments (Theorem
/// 4). Budget trips return the anytime incumbent when one exists and
/// defer to the rounding approximation otherwise.
struct DiscreteBnb;

impl Algorithm for DiscreteBnb {
    fn name(&self) -> &'static str {
        "discrete-bnb"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        match ctx.model {
            EnergyModel::Discrete(modes) => bnb_tractable(ctx, modes.m()),
            _ => false,
        }
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Discrete(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        run_exact_bnb(ctx, modes, "discrete-bnb-par", "discrete-bnb-anytime")
    }
}

/// Discrete, approximate: Proposition 1(b) round-up of the boxed
/// Continuous relaxation.
struct DiscreteRoundUp;

impl Algorithm for DiscreteRoundUp {
    fn name(&self) -> &'static str {
        "discrete-round-up"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Discrete(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Discrete(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = discrete::round_up_prepared(
            ctx.prep,
            ctx.deadline,
            modes,
            ctx.power,
            Some(ctx.opts.precision_k),
        )?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}

/// Incremental, exact (opt-in): branch-and-bound on the materialized
/// grid.
struct IncrementalBnb;

impl Algorithm for IncrementalBnb {
    fn name(&self) -> &'static str {
        "incremental-bnb"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        match ctx.model {
            EnergyModel::Incremental(modes) => {
                ctx.opts.exact_incremental && bnb_tractable(ctx, modes.m())
            }
            _ => false,
        }
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Incremental(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        // Same search as `incremental::exact`: branch-and-bound over
        // the materialized grid.
        let grid = modes.to_discrete();
        run_exact_bnb(ctx, &grid, "incremental-bnb-par", "incremental-bnb-anytime")
    }
}

/// Incremental, approximate: the Theorem 5 rounding scheme.
struct IncrementalApprox;

impl Algorithm for IncrementalApprox {
    fn name(&self) -> &'static str {
        "incremental-approx"
    }
    fn applies(&self, ctx: &Ctx<'_>) -> bool {
        matches!(ctx.model, EnergyModel::Incremental(_))
    }
    fn run(&self, ctx: &Ctx<'_>) -> Result<Step, SolveError> {
        let EnergyModel::Incremental(modes) = ctx.model else {
            unreachable!("applies() gates on the model")
        };
        let speeds = incremental::approx_prepared(
            ctx.prep,
            ctx.deadline,
            modes,
            ctx.power,
            ctx.opts.precision_k,
        )?;
        Ok(Step::Solved(ctx.schedule_from_speeds(&speeds)))
    }
}
