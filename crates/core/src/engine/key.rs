//! Stable, **incrementally updatable** content keys for
//! `(graph, model)` instances.
//!
//! The service cache and [`super::Engine::solve_batch`] both need to
//! recognize "the same instance" across process boundaries and across
//! distinct allocations: two `.inst` files with identical content must
//! map to one [`taskgraph::PreparedGraph`]. Addresses can't do that,
//! and `std::hash::Hasher` implementations are explicitly not stable
//! across releases/processes — so this module fixes the function.
//!
//! Since protocol v2 the key must also support **patching**: a client
//! that edits a cached instance sends `(base_key, edits)` instead of
//! the whole graph, and the daemon re-keys the cache entry without
//! re-serializing anything. A sequential hash (the v1 FNV-over-stream)
//! cannot do that — changing one weight re-hashes everything after it.
//! The v2 key is therefore a **XOR of independent component terms**:
//!
//! ```text
//! key = size_term(n) ⊕ ⨁ᵢ weight_term(i, wᵢ) ⊕ ⨁₍ᵤ,ᵥ₎ edge_term(u, v)
//!       ⊕ model_term(model)
//! ```
//!
//! where each term is a full 128-bit FNV-1a over a short tagged byte
//! string. XOR is commutative, so edge order is canonicalized for
//! free, and each term is individually removable: a weight edit maps
//! to `key ⊕= old_term ⊕ new_term`, an edge insert/remove to a single
//! `⊕= edge_term` — see [`patched_key`]. Weight terms are tagged with
//! the task id, so two tasks swapping costs changes the key; duplicate
//! terms (which XOR would cancel) cannot occur because ids are unique
//! and [`taskgraph::TaskGraph`] collapses duplicate edges.
//!
//! Task **additions** append id `n` and leave every existing id alone,
//! so they patch incrementally too: swap the size term and XOR in the
//! new task's weight and incident-edge terms. Task **removals**
//! renumber every id above the removed task, which perturbs an
//! unbounded number of terms — [`patched_key`] reports those honestly
//! as non-incremental (`None`) and the caller re-keys with
//! [`content_key`] over the edited graph.
//!
//! 128 bits keep accidental collisions out of reach for any realistic
//! corpus; the cache treats the key as the identity and does not
//! re-verify content on hit.

use models::EnergyModel;
use taskgraph::edit::GraphEdit;
use taskgraph::TaskGraph;

/// 128-bit FNV-1a (offset basis / prime per the FNV reference).
#[derive(Debug, Clone)]
struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Component tags: every term hashes its tag first, so terms of
/// different kinds can never collide by having equal payload bytes.
const TAG_SIZE: u8 = 0xA0;
const TAG_WEIGHT: u8 = 0xA1;
const TAG_EDGE: u8 = 0xA2;
const TAG_MODEL: u8 = 0xA3;

impl Fnv128 {
    fn new(tag: u8) -> Self {
        let mut h = Fnv128(FNV128_OFFSET);
        h.byte(tag);
        h
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV128_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn size_term(n: usize) -> u128 {
    let mut h = Fnv128::new(TAG_SIZE);
    h.u64(n as u64);
    h.0
}

fn weight_term(task: usize, w: f64) -> u128 {
    let mut h = Fnv128::new(TAG_WEIGHT);
    h.u64(task as u64);
    h.f64(w);
    h.0
}

fn edge_term(u: usize, v: usize) -> u128 {
    let mut h = Fnv128::new(TAG_EDGE);
    h.u64(u as u64);
    h.u64(v as u64);
    h.0
}

fn model_term(model: &EnergyModel) -> u128 {
    let mut h = Fnv128::new(TAG_MODEL);
    match model {
        EnergyModel::Continuous { s_max: None } => h.byte(1),
        EnergyModel::Continuous { s_max: Some(m) } => {
            h.byte(2);
            h.f64(*m);
        }
        EnergyModel::Discrete(m) => {
            h.byte(3);
            for &s in m.speeds() {
                h.f64(s);
            }
        }
        EnergyModel::VddHopping(m) => {
            h.byte(4);
            for &s in m.speeds() {
                h.f64(s);
            }
        }
        EnergyModel::Incremental(m) => {
            h.byte(5);
            h.f64(m.s_min());
            h.f64(m.s_max());
            h.f64(m.delta());
        }
    }
    h.0
}

/// The graph-only part of the key (everything but the model term).
fn graph_key(g: &TaskGraph) -> u128 {
    let mut key = size_term(g.n());
    for (i, &w) in g.weights().iter().enumerate() {
        key ^= weight_term(i, w);
    }
    for &(u, v) in g.edges() {
        key ^= edge_term(u.index(), v.index());
    }
    key
}

/// The stable content key of one `(graph, model)` instance (see the
/// module docs for the construction). Equal content ⇒ equal key, in
/// every process, on every platform; edge order is irrelevant by
/// construction.
pub fn content_key(g: &TaskGraph, model: &EnergyModel) -> u128 {
    graph_key(g) ^ model_term(model)
}

/// Update `base` — the [`content_key`] of `(old, model)` for **any**
/// model — to the key of the edited instance, touching only the terms
/// the edits name. `O(edits)`, independent of graph size.
///
/// Returns `None` only for [`GraphEdit::RemoveTask`]: removal
/// renumbers every id above the removed task, so the honest move is a
/// full [`content_key`] over the edited graph, not a delta.
/// [`GraphEdit::AddTask`] appends id `n` without disturbing existing
/// ids and patches incrementally like everything else.
///
/// Edits must be valid for `old` (the caller has already applied them
/// via [`taskgraph::PreparedInstance::apply`] or
/// [`taskgraph::edit::apply_edits`], which validates); an edit batch
/// this function accepts yields exactly
/// `content_key(edited, model)`:
///
/// ```
/// use models::EnergyModel;
/// use reclaim_core::engine::{content_key, patched_key};
/// use taskgraph::edit::{apply_edits, GraphEdit};
/// use taskgraph::TaskGraph;
///
/// let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
/// let m = EnergyModel::continuous_unbounded();
/// let edits = [GraphEdit::SetWeight { task: 1, weight: 3.5 }];
/// let (edited, _) = apply_edits(&g, &edits).unwrap();
/// let patched = patched_key(content_key(&g, &m), &g, &edits).unwrap();
/// assert_eq!(patched, content_key(&edited, &m));
/// ```
pub fn patched_key(base: u128, old: &TaskGraph, edits: &[GraphEdit]) -> Option<u128> {
    let mut key = base;
    // Weights/edges as the delta walks the batch (edits see the state
    // left by their predecessors, exactly like `apply_edits`).
    let mut weights: Vec<f64> = old.weights().to_vec();
    let mut edges: Vec<(usize, usize)> = old.edges().iter().map(|&(u, v)| (u.0, v.0)).collect();
    for edit in edits {
        match edit {
            GraphEdit::SetWeight { task, weight } => {
                key ^= weight_term(*task, *weights.get(*task)?);
                key ^= weight_term(*task, *weight);
                weights[*task] = *weight;
            }
            GraphEdit::InsertEdge { from, to } => {
                if !edges.contains(&(*from, *to)) {
                    key ^= edge_term(*from, *to);
                    edges.push((*from, *to));
                }
            }
            GraphEdit::RemoveEdge { from, to } => {
                let pos = edges.iter().position(|e| e == &(*from, *to))?;
                edges.remove(pos);
                key ^= edge_term(*from, *to);
            }
            GraphEdit::AddTask {
                weight,
                preds,
                succs,
            } => {
                let n = weights.len();
                key ^= size_term(n);
                key ^= size_term(n + 1);
                key ^= weight_term(n, *weight);
                weights.push(*weight);
                // Mirror `apply_edits` / `TaskGraph::new`: duplicate
                // entries in preds/succs collapse to one edge (and one
                // term — a repeated XOR would cancel itself out).
                for e in preds
                    .iter()
                    .map(|&p| (p, n))
                    .chain(succs.iter().map(|&s| (n, s)))
                {
                    if !edges.contains(&e) {
                        key ^= edge_term(e.0, e.1);
                        edges.push(e);
                    }
                }
            }
            GraphEdit::RemoveTask { .. } => return None,
        }
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::DiscreteModes;
    use taskgraph::edit::apply_edits;

    fn modes() -> DiscreteModes {
        DiscreteModes::new(&[1.0, 2.0]).unwrap()
    }

    #[test]
    fn identical_content_same_key_across_allocations() {
        let a = TaskGraph::new(vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]).unwrap();
        let b = TaskGraph::new(vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        assert_eq!(content_key(&a, &m), content_key(&b, &m));
    }

    #[test]
    fn edge_order_is_canonicalized() {
        let a = TaskGraph::new(vec![1.0, 1.0, 1.0], &[(0, 1), (0, 2)]).unwrap();
        let b = TaskGraph::new(vec![1.0, 1.0, 1.0], &[(0, 2), (0, 1)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        assert_eq!(content_key(&a, &m), content_key(&b, &m));
    }

    #[test]
    fn every_component_feeds_the_key() {
        let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        let base = content_key(&g, &EnergyModel::continuous_unbounded());
        // Different weights.
        let g2 = TaskGraph::new(vec![1.0, 2.5], &[(0, 1)]).unwrap();
        assert_ne!(content_key(&g2, &EnergyModel::continuous_unbounded()), base);
        // Different edges.
        let g3 = TaskGraph::new(vec![1.0, 2.0], &[]).unwrap();
        assert_ne!(content_key(&g3, &EnergyModel::continuous_unbounded()), base);
        // Different model kind / parameters.
        assert_ne!(content_key(&g, &EnergyModel::continuous(2.0)), base);
        assert_ne!(content_key(&g, &EnergyModel::Discrete(modes())), base);
        assert_ne!(content_key(&g, &EnergyModel::VddHopping(modes())), base);
        // Discrete and Vdd-Hopping over the same ladder must differ.
        assert_ne!(
            content_key(&g, &EnergyModel::Discrete(modes())),
            content_key(&g, &EnergyModel::VddHopping(modes()))
        );
    }

    #[test]
    fn swapped_weights_change_the_key() {
        // XOR terms are id-tagged: two tasks exchanging costs is a
        // different instance, not a cancellation.
        let a = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        let b = TaskGraph::new(vec![2.0, 1.0], &[(0, 1)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        assert_ne!(content_key(&a, &m), content_key(&b, &m));
    }

    #[test]
    fn key_is_pinned() {
        // The key is part of the wire/cache contract: a change to the
        // construction is a protocol break and must be deliberate.
        // (Deliberately changed in protocol v2: the v1 sequential FNV
        // could not be patched incrementally.)
        let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        assert_eq!(
            content_key(&g, &EnergyModel::continuous_unbounded()),
            0x36bd_06bc_a277_3179_37d0_2054_da46_d064_u128,
        );
    }

    #[test]
    fn patched_key_matches_full_rehash() {
        let g =
            TaskGraph::new(vec![1.0, 2.0, 3.0, 4.0], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let models = [
            EnergyModel::continuous_unbounded(),
            EnergyModel::VddHopping(modes()),
        ];
        let batches: Vec<Vec<GraphEdit>> = vec![
            vec![GraphEdit::SetWeight {
                task: 1,
                weight: 9.0,
            }],
            vec![
                GraphEdit::SetWeight {
                    task: 0,
                    weight: 0.5,
                },
                GraphEdit::InsertEdge { from: 1, to: 2 },
            ],
            vec![
                GraphEdit::RemoveEdge { from: 0, to: 2 },
                GraphEdit::InsertEdge { from: 0, to: 2 }, // net no-op
            ],
        ];
        for m in &models {
            let base = content_key(&g, m);
            for edits in &batches {
                let (edited, _) = apply_edits(&g, edits).unwrap();
                assert_eq!(
                    patched_key(base, &g, edits),
                    Some(content_key(&edited, m)),
                    "delta diverged for {edits:?}"
                );
            }
        }
        // Inserting an existing edge is a no-op for the key too.
        let noop = [GraphEdit::InsertEdge { from: 0, to: 1 }];
        let m = &models[0];
        assert_eq!(
            patched_key(content_key(&g, m), &g, &noop),
            Some(content_key(&g, m))
        );
    }

    #[test]
    fn add_task_patches_incrementally() {
        let g = TaskGraph::new(vec![1.0, 2.0, 3.0], &[(0, 1), (0, 2)]).unwrap();
        let m = EnergyModel::VddHopping(modes());
        let base = content_key(&g, &m);
        let batches: Vec<Vec<GraphEdit>> = vec![
            vec![GraphEdit::AddTask {
                weight: 4.0,
                preds: vec![1, 2],
                succs: vec![],
            }],
            // Duplicate pred entries collapse to one edge (and one
            // key term), like TaskGraph::new.
            vec![GraphEdit::AddTask {
                weight: 4.0,
                preds: vec![1, 1],
                succs: vec![],
            }],
            // Two additions in one batch: the second sees n + 1.
            vec![
                GraphEdit::AddTask {
                    weight: 4.0,
                    preds: vec![2],
                    succs: vec![],
                },
                GraphEdit::AddTask {
                    weight: 0.5,
                    preds: vec![3],
                    succs: vec![],
                },
                GraphEdit::SetWeight {
                    task: 3,
                    weight: 6.0,
                },
            ],
        ];
        for edits in &batches {
            let (edited, _) = apply_edits(&g, edits).unwrap();
            assert_eq!(
                patched_key(base, &g, edits),
                Some(content_key(&edited, &m)),
                "delta diverged for {edits:?}"
            );
        }
    }

    #[test]
    fn task_removal_is_not_incremental() {
        let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        let base = content_key(&g, &m);
        let edits = vec![GraphEdit::RemoveTask { task: 0 }];
        assert_eq!(patched_key(base, &g, &edits), None);
        // The fallback — a full rehash of the edited graph — still
        // works and differs from the base.
        let (edited, _) = apply_edits(&g, &edits).unwrap();
        assert_ne!(content_key(&edited, &m), base);
    }
}
