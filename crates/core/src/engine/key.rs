//! Stable content keys for `(graph, model)` instances.
//!
//! The service cache and [`super::Engine::solve_batch`] both need to
//! recognize "the same instance" across process boundaries and across
//! distinct allocations: two `.inst` files with identical content must
//! map to one [`taskgraph::PreparedGraph`]. Addresses can't do that,
//! and `std::hash::Hasher` implementations are explicitly not stable
//! across releases/processes — so this module fixes the function:
//! **128-bit FNV-1a** over a canonical byte serialization of the
//! instance.
//!
//! Canonicalization:
//!
//! * task weights in id order, as IEEE-754 bit patterns (so `-0.0` and
//!   `0.0` differ — weights are validated positive anyway, and bitwise
//!   identity is exactly "same file content");
//! * the edge list **sorted** — two files listing the same precedence
//!   edges in different order describe the same instance and share a
//!   key (adjacency order can steer which of several equally optimal
//!   schedules a solver returns, but never the optimal energy);
//! * a model tag byte plus the model's parameters, again as bit
//!   patterns.
//!
//! 128 bits of FNV keep accidental collisions out of reach for any
//! realistic corpus; the cache treats the key as the identity and does
//! not re-verify content on hit.

use models::EnergyModel;
use taskgraph::TaskGraph;

/// 128-bit FNV-1a (offset basis / prime per the FNV reference).
#[derive(Debug, Clone)]
struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV128_PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// The stable content key of one `(graph, model)` instance (see the
/// module docs for the canonical form). Equal content ⇒ equal key, in
/// every process, on every platform.
pub fn content_key(g: &TaskGraph, model: &EnergyModel) -> u128 {
    let mut h = Fnv128::new();
    h.u64(g.n() as u64);
    for &w in g.weights() {
        h.f64(w);
    }
    let mut edges: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .map(|&(u, v)| (u.index(), v.index()))
        .collect();
    edges.sort_unstable();
    h.u64(edges.len() as u64);
    for (u, v) in edges {
        h.u64(u as u64);
        h.u64(v as u64);
    }
    match model {
        EnergyModel::Continuous { s_max: None } => h.byte(1),
        EnergyModel::Continuous { s_max: Some(m) } => {
            h.byte(2);
            h.f64(*m);
        }
        EnergyModel::Discrete(m) => {
            h.byte(3);
            for &s in m.speeds() {
                h.f64(s);
            }
        }
        EnergyModel::VddHopping(m) => {
            h.byte(4);
            for &s in m.speeds() {
                h.f64(s);
            }
        }
        EnergyModel::Incremental(m) => {
            h.byte(5);
            h.f64(m.s_min());
            h.f64(m.s_max());
            h.f64(m.delta());
        }
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::DiscreteModes;

    fn modes() -> DiscreteModes {
        DiscreteModes::new(&[1.0, 2.0]).unwrap()
    }

    #[test]
    fn identical_content_same_key_across_allocations() {
        let a = TaskGraph::new(vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]).unwrap();
        let b = TaskGraph::new(vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        assert_eq!(content_key(&a, &m), content_key(&b, &m));
    }

    #[test]
    fn edge_order_is_canonicalized() {
        let a = TaskGraph::new(vec![1.0, 1.0, 1.0], &[(0, 1), (0, 2)]).unwrap();
        let b = TaskGraph::new(vec![1.0, 1.0, 1.0], &[(0, 2), (0, 1)]).unwrap();
        let m = EnergyModel::continuous_unbounded();
        assert_eq!(content_key(&a, &m), content_key(&b, &m));
    }

    #[test]
    fn every_component_feeds_the_key() {
        let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        let base = content_key(&g, &EnergyModel::continuous_unbounded());
        // Different weights.
        let g2 = TaskGraph::new(vec![1.0, 2.5], &[(0, 1)]).unwrap();
        assert_ne!(content_key(&g2, &EnergyModel::continuous_unbounded()), base);
        // Different edges.
        let g3 = TaskGraph::new(vec![1.0, 2.0], &[]).unwrap();
        assert_ne!(content_key(&g3, &EnergyModel::continuous_unbounded()), base);
        // Different model kind / parameters.
        assert_ne!(content_key(&g, &EnergyModel::continuous(2.0)), base);
        assert_ne!(content_key(&g, &EnergyModel::Discrete(modes())), base);
        assert_ne!(content_key(&g, &EnergyModel::VddHopping(modes())), base);
        // Discrete and Vdd-Hopping over the same ladder must differ.
        assert_ne!(
            content_key(&g, &EnergyModel::Discrete(modes())),
            content_key(&g, &EnergyModel::VddHopping(modes()))
        );
    }

    #[test]
    fn key_is_pinned() {
        // The key is part of the wire/cache contract: a change to the
        // canonical form is a protocol break and must be deliberate.
        let g = TaskGraph::new(vec![1.0, 2.0], &[(0, 1)]).unwrap();
        assert_eq!(
            content_key(&g, &EnergyModel::continuous_unbounded()),
            0xb45a_05dd_4e23_6a1a_943e_eefc_db0f_d51d_u128,
        );
    }
}
