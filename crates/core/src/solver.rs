//! Unified entry point: dispatch `MinEnergy(Ĝ, D)` on the energy
//! model and the detected graph shape.
//!
//! [`solve`] and [`solve_with`] are thin compatibility wrappers over
//! the [`crate::engine`]: they prepare the graph transiently and run
//! one dispatch through the algorithm registry. Callers that solve
//! the same graph repeatedly should hold a
//! [`taskgraph::PreparedGraph`] and an [`crate::engine::Engine`]
//! instead, so the analysis is paid once.

use crate::error::SolveError;
use models::{EnergyModel, PowerLaw, Schedule};
use taskgraph::TaskGraph;

/// A solved instance: the schedule plus its bookkeeping.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The feasible (validated) schedule.
    pub schedule: Schedule,
    /// Total dynamic energy of the schedule.
    pub energy: f64,
    /// Which algorithm produced it (for reporting).
    pub algorithm: &'static str,
}

/// Tuning knobs for [`solve_with`].
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Precision parameter `K` for the approximation algorithms
    /// (Theorem 5 / Proposition 1).
    pub precision_k: u32,
    /// Largest task count for which the Discrete model is solved
    /// exactly by branch-and-bound; beyond it the Proposition 1(b)
    /// rounding is used (Theorem 4: exact is NP-hard).
    pub exact_discrete_limit: usize,
    /// Solve Incremental exactly (branch-and-bound on the grid)
    /// instead of the Theorem 5 approximation, subject to the same
    /// task-count limit.
    pub exact_incremental: bool,
    /// When an exact search runs in parallel (an
    /// [`crate::engine::Engine`] with `threads ≥ 2`), race
    /// heterogeneous portfolio arms (warm/slowest-first vs.
    /// cold/fastest-first) instead of the deterministic partition
    /// sweep. Values stay exact; node counts stop being reproducible
    /// (see [`crate::engine::par_bnb`]).
    pub bnb_racing: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            precision_k: 10_000,
            exact_discrete_limit: 24,
            exact_incremental: false,
            bnb_racing: false,
        }
    }
}

/// Solve `MinEnergy(Ĝ, D)` under the given model with default options.
///
/// * Continuous → exact closed form when the shape allows (Theorems 1
///   and 2), otherwise the geometric program (§2.1);
/// * Vdd-Hopping → the Theorem 3 LP (exact, polynomial);
/// * Discrete → exact branch-and-bound up to
///   [`SolveOptions::exact_discrete_limit`] tasks, then the
///   Proposition 1(b) rounding approximation;
/// * Incremental → the Theorem 5 approximation (exact on request via
///   [`SolveOptions::exact_incremental`]).
///
/// The returned schedule is always validated against the model and
/// deadline before being handed back.
///
/// ```
/// use models::{EnergyModel, PowerLaw};
/// use taskgraph::TaskGraph;
///
/// // A two-task chain with 6 units of work and deadline 3:
/// // the optimum runs both tasks at speed 2 → energy 2²·6 = 24.
/// let g = TaskGraph::new(vec![2.0, 4.0], &[(0, 1)]).unwrap();
/// let sol = reclaim_core::solve(
///     &g, 3.0, &EnergyModel::continuous_unbounded(), PowerLaw::CUBIC,
/// ).unwrap();
/// assert!((sol.energy - 24.0).abs() < 1e-9);
/// ```
pub fn solve(
    g: &TaskGraph,
    deadline: f64,
    model: &EnergyModel,
    p: PowerLaw,
) -> Result<Solution, SolveError> {
    solve_with(g, deadline, model, p, SolveOptions::default())
}

/// [`solve`] with explicit options.
pub fn solve_with(
    g: &TaskGraph,
    deadline: f64,
    model: &EnergyModel,
    p: PowerLaw,
    opts: SolveOptions,
) -> Result<Solution, SolveError> {
    crate::engine::Engine::with_options(p, opts).solve_graph(g, model, deadline)
}

/// The seed's hand-rolled `match` dispatcher, retained verbatim as a
/// differential-testing oracle for the engine (see the
/// `engine_equivalence` property suite). Not part of the public API.
#[doc(hidden)]
pub mod reference {
    use super::*;
    use crate::{continuous, discrete, incremental, vdd};

    /// The pre-engine dispatch of [`solve_with`].
    pub fn solve_with(
        g: &TaskGraph,
        deadline: f64,
        model: &EnergyModel,
        p: PowerLaw,
        opts: SolveOptions,
    ) -> Result<Solution, SolveError> {
        let (schedule, algorithm) = match model {
            EnergyModel::Continuous { s_max } => {
                let speeds = continuous::solve(g, deadline, *s_max, p, None)?;
                (Schedule::asap_from_speeds(g, &speeds), "continuous")
            }
            EnergyModel::VddHopping(modes) => (vdd::solve_lp(g, deadline, modes, p)?, "vdd-lp"),
            EnergyModel::Discrete(modes) => {
                // Exact only when the search space is plausibly tractable
                // (Theorem 4: it is exponential); if the node budget still
                // trips, return the anytime incumbent when the search holds
                // one, and degrade gracefully to the Proposition 1(b)
                // rounding otherwise.
                let tractable = g.n() <= opts.exact_discrete_limit
                    && (modes.m() as f64).powi(g.n() as i32) <= 5e9;
                let exact_result = if tractable {
                    match discrete::exact(g, deadline, modes, p) {
                        Ok(sol) => Some(sol),
                        // Budget trip with no incumbent.
                        Err(SolveError::BudgetExhausted { .. }) => None,
                        Err(e) => return Err(e),
                    }
                } else {
                    None
                };
                match exact_result {
                    Some(sol) => (
                        Schedule::asap_from_speeds(g, &sol.speeds),
                        if sol.complete {
                            "discrete-bnb"
                        } else {
                            "discrete-bnb-anytime"
                        },
                    ),
                    None => {
                        let speeds =
                            discrete::round_up(g, deadline, modes, p, Some(opts.precision_k))?;
                        (Schedule::asap_from_speeds(g, &speeds), "discrete-round-up")
                    }
                }
            }
            EnergyModel::Incremental(modes) => {
                let tractable = g.n() <= opts.exact_discrete_limit
                    && (modes.m() as f64).powi(g.n() as i32) <= 5e9;
                let exact_result = if opts.exact_incremental && tractable {
                    match incremental::exact(g, deadline, modes, p) {
                        Ok(sol) => Some(sol),
                        Err(SolveError::BudgetExhausted { .. }) => None,
                        Err(e) => return Err(e),
                    }
                } else {
                    None
                };
                match exact_result {
                    Some(sol) => (
                        Schedule::asap_from_speeds(g, &sol.speeds),
                        if sol.complete {
                            "incremental-bnb"
                        } else {
                            "incremental-bnb-anytime"
                        },
                    ),
                    None => {
                        let speeds = incremental::approx(g, deadline, modes, p, opts.precision_k)?;
                        (Schedule::asap_from_speeds(g, &speeds), "incremental-approx")
                    }
                }
            }
        };
        schedule
            .validate(g, model, deadline)
            .map_err(|e| SolveError::Numerical(format!("produced schedule invalid: {e}")))?;
        let energy = schedule.energy(g, p);
        Ok(Solution {
            schedule,
            energy,
            algorithm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{DiscreteModes, IncrementalModes};
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn model_dominance_on_diamond() {
        // E_continuous ≤ E_vdd ≤ E_discrete and E_incremental-exact ≥
        // E_vdd(grid): the paper's whole point, checked end to end.
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let d = 5.0;
        let ms = DiscreteModes::new(&[0.8, 1.6, 2.4]).unwrap();
        let inc = IncrementalModes::new(0.8, 2.4, 0.8).unwrap();

        let e_cont = solve(&g, d, &EnergyModel::continuous(2.4), P)
            .unwrap()
            .energy;
        let e_vdd = solve(&g, d, &EnergyModel::VddHopping(ms.clone()), P)
            .unwrap()
            .energy;
        let e_disc = solve(&g, d, &EnergyModel::Discrete(ms), P).unwrap().energy;
        let e_inc = solve_with(
            &g,
            d,
            &EnergyModel::Incremental(inc),
            P,
            SolveOptions {
                exact_incremental: true,
                ..Default::default()
            },
        )
        .unwrap()
        .energy;

        let tol = 1.0 + 1e-6;
        assert!(e_cont <= e_vdd * tol, "cont {e_cont} vs vdd {e_vdd}");
        assert!(e_vdd <= e_disc * tol, "vdd {e_vdd} vs disc {e_disc}");
        // The incremental grid here equals the discrete mode set, so
        // the exact optima coincide.
        assert!((e_inc - e_disc).abs() < 1e-6 * e_disc);
    }

    #[test]
    fn every_model_returns_validated_schedules() {
        let g = generators::fork_join(1.0, &[2.0, 3.0, 1.0], 1.5);
        let d = 6.0;
        let ms = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0]).unwrap();
        let inc = IncrementalModes::new(0.5, 2.0, 0.25).unwrap();
        for model in [
            EnergyModel::continuous_unbounded(),
            EnergyModel::continuous(2.0),
            EnergyModel::VddHopping(ms.clone()),
            EnergyModel::Discrete(ms),
            EnergyModel::Incremental(inc),
        ] {
            let sol =
                solve(&g, d, &model, P).unwrap_or_else(|e| panic!("{} failed: {e}", model.name()));
            assert!(sol.energy > 0.0);
            assert!(sol.schedule.makespan(&g) <= d * (1.0 + 1e-6));
        }
    }

    #[test]
    fn discrete_falls_back_to_rounding_beyond_limit() {
        let g = generators::chain(&[1.0, 2.0, 1.0]);
        let ms = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let opts = SolveOptions {
            exact_discrete_limit: 2,
            ..Default::default()
        };
        let sol = solve_with(&g, 3.0, &EnergyModel::Discrete(ms), P, opts).unwrap();
        assert_eq!(sol.algorithm, "discrete-round-up");
    }

    #[test]
    fn infeasible_instances_error_for_all_models() {
        let g = generators::chain(&[10.0]);
        let ms = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let inc = IncrementalModes::new(1.0, 2.0, 0.5).unwrap();
        for model in [
            EnergyModel::continuous(2.0),
            EnergyModel::VddHopping(ms.clone()),
            EnergyModel::Discrete(ms),
            EnergyModel::Incremental(inc),
        ] {
            assert!(
                matches!(
                    solve(&g, 4.0, &model, P),
                    Err(SolveError::Infeasible { .. })
                ),
                "{} should be infeasible",
                model.name()
            );
        }
    }
}
