//! Solution certification utilities.
//!
//! The continuous optimum on general DAGs is numerical (§2.1: the
//! exact speeds are irrational), so besides the barrier's duality-gap
//! bound we provide *independent* evidence of optimality:
//!
//! * [`local_optimality_probe`] — randomized first-order check: no
//!   feasible redistribution of durations among a random pair of
//!   tasks lowers the energy (convexity makes pairwise exchanges a
//!   strong probe: any strictly better feasible point induces a
//!   strictly improving two-task move along the segment towards it
//!   whenever the schedule graph permits it);
//! * [`lower_bound_bundle`] — the cheap certified lower bounds every
//!   solution can be compared against (independent-tasks bound and
//!   heaviest-path bound).

use models::PowerLaw;
use rand::Rng;
use taskgraph::analysis::{earliest_completion, latest_completion};
use taskgraph::TaskGraph;

/// Cheap certified lower bounds on `MinEnergy(Ĝ, D)` under the
/// Continuous model (no `s_max`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBounds {
    /// Precedence-relaxed: each task alone in the whole window,
    /// `Σ w_i^α / D^{α−1}`.
    pub independent_tasks: f64,
    /// Heaviest path as a chain: `(max_path Σ w)^α / D^{α−1}`
    /// (dominates the single-task part of the other bound on chains).
    pub critical_path: f64,
}

impl LowerBounds {
    /// The better (larger) of the two bounds.
    pub fn best(&self) -> f64 {
        self.independent_tasks.max(self.critical_path)
    }
}

/// Compute the certified lower bounds.
pub fn lower_bound_bundle(g: &TaskGraph, deadline: f64, p: PowerLaw) -> LowerBounds {
    let independent: f64 = g
        .weights()
        .iter()
        .map(|&w| p.energy_for_work(w, deadline))
        .sum();
    let cp = taskgraph::analysis::critical_path_weight(g);
    LowerBounds {
        independent_tasks: independent,
        critical_path: p.energy_for_work(cp, deadline),
    }
}

/// Randomized first-order optimality probe.
///
/// Two move families are tried against the claimed-optimal durations
/// `d_i = w_i / s_i`:
///
/// * **grow** — lengthen a single task by `ε` (always lowers its
///   energy; feasible only if the schedule has slack for it — an
///   optimal solution leaves no such slack);
/// * **exchange** — shift `ε` of duration between a random task pair
///   (catches misbalanced splits along chains, where slacks are tight
///   but the division is wrong).
///
/// Returns the number of strictly improving feasible moves found —
/// `0` for an optimal solution (up to `tol`).
#[allow(clippy::too_many_arguments)] // a knob bundle would obscure the probe's call sites
pub fn local_optimality_probe<R: Rng>(
    g: &TaskGraph,
    speeds: &[f64],
    deadline: f64,
    p: PowerLaw,
    trials: usize,
    epsilon: f64,
    tol: f64,
    rng: &mut R,
) -> usize {
    assert_eq!(speeds.len(), g.n());
    let n = g.n();
    if n < 2 {
        return 0;
    }
    let durations: Vec<f64> = g
        .weights()
        .iter()
        .zip(speeds)
        .map(|(&w, &s)| w / s)
        .collect();
    let base_energy: f64 = g
        .weights()
        .iter()
        .zip(&durations)
        .map(|(&w, &d)| p.energy_for_work(w, d))
        .sum();
    let is_feasible = |cand: &[f64]| -> bool {
        let ecl = earliest_completion(g, cand);
        let lcl = latest_completion(g, cand, deadline);
        ecl.iter()
            .zip(&lcl)
            .all(|(e, l)| *e <= *l + 1e-12 * (1.0 + l.abs()))
            && ecl.iter().all(|e| *e <= deadline * (1.0 + 1e-12))
    };
    let energy_of = |cand: &[f64]| -> f64 {
        g.weights()
            .iter()
            .zip(cand)
            .map(|(&w, &d)| p.energy_for_work(w, d))
            .sum()
    };
    let mut violations = 0;
    for _ in 0..trials {
        // Grow move: lengthen one task.
        let k = rng.gen_range(0..n);
        let mut grown = durations.clone();
        grown[k] += epsilon;
        if is_feasible(&grown) && energy_of(&grown) < base_energy * (1.0 - tol) {
            violations += 1;
        }
        // Exchange move between a random pair.
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if i == j {
            j = (j + 1) % n;
        }
        for (a, b) in [(i, j), (j, i)] {
            let mut cand = durations.clone();
            if cand[a] <= epsilon * 2.0 {
                continue;
            }
            cand[a] -= epsilon;
            cand[b] += epsilon;
            if is_feasible(&cand) && energy_of(&cand) < base_energy * (1.0 - tol) {
                violations += 1;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn optimal_solutions_pass_the_probe() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let d = 5.0;
        let speeds = continuous::solve(&g, d, None, P, None).unwrap();
        let bad = local_optimality_probe(&g, &speeds, d, P, 300, 1e-3, 1e-5, &mut rng);
        assert_eq!(bad, 0, "optimal solution admits improving moves");
    }

    #[test]
    fn suboptimal_solutions_fail_the_probe() {
        let mut rng = StdRng::seed_from_u64(6);
        // Uniform-speed schedule on a diamond is suboptimal (the light
        // branch should run slower).
        let g = generators::diamond([1.0, 1.0, 8.0, 1.0]);
        let d = 20.0;
        let s_uniform = taskgraph::analysis::critical_path_weight(&g) / d;
        let speeds = vec![s_uniform; 4];
        let bad = local_optimality_probe(&g, &speeds, d, P, 300, 1e-2, 1e-5, &mut rng);
        assert!(bad > 0, "probe must detect the obvious improvement");
    }

    #[test]
    fn lower_bounds_bracket_the_optimum() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let d = 5.0;
        let lb = lower_bound_bundle(&g, d, P);
        let speeds = continuous::solve(&g, d, None, P, None).unwrap();
        let e = continuous::energy_of_speeds(&g, &speeds, P);
        assert!(lb.best() <= e * (1.0 + 1e-9));
        assert!(lb.independent_tasks > 0.0 && lb.critical_path > 0.0);
        // On a chain, the critical-path bound is *tight*.
        let chain = generators::chain(&[1.0, 2.0, 3.0]);
        let lc = lower_bound_bundle(&chain, 3.0, P);
        let e_chain = continuous::energy_of_speeds(
            &chain,
            &continuous::solve_chain(&chain, 3.0, None).unwrap(),
            P,
        );
        assert!((lc.critical_path - e_chain).abs() < 1e-9 * e_chain);
        assert!((lc.best() - e_chain).abs() < 1e-9 * e_chain);
    }

    #[test]
    fn single_task_probe_is_trivial() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::chain(&[2.0]);
        assert_eq!(
            local_optimality_probe(&g, &[1.0], 2.0, P, 50, 1e-3, 1e-6, &mut rng),
            0
        );
    }
}
