//! The bicriteria view: the paper minimizes energy under a deadline;
//! this module answers the inverse question — the smallest deadline
//! achievable within an **energy budget** — which traces the same
//! Pareto front from the other axis.
//!
//! For unbounded Continuous speeds the scaling law
//! `E*(D) = E*(1)/D^{α−1}` gives a closed form; every other model is
//! handled by bisection over the (monotone) energy–deadline curve.

use crate::engine::Engine;
use crate::error::SolveError;
use models::{EnergyModel, PowerLaw};
use taskgraph::{PreparedGraph, TaskGraph};

/// Energy a bounded-speed model can never go below (every task at the
/// slowest admissible speed), or `None` for unbounded Continuous
/// (energy → 0 as D → ∞).
pub fn energy_floor(g: &TaskGraph, model: &EnergyModel, p: PowerLaw) -> Option<f64> {
    model
        .bottom_speed()
        .map(|s1| g.weights().iter().map(|&w| p.energy_at_speed(w, s1)).sum())
}

/// Smallest deadline whose optimal energy is at most `budget`
/// (relative precision `tol`).
///
/// Errors: `Infeasible` when even `D → ∞` cannot meet the budget
/// (the model's energy floor exceeds it), `Unsupported` for a
/// non-positive budget.
pub fn min_deadline_for_budget(
    g: &TaskGraph,
    model: &EnergyModel,
    p: PowerLaw,
    budget: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if !(budget > 0.0 && budget.is_finite()) {
        return Err(SolveError::Unsupported(format!(
            "invalid energy budget {budget}"
        )));
    }
    if let Some(floor) = energy_floor(g, model, p) {
        if budget < floor * (1.0 - 1e-12) {
            return Err(SolveError::Infeasible {
                deadline: f64::INFINITY,
                min_makespan: f64::INFINITY,
            });
        }
    }
    // One prepared graph for the whole bracket-and-bisect: the
    // analysis (topo order, shape, SP tree, critical path) is shared
    // by every probe solve instead of being re-derived dozens of
    // times.
    let engine = Engine::new(p);
    let prep = PreparedGraph::new(g);
    let solve = |d: f64| engine.solve(&prep, model, d).map(|s| s.energy);
    let cp = prep.critical_path_weight();

    // Closed form for unbounded Continuous: E(D) = E(cp)·(cp/D)^{α−1}.
    if matches!(model, EnergyModel::Continuous { s_max: None }) {
        let e_ref = solve(cp)?;
        let d = cp * (e_ref / budget).powf(1.0 / (p.alpha() - 1.0));
        return Ok(d);
    }

    // Bracket: lo = minimum feasible deadline; grow hi until the
    // budget is met.
    let s_top = model.top_speed().expect("bounded models have a top speed");
    let mut lo = cp / s_top * (1.0 + 1e-9);
    let e_lo = solve(lo)?;
    if e_lo <= budget {
        return Ok(lo);
    }
    let mut hi = lo * 2.0;
    let mut e_hi = solve(hi)?;
    let mut grow = 0;
    while e_hi > budget {
        hi *= 2.0;
        e_hi = solve(hi)?;
        grow += 1;
        if grow > 60 {
            return Err(SolveError::Infeasible {
                deadline: f64::INFINITY,
                min_makespan: f64::INFINITY,
            });
        }
    }
    // Bisection on the monotone curve.
    for _ in 0..100 {
        if (hi - lo) <= tol * hi {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let e_mid = solve(mid)?;
        if e_mid <= budget {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use models::DiscreteModes;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    #[test]
    fn continuous_closed_form_roundtrip() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let model = EnergyModel::continuous_unbounded();
        // Pick a deadline, get its energy, invert it.
        let d0 = 10.0;
        let e0 = solve(&g, d0, &model, P).unwrap().energy;
        let d = min_deadline_for_budget(&g, &model, P, e0, 1e-9).unwrap();
        assert!((d - d0).abs() < 1e-6 * d0, "{d} vs {d0}");
    }

    #[test]
    fn bounded_models_bisect_to_budget() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.0]);
        let modes = DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
        for model in [
            EnergyModel::continuous(2.0),
            EnergyModel::VddHopping(modes.clone()),
            EnergyModel::Discrete(modes),
        ] {
            let d_probe = 8.0;
            let e_probe = solve(&g, d_probe, &model, P).unwrap().energy;
            let budget = e_probe * 1.05;
            let d = min_deadline_for_budget(&g, &model, P, budget, 1e-6).unwrap();
            // The returned deadline's energy respects the budget...
            let e = solve(&g, d, &model, P).unwrap().energy;
            assert!(
                e <= budget * (1.0 + 1e-6),
                "{}: {e} > {budget}",
                model.name()
            );
            // ...and it is no looser than the probe deadline.
            assert!(
                d <= d_probe * (1.0 + 1e-6),
                "{}: {d} > {d_probe}",
                model.name()
            );
        }
    }

    #[test]
    fn budget_below_floor_is_infeasible() {
        let g = generators::chain(&[2.0, 2.0]);
        let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
        let model = EnergyModel::Discrete(modes.clone());
        let floor = energy_floor(&g, &model, P).unwrap();
        assert!((floor - 4.0).abs() < 1e-12); // 1²·4
        assert!(matches!(
            min_deadline_for_budget(&g, &model, P, floor * 0.9, 1e-6),
            Err(SolveError::Infeasible { .. })
        ));
        // Exactly the floor is reachable (loose deadline).
        let d = min_deadline_for_budget(&g, &model, P, floor * 1.0001, 1e-6).unwrap();
        let e = solve(&g, d, &model, P).unwrap().energy;
        assert!(e <= floor * 1.001);
    }

    #[test]
    fn generous_budget_returns_min_makespan() {
        let g = generators::chain(&[2.0, 2.0]);
        let model = EnergyModel::continuous(2.0);
        let d = min_deadline_for_budget(&g, &model, P, 1e9, 1e-9).unwrap();
        assert!((d - 2.0).abs() < 1e-6, "{d}"); // total 4 / s_max 2
    }

    #[test]
    fn invalid_budget_rejected() {
        let g = generators::chain(&[1.0]);
        let model = EnergyModel::continuous_unbounded();
        assert!(min_deadline_for_budget(&g, &model, P, -1.0, 1e-6).is_err());
        assert!(min_deadline_for_budget(&g, &model, P, f64::NAN, 1e-6).is_err());
    }
}
