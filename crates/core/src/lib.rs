//! # reclaim-core — MinEnergy(Ĝ, D) solvers
//!
//! The paper's contribution: given a frozen execution graph `Ĝ` and a
//! deadline `D`, choose per-task speeds minimizing the dynamic energy
//! `Σ s_i^α · d_i`, under each of the four energy models.
//!
//! Solver inventory (paper result → module):
//!
//! | Result | Module |
//! |---|---|
//! | Theorem 1 (fork closed form, incl. `s_max`) | [`continuous::solve_fork`] |
//! | Theorem 2 (trees, series–parallel) | [`continuous`] (`solve_tree`, `solve_sp`) |
//! | §2.1 geometric program on DAGs | [`continuous::solve_general`] |
//! | Theorem 3 (Vdd-Hopping via LP) | [`vdd`] |
//! | Theorem 4 (Discrete/Incremental exact, NP-hard) | [`discrete::exact`] |
//! | Theorem 5 (Incremental approximation) | [`incremental`] |
//! | Proposition 1 (model transfer bounds) | [`discrete::round_up`], [`incremental`] |
//!
//! The unified entry point is [`solve`], which dispatches on the
//! [`models::EnergyModel`] and the detected graph shape. Repeated
//! solves on one graph (sweeps, bisections, model comparisons) should
//! go through the prepared-instance [`engine`] instead: it caches the
//! graph analysis, dispatches through a pluggable algorithm registry,
//! and fans batches out over threads.

pub mod bicriteria;
pub mod certify;
pub mod continuous;
pub mod discrete;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod solver;
pub mod vdd;

pub use engine::{CurveEnergy, CurvePoint, CurveSegment, CurveStats, Engine, ExactCurve};
pub use error::SolveError;
pub use solver::{solve, solve_with, Solution, SolveOptions};
