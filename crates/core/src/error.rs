//! Solver errors.

use std::fmt;

/// Why `MinEnergy(Ĝ, D)` could not be solved.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No speed assignment meets the deadline: even at the fastest
    /// admissible speeds the critical path takes `min_makespan > D`.
    Infeasible {
        /// The deadline that was requested.
        deadline: f64,
        /// The minimum achievable makespan at top speed (the smallest
        /// feasible deadline).
        min_makespan: f64,
    },
    /// The numerical substrate failed (barrier stall, LP iteration
    /// cap). Carries a human-readable reason.
    Numerical(String),
    /// An exact search ran out of its node budget before finding any
    /// feasible incumbent to return. A budget trip *with* an incumbent
    /// is not an error — the solver returns the incumbent as an
    /// anytime result instead (see `discrete::ExactSolution::complete`).
    BudgetExhausted {
        /// Nodes expanded when the search gave up.
        nodes: u64,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The model/graph combination is not supported by the requested
    /// specialized algorithm (e.g. asking the SP closed form for a
    /// non-SP graph).
    Unsupported(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible {
                deadline,
                min_makespan,
            } => write!(
                f,
                "infeasible: deadline {deadline} < minimum makespan {min_makespan} at top speed"
            ),
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            SolveError::BudgetExhausted { nodes, budget } => write!(
                f,
                "branch-and-bound node budget {budget} exhausted after {nodes} nodes with no incumbent"
            ),
            SolveError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SolveError::Infeasible {
            deadline: 1.0,
            min_makespan: 2.0,
        };
        assert!(e.to_string().contains("infeasible"));
        assert!(SolveError::Numerical("x".into()).to_string().contains("x"));
        let b = SolveError::BudgetExhausted {
            nodes: 11,
            budget: 10,
        };
        assert!(b.to_string().contains("budget 10"));
        assert!(b.to_string().contains("11 nodes"));
        assert!(SolveError::Unsupported("y".into())
            .to_string()
            .contains("y"));
    }
}
