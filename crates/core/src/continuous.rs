//! Continuous-model solvers (paper §2.1).
//!
//! * [`solve_chain`] — constant speed `Σw / D` (convexity).
//! * [`solve_fork`] — Theorem 1's closed form, including the
//!   `s_max`-saturated fallback.
//! * [`solve_sp`] / [`solve_tree`] — Theorem 2's polynomial algorithm
//!   via *equivalent weights*: a series composition behaves like a
//!   single task of weight `W_a + W_b`, a parallel composition like
//!   one of weight `(W_a^α + W_b^α)^{1/α}` (cube root of the sum of
//!   cubes for the paper's `α = 3`), because the optimal energy of any
//!   subgraph scales as `W^α / D^{α−1}` in its window `D`.
//! * [`solve_general`] — the geometric program on arbitrary DAGs,
//!   solved by the `convex` crate's log-barrier interior point method.
//!
//! All solvers return **per-task constant speeds** (under the
//! Continuous model one constant speed per task is optimal: the energy
//! of any variable-speed execution of fixed work over a fixed duration
//! is minimized by the mean speed, by convexity of `s^α`).

use crate::error::SolveError;
use convex::{BarrierSolution, BarrierSolver, LinearConstraint, Objective, WarmStart};
use models::PowerLaw;
use taskgraph::analysis::critical_path_weight;
use taskgraph::structure::{self, Shape};
use taskgraph::{PreparedGraph, SpTree, TaskGraph, TaskId};

/// Total energy of running each task at the given constant speed.
pub fn energy_of_speeds(g: &TaskGraph, speeds: &[f64], p: PowerLaw) -> f64 {
    g.tasks()
        .map(|t| p.energy_at_speed(g.weight(t), speeds[t.0]))
        .sum()
}

/// Check deadline feasibility at the fastest admissible speed and
/// produce the canonical error.
pub fn check_feasible(g: &TaskGraph, deadline: f64, s_max: Option<f64>) -> Result<(), SolveError> {
    check_feasible_inner(|| critical_path_weight(g), deadline, s_max)
}

/// [`check_feasible`] with the critical path taken from the prepared
/// cache.
pub fn check_feasible_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    s_max: Option<f64>,
) -> Result<(), SolveError> {
    check_feasible_inner(|| prep.critical_path_weight(), deadline, s_max)
}

fn check_feasible_inner(
    cp: impl FnOnce() -> f64,
    deadline: f64,
    s_max: Option<f64>,
) -> Result<(), SolveError> {
    if let Some(sm) = s_max {
        let min_makespan = cp() / sm;
        if min_makespan > deadline * (1.0 + 1e-12) {
            return Err(SolveError::Infeasible {
                deadline,
                min_makespan,
            });
        }
    }
    if !(deadline.is_finite() && deadline > 0.0) {
        return Err(SolveError::Infeasible {
            deadline,
            min_makespan: f64::INFINITY,
        });
    }
    Ok(())
}

/// Chain: every task at the constant speed `Σ w_i / D`.
///
/// Proof sketch: with `Σ d_i ≤ D`, minimizing `Σ w_i^α/d_i^{α−1}`
/// gives `d_i ∝ w_i` (Lagrange), i.e. a single common speed, which the
/// deadline then fixes to `Σ w_i / D`.
pub fn solve_chain(
    g: &TaskGraph,
    deadline: f64,
    s_max: Option<f64>,
) -> Result<Vec<f64>, SolveError> {
    check_feasible(g, deadline, s_max)?;
    let s = g.total_work() / deadline;
    if let Some(sm) = s_max {
        if s > sm * (1.0 + 1e-12) {
            return Err(SolveError::Infeasible {
                deadline,
                min_makespan: g.total_work() / sm,
            });
        }
    }
    Ok(vec![s; g.n()])
}

/// Theorem 1: fork graph `T_0 → {T_1 … T_n}`.
///
/// Unsaturated case: `s_0 = ((Σ w_i^α)^{1/α} + w_0) / D` and
/// `s_i = s_0 · w_i / (Σ w_i^α)^{1/α}`. If `s_0 > s_max`, run `T_0` at
/// `s_max` and each child at `w_i / D'` with `D' = D − w_0/s_max`;
/// if some child then exceeds `s_max`, there is no solution.
pub fn solve_fork(
    g: &TaskGraph,
    deadline: f64,
    s_max: Option<f64>,
    p: PowerLaw,
) -> Result<Vec<f64>, SolveError> {
    if !structure::is_fork(g) {
        return Err(SolveError::Unsupported(
            "solve_fork requires a fork graph".into(),
        ));
    }
    check_feasible(g, deadline, s_max)?;
    let root = g.sources()[0];
    let w0 = g.weight(root);
    let children: Vec<TaskId> = g.tasks().filter(|&t| t != root).collect();
    let combined = p.parallel_combine(children.iter().map(|&c| g.weight(c)));
    let s0 = (combined + w0) / deadline;
    let mut speeds = vec![0.0; g.n()];
    match s_max {
        Some(sm) if s0 > sm * (1.0 + 1e-12) => {
            // Saturated: the source runs flat out.
            let d_prime = deadline - w0 / sm;
            if d_prime <= 0.0 {
                return Err(SolveError::Infeasible {
                    deadline,
                    min_makespan: critical_path_weight(g) / sm,
                });
            }
            speeds[root.0] = sm;
            for &c in &children {
                let s = g.weight(c) / d_prime;
                if s > sm * (1.0 + 1e-12) {
                    return Err(SolveError::Infeasible {
                        deadline,
                        min_makespan: critical_path_weight(g) / sm,
                    });
                }
                speeds[c.0] = s;
            }
        }
        _ => {
            speeds[root.0] = s0;
            for &c in &children {
                speeds[c.0] = s0 * g.weight(c) / combined;
            }
        }
    }
    Ok(speeds)
}

/// Equivalent weight of an SP decomposition subtree
/// (Theorem 2's folding rule).
pub fn equivalent_weight(tree: &SpTree, g: &TaskGraph, p: PowerLaw) -> f64 {
    match tree {
        SpTree::Leaf(t) => g.weight(*t),
        SpTree::Series(cs) => cs.iter().map(|c| equivalent_weight(c, g, p)).sum(),
        SpTree::Parallel(cs) => p.parallel_combine(cs.iter().map(|c| equivalent_weight(c, g, p))),
    }
}

/// Theorem 2 (series–parallel case, `s_max = +∞`): exact speeds by
/// folding equivalent weights bottom-up, then unfolding the deadline
/// window top-down (series children split the window in proportion to
/// their equivalent weights; parallel children inherit it whole).
pub fn solve_sp(
    g: &TaskGraph,
    tree: &SpTree,
    deadline: f64,
    p: PowerLaw,
) -> Result<Vec<f64>, SolveError> {
    check_feasible(g, deadline, None)?;
    let mut speeds = vec![0.0; g.n()];
    assign_window(tree, g, deadline, p, &mut speeds);
    Ok(speeds)
}

fn assign_window(tree: &SpTree, g: &TaskGraph, window: f64, p: PowerLaw, speeds: &mut [f64]) {
    match tree {
        SpTree::Leaf(t) => speeds[t.0] = g.weight(*t) / window,
        SpTree::Series(cs) => {
            let ws: Vec<f64> = cs.iter().map(|c| equivalent_weight(c, g, p)).collect();
            let total: f64 = ws.iter().sum();
            for (c, w) in cs.iter().zip(&ws) {
                assign_window(c, g, window * w / total, p, speeds);
            }
        }
        SpTree::Parallel(cs) => {
            for c in cs {
                assign_window(c, g, window, p, speeds);
            }
        }
    }
}

/// Theorem 2 (tree case): an out-tree *is* series–parallel under the
/// node semantics (`root` in series with the parallel composition of
/// its child subtrees), so we build the decomposition directly in
/// linear time and reuse [`solve_sp`]. In-trees are handled by edge
/// reversal (time reversal preserves both feasibility and energy).
///
/// `s_max` caveat: the closed form assumes unbounded speeds. When an
/// `s_max` is given and the unconstrained optimum violates it, the
/// caller should fall back to [`solve_general`] (the dispatcher in
/// [`crate::solver`] does).
pub fn tree_decomposition(g: &TaskGraph) -> Option<SpTree> {
    if !structure::is_out_tree(g) {
        return None;
    }
    let root = g.sources()[0];
    Some(tree_sub(g, root))
}

fn tree_sub(g: &TaskGraph, node: TaskId) -> SpTree {
    let children = g.succs(node);
    if children.is_empty() {
        SpTree::Leaf(node)
    } else {
        let subs: Vec<SpTree> = children.iter().map(|&c| tree_sub(g, c)).collect();
        let par = if subs.len() == 1 {
            subs.into_iter().next().unwrap()
        } else {
            SpTree::Parallel(subs)
        };
        SpTree::Series(vec![SpTree::Leaf(node), par])
    }
}

/// Solve an out-tree or in-tree exactly (unbounded speeds).
pub fn solve_tree(g: &TaskGraph, deadline: f64, p: PowerLaw) -> Result<Vec<f64>, SolveError> {
    if let Some(tree) = tree_decomposition(g) {
        return solve_sp(g, &tree, deadline, p);
    }
    let rev = g.reversed();
    if let Some(tree) = tree_decomposition(&rev) {
        // Same durations (hence speeds) are optimal for the reversed
        // instance.
        return solve_sp(&rev, &tree, deadline, p);
    }
    Err(SolveError::Unsupported(
        "solve_tree requires an out- or in-tree".into(),
    ))
}

/// The MinEnergy objective `Σ w_i^α / d_i^{α−1}` over
/// `x = (d_0…d_{n−1}, t_0…t_{n−1})` — separable in `d`, constant in
/// `t`, hence a diagonal Hessian as the barrier solver requires.
struct MinEnergyObjective {
    weights: Vec<f64>,
    alpha: f64,
}

impl Objective for MinEnergyObjective {
    fn value(&self, x: &[f64]) -> f64 {
        let mut e = 0.0;
        for (&w, &d) in self.weights.iter().zip(x) {
            if d <= 0.0 {
                return f64::INFINITY;
            }
            e += w.powf(self.alpha) / d.powf(self.alpha - 1.0);
        }
        e
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        let n = self.weights.len();
        let a = self.alpha;
        for v in grad.iter_mut() {
            *v = 0.0;
        }
        for i in 0..n {
            grad[i] = -(a - 1.0) * self.weights[i].powf(a) / x[i].powf(a);
        }
    }
    fn hess_diag(&self, x: &[f64], hess: &mut [f64]) {
        let n = self.weights.len();
        let a = self.alpha;
        for v in hess.iter_mut() {
            *v = 0.0;
        }
        for i in 0..n {
            hess[i] = a * (a - 1.0) * self.weights[i].powf(a) / x[i].powf(a + 1.0);
        }
    }
}

/// §2.1: the geometric program on an arbitrary execution graph,
/// solved numerically. `precision_k = Some(K)` requests relative
/// precision `1/K` (the Theorem 5 / Proposition 1 numerical scheme);
/// `None` solves to the default tight tolerance (`1e-9`).
///
/// Variables: durations `d` and completion times `t`. Constraints:
/// `t_i + d_j ≤ t_j` per edge, `d_i ≤ t_i` (non-negative start),
/// `t_i ≤ D`, and `d_i ≤ w_i/s_max` when a top speed exists.
pub fn solve_general(
    g: &TaskGraph,
    deadline: f64,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    solve_general_boxed(g, deadline, None, s_max, p, precision_k)
}

/// The geometric program with a **box** on the speeds:
/// `s_min ≤ s_i ≤ s_max` per task.
///
/// The lower bound is what makes the rounding-based approximation
/// algorithms (Theorem 5, Proposition 1) provable: the optimum of the
/// continuous problem restricted to `s ≥ s_1` is still a lower bound
/// on the Discrete/Incremental optimum (whose speeds are all `≥ s_1`),
/// and rounding **that** optimum up to the next mode inflates each
/// speed by at most a factor `1 + gap/s_1`.
pub fn solve_general_boxed(
    g: &TaskGraph,
    deadline: f64,
    s_min: Option<f64>,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    solve_general_prepared(
        &PreparedGraph::new(g),
        deadline,
        s_min,
        s_max,
        p,
        precision_k,
    )
}

/// Cumulative barrier-solve statistics of one warm sweep chain (the
/// evidence trail for "warm-starting shrinks Newton work" — bench X9
/// records these).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BarrierStats {
    /// Barrier solves performed through this chain.
    pub solves: u64,
    /// Total Newton steps across those solves.
    pub newton_steps: u64,
    /// Solves that were seeded from the previous point's primal.
    pub warm_seeded: u64,
}

/// Warm-start state threaded through a deadline sweep of the §2.1
/// geometric program: the previous solve's normalized primal point
/// plus the barrier weight it stopped at.
///
/// The rescaling argument: the barrier solves at deadline exactly 1
/// (time-normalized, see [`solve_general_boxed`]), so a point that was
/// strictly feasible at deadline `D₁` becomes, after multiplying by
/// `D₁/D₂`, strictly feasible at any `D₂ ≥ D₁` — same physical
/// schedule, smaller normalized coordinates. Sweeps that walk
/// deadlines in increasing order therefore re-enter the central path
/// near its end at every point ([`convex::BarrierSolver::minimize_warm`])
/// instead of re-climbing it from `t = 1`; a decreased deadline simply
/// falls back to a cold start.
#[derive(Debug, Default)]
pub struct SweepWarm {
    /// `(normalized primal, effective deadline it was solved at,
    /// final barrier weight)` of the previous solve.
    state: Option<(Vec<f64>, f64, f64)>,
    /// Chain statistics.
    pub stats: BarrierStats,
}

impl SweepWarm {
    /// A fresh (cold) chain.
    pub fn new() -> SweepWarm {
        SweepWarm::default()
    }
}

/// [`solve_general_boxed`] on a prepared graph: critical path,
/// topological order, and transitive reduction come from the shared
/// cache instead of being re-derived per call.
pub fn solve_general_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    s_min: Option<f64>,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    let mut cold = SweepWarm::new();
    solve_general_warm(prep, deadline, s_min, s_max, p, precision_k, &mut cold)
}

/// [`solve_general_prepared`] with a [`SweepWarm`] chain threaded
/// through: the barrier is seeded from the previous sweep point's
/// primal whenever the deadline did not decrease, shrinking Newton
/// iterations measurably (see `BarrierStats`). Results match the cold
/// path up to the solver tolerance.
pub fn solve_general_warm(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    s_min: Option<f64>,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
    warm: &mut SweepWarm,
) -> Result<Vec<f64>, SolveError> {
    check_feasible_prepared(prep, deadline, s_max)?;
    if let (Some(lo), Some(hi)) = (s_min, s_max) {
        if lo >= hi * (1.0 - 1e-5) {
            return Err(SolveError::Unsupported(
                "degenerate speed box (s_min ≈ s_max); assign the single speed directly".into(),
            ));
        }
    }
    // Two numerical safeguards (found by edge-case tests):
    //
    // 1. **Boundary deadlines.** At D = cp/s_max exactly the feasible
    //    set has an empty interior and no barrier method can start.
    //    Solve at D·(1+ε) instead and speed everything up by (1+ε)
    //    afterwards: the result is feasible for D and within a factor
    //    (1+ε)^{α−1} of optimal.
    // 2. **Time normalization.** Solve with deadline 1 (substituting
    //    d → d/D scales the objective by D^{1−α} and the speed box by
    //    D), so the barrier's absolute tolerances are meaningful at
    //    any deadline magnitude.
    let cp = prep.critical_path_weight();
    let t_min_abs = s_max.map_or(0.0, |sm| cp / sm);
    let eps_bump = 1e-7;
    let needs_bump = deadline - t_min_abs < 1e-9 * deadline;
    let eff_deadline = if needs_bump {
        deadline * (1.0 + eps_bump)
    } else {
        deadline
    };
    // A previous sweep point's primal, rescaled into this solve's
    // normalized coordinates — admissible iff the deadline grew.
    let hint = warm.state.as_ref().and_then(|(x, prev_eff, t_final)| {
        if *prev_eff <= eff_deadline * (1.0 + 1e-12) {
            let scale = prev_eff / eff_deadline;
            Some(WarmStart {
                x: x.iter().map(|v| v * scale).collect(),
                t_final: *t_final,
            })
        } else {
            None
        }
    });
    let (scaled, bar) = solve_normalized(
        prep,
        s_min.map(|s| s * eff_deadline),
        s_max.map(|s| s * eff_deadline),
        p,
        precision_k,
        hint.as_ref(),
    )?;
    warm.stats.solves += 1;
    warm.stats.newton_steps += bar.newton_steps as u64;
    warm.stats.warm_seeded += u64::from(hint.is_some());
    warm.state = Some((bar.x, eff_deadline, bar.t_final));
    let mut speeds: Vec<f64> = scaled.iter().map(|s| s / deadline).collect();
    if needs_bump {
        // The (1+ε) speed-up may push critical tasks a hair past
        // s_max; clamping is safe because the all-at-s_max schedule
        // meets this (boundary) deadline.
        if let Some(sm) = s_max {
            for s in &mut speeds {
                *s = s.min(sm);
            }
        }
    }
    Ok(speeds)
}

/// The barrier solve at deadline exactly 1 (see
/// [`solve_general_boxed`] for the scaling). Bounds are already
/// scaled; returned speeds are in normalized units (divide by the real
/// deadline to recover them). The raw [`BarrierSolution`] rides along
/// so sweep callers can chain warm starts and account Newton steps.
fn solve_normalized(
    prep: &PreparedGraph<'_>,
    s_min: Option<f64>,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
    warm: Option<&WarmStart>,
) -> Result<(Vec<f64>, BarrierSolution), SolveError> {
    let g = prep.graph();
    let deadline = 1.0f64;
    let n = g.n();
    let d_var = |i: usize| i;
    let t_var = |i: usize| n + i;

    // Redundant precedence edges add redundant constraints (and barrier
    // terms); the transitive reduction preserves the feasible set.
    let reduced = prep.reduced();
    let mut cons: Vec<LinearConstraint> = Vec::with_capacity(reduced.m() + 2 * n);
    for &(u, v) in reduced.edges() {
        // t_u + d_v − t_v ≤ 0
        cons.push(LinearConstraint::new(
            vec![(t_var(u.0), 1.0), (d_var(v.0), 1.0), (t_var(v.0), -1.0)],
            0.0,
        ));
    }
    for i in 0..n {
        // d_i − t_i ≤ 0  (start time ≥ 0)
        cons.push(LinearConstraint::new(
            vec![(d_var(i), 1.0), (t_var(i), -1.0)],
            0.0,
        ));
        // t_i ≤ D
        cons.push(LinearConstraint::new(vec![(t_var(i), 1.0)], deadline));
        if let Some(sm) = s_max {
            // w_i/s_max − d_i ≤ 0
            cons.push(LinearConstraint::new(
                vec![(d_var(i), -1.0)],
                -(g.weight(TaskId(i)) / sm),
            ));
        }
        if let Some(lo) = s_min {
            // d_i ≤ w_i/s_min  (speed at least s_min)
            cons.push(LinearConstraint::new(
                vec![(d_var(i), 1.0)],
                g.weight(TaskId(i)) / lo,
            ));
        }
    }

    // Strictly feasible start: uniform speed with makespan strictly
    // between the minimum (cp/s_max, or 0) and D, then stretch the
    // completion times into the interior.
    let cp = prep.critical_path_weight();
    let t_min = s_max.map_or(0.0, |sm| cp / sm);
    let target_makespan = 0.5 * (t_min + deadline);
    let mut s0 = cp / target_makespan;
    if let Some(lo) = s_min {
        // Stay strictly above the speed floor; running faster than
        // necessary is always feasible (tasks simply finish early).
        let floor = lo * (1.0 + 1e-6);
        if s0 < floor {
            s0 = floor;
        }
    }
    let s0 = s0;
    let durations: Vec<f64> = g.weights().iter().map(|&w| w / s0).collect();
    let ecl = prep.earliest_completion(&durations);
    let gamma = 0.5 * (deadline - target_makespan) / target_makespan;
    let mut x0 = vec![0.0; 2 * n];
    for i in 0..n {
        x0[d_var(i)] = durations[i];
        x0[t_var(i)] = ecl[i] * (1.0 + gamma);
    }

    let solver = match precision_k {
        Some(k) => BarrierSolver::with_precision_k(k),
        None => BarrierSolver::default(),
    };
    let obj = MinEnergyObjective {
        weights: g.weights().to_vec(),
        alpha: p.alpha(),
    };
    let bar = solver
        .minimize_warm(&obj, &cons, x0, warm)
        .map_err(|e| SolveError::Numerical(e.to_string()))?;

    let mut speeds = vec![0.0; n];
    for (i, s) in speeds.iter_mut().enumerate() {
        *s = g.weight(TaskId(i)) / bar.x[d_var(i)];
        if let Some(sm) = s_max {
            // The barrier keeps d strictly inside, so speeds sit
            // strictly below s_max; clamp residual slack for cleanliness.
            *s = s.min(sm);
        }
    }
    Ok((speeds, bar))
}

/// Shape-dispatched continuous solve: the cheapest exact algorithm for
/// the detected shape, falling back to the numerical solver for
/// general DAGs or when `s_max` binds on a tree/SP closed form.
pub fn solve(
    g: &TaskGraph,
    deadline: f64,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    solve_dispatched(&PreparedGraph::new(g), deadline, s_max, p, precision_k)
}

/// [`solve`] on a prepared graph: the shape classification, SP
/// decomposition, and (for the numerical fallback) transitive
/// reduction come from the shared cache.
pub fn solve_dispatched(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    s_max: Option<f64>,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    check_feasible_prepared(prep, deadline, s_max)?;
    let g = prep.graph();
    let closed_form: Option<Vec<f64>> = match prep.shape() {
        Shape::Single | Shape::Chain => Some(solve_chain(g, deadline, s_max)?),
        Shape::Fork => Some(solve_fork(g, deadline, s_max, p)?),
        Shape::Join => {
            // Mirror of the fork through time reversal.
            let rev = g.reversed();
            Some(solve_fork(&rev, deadline, s_max, p)?)
        }
        Shape::OutTree | Shape::InTree => Some(solve_tree(g, deadline, p)?),
        Shape::SeriesParallel => {
            let tree = prep.sp_tree().expect("classified as SP");
            Some(solve_sp(g, tree, deadline, p)?)
        }
        Shape::General => None,
    };
    match closed_form {
        Some(speeds) => {
            // Chain/fork handle s_max internally and exactly; the
            // tree/SP closed forms assume unbounded speeds (Theorem 2's
            // caveat) — if the cap binds, defer to the numerical solver.
            let within_cap = s_max.is_none_or(|sm| speeds.iter().all(|&s| s <= sm * (1.0 + 1e-9)));
            if within_cap {
                Ok(speeds)
            } else {
                solve_general_prepared(prep, deadline, None, s_max, p, precision_k)
            }
        }
        None => solve_general_prepared(prep, deadline, None, s_max, p, precision_k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    fn rel_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} !~ {b}"
        );
    }

    #[test]
    fn chain_constant_speed() {
        let g = generators::chain(&[1.0, 2.0, 3.0]);
        let s = solve_chain(&g, 3.0, None).unwrap();
        assert_eq!(s, vec![2.0, 2.0, 2.0]);
        // Tight s_max.
        assert!(solve_chain(&g, 3.0, Some(1.5)).is_err());
        assert!(solve_chain(&g, 3.0, Some(2.0)).is_ok());
    }

    #[test]
    fn fork_matches_theorem1_formula() {
        // w0 = 1, children {1, 2}: s0 = ((1 + 8)^{1/3} + 1)/D.
        let g = generators::fork(1.0, &[1.0, 2.0]);
        let d = 2.0;
        let s = solve_fork(&g, d, None, P).unwrap();
        let comb = 9.0f64.cbrt();
        let s0 = (comb + 1.0) / d;
        rel_close(s[0], s0, 1e-12);
        rel_close(s[1], s0 * 1.0 / comb, 1e-12);
        rel_close(s[2], s0 * 2.0 / comb, 1e-12);
        // All children complete exactly at D.
        let d0 = 1.0 / s[0];
        rel_close(d0 + 2.0 / s[2], d, 1e-12);
        rel_close(d0 + 1.0 / s[1], d, 1e-12);
    }

    #[test]
    fn fork_saturation_branch() {
        let g = generators::fork(1.0, &[1.0, 2.0]);
        let d = 2.0;
        let comb = 9.0f64.cbrt();
        let s0_unc = (comb + 1.0) / d; // ≈ 1.5400
                                       // Choose s_max below the unconstrained s0 but above the
                                       // critical-path bound cp/D = 3/2 (so the instance stays
                                       // feasible): the saturated branch of Theorem 1.
        let sm = 1.52;
        assert!(sm < s0_unc && sm > 1.5);
        let s = solve_fork(&g, d, Some(sm), P).unwrap();
        assert_eq!(s[0], sm);
        let d_prime = d - 1.0 / sm;
        rel_close(s[1], 1.0 / d_prime, 1e-12);
        rel_close(s[2], 2.0 / d_prime, 1e-12);
        assert!(s[2] <= sm * (1.0 + 1e-9));
        // Saturated energy exceeds the unconstrained optimum.
        let e_unc = energy_of_speeds(&g, &solve_fork(&g, d, None, P).unwrap(), P);
        let e_sat = energy_of_speeds(&g, &s, P);
        assert!(e_sat > e_unc);
        // Infeasibly small cap.
        assert!(solve_fork(&g, d, Some(1.2), P).is_err());
    }

    #[test]
    fn sp_diamond_energy_matches_equivalent_weight() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let tree = SpTree::from_graph(&g).unwrap();
        let w_eq = equivalent_weight(&tree, &g, P);
        // W = 1 + (8+27)^{1/3} + 4.
        rel_close(w_eq, 1.0 + 35.0f64.cbrt() + 4.0, 1e-12);
        let d = 5.0;
        let speeds = solve_sp(&g, &tree, d, P).unwrap();
        let e = energy_of_speeds(&g, &speeds, P);
        rel_close(e, w_eq.powi(3) / (d * d), 1e-12);
        // Feasibility: schedule meets the deadline.
        let durations: Vec<f64> = (0..4).map(|i| g.weights()[i] / speeds[i]).collect();
        let mk = taskgraph::analysis::makespan(&g, &durations);
        assert!(mk <= d * (1.0 + 1e-9));
    }

    #[test]
    fn tree_solver_agrees_with_sp_recognition() {
        let g = taskgraph::TaskGraph::new(
            vec![2.0, 1.0, 3.0, 1.5, 2.5],
            &[(0, 1), (1, 2), (1, 3), (0, 4)],
        )
        .unwrap();
        let d = 6.0;
        let via_tree = solve_tree(&g, d, P).unwrap();
        let tree = SpTree::from_graph(&g).unwrap();
        let via_sp = solve_sp(&g, &tree, d, P).unwrap();
        for (a, b) in via_tree.iter().zip(&via_sp) {
            rel_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn in_tree_via_reversal() {
        let g = generators::join(&[1.0, 2.0], 1.0);
        let d = 2.0;
        let s = solve_tree(&g, d, P).unwrap();
        // Join mirrors the fork: same speeds as the fork instance.
        let f = generators::fork(1.0, &[1.0, 2.0]);
        let sf = solve_fork(&f, d, None, P).unwrap();
        rel_close(s[0], sf[0], 1e-9);
    }

    #[test]
    fn general_solver_matches_fork_closed_form() {
        let g = generators::fork(1.0, &[1.0, 2.0, 3.0]);
        let d = 3.0;
        let exact = solve_fork(&g, d, None, P).unwrap();
        let numer = solve_general(&g, d, None, P, None).unwrap();
        let e_exact = energy_of_speeds(&g, &exact, P);
        let e_numer = energy_of_speeds(&g, &numer, P);
        rel_close(e_exact, e_numer, 1e-5);
    }

    #[test]
    fn general_solver_matches_sp_closed_form() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let tree = SpTree::from_graph(&g).unwrap();
        let d = 4.0;
        let e_exact = energy_of_speeds(&g, &solve_sp(&g, &tree, d, P).unwrap(), P);
        let e_numer = energy_of_speeds(&g, &solve_general(&g, d, None, P, None).unwrap(), P);
        rel_close(e_exact, e_numer, 1e-5);
    }

    #[test]
    fn general_solver_respects_smax() {
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let d = 4.5;
        let sm = 2.2; // cp = 8 → min makespan 3.64 < 4.5: feasible.
        let s = solve_general(&g, d, Some(sm), P, None).unwrap();
        assert!(s.iter().all(|&v| v <= sm * (1.0 + 1e-6)));
        let durations: Vec<f64> = (0..4).map(|i| g.weights()[i] / s[i]).collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-6));
        // Tighter cap than the critical path allows → infeasible.
        assert!(matches!(
            solve_general(&g, 4.5, Some(1.5), P, None),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn non_sp_graph_solves_numerically() {
        // The "N" graph: 0→2, 0→3, 1→3.
        let g =
            taskgraph::TaskGraph::new(vec![1.0, 2.0, 3.0, 1.0], &[(0, 2), (0, 3), (1, 3)]).unwrap();
        let d = 3.0;
        let s = solve(&g, d, None, P, None).unwrap();
        let durations: Vec<f64> = (0..4).map(|i| g.weights()[i] / s[i]).collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-6));
        // Lower bound: relaxing precedence, each task alone in window D.
        let lb: f64 = g.weights().iter().map(|&w| P.energy_for_work(w, d)).sum();
        assert!(energy_of_speeds(&g, &s, P) >= lb - 1e-9);
    }

    #[test]
    fn dispatch_falls_back_when_smax_binds_on_sp() {
        // Diamond where the SP closed form wants a speed above s_max
        // (equivalent weight W ≈ 8.99 → peak speed W/D ≈ 1.498) but
        // the instance is still feasible (cp/D = 8/6 ≈ 1.333 < s_max).
        let g = generators::diamond([1.0, 5.0, 6.0, 1.0]);
        let d = 6.0;
        let sm = 1.42;
        let unconstrained = {
            let tree = SpTree::from_graph(&g).unwrap();
            solve_sp(&g, &tree, d, P).unwrap()
        };
        assert!(unconstrained.iter().any(|&s| s > sm));
        let s = solve(&g, d, Some(sm), P, None).unwrap();
        assert!(s.iter().all(|&v| v <= sm * (1.0 + 1e-6)));
        let durations: Vec<f64> = (0..4).map(|i| g.weights()[i] / s[i]).collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-6));
    }

    #[test]
    fn redundant_edges_do_not_change_the_optimum() {
        // Diamond plus the redundant shortcut (0, 3): same feasible
        // set, same optimal energy (the solver reduces it away).
        let clean = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let redundant = taskgraph::TaskGraph::new(
            vec![1.0, 2.0, 3.0, 4.0],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)],
        )
        .unwrap();
        let d = 5.0;
        let e1 = energy_of_speeds(&clean, &solve_general(&clean, d, None, P, None).unwrap(), P);
        let e2 = energy_of_speeds(
            &redundant,
            &solve_general(&redundant, d, None, P, None).unwrap(),
            P,
        );
        rel_close(e1, e2, 1e-6);
    }

    #[test]
    fn energy_scales_inverse_square_of_deadline() {
        // E*(D) = E*(1)/D^{α−1}: check on an SP instance (α = 3).
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let tree = SpTree::from_graph(&g).unwrap();
        let e1 = energy_of_speeds(&g, &solve_sp(&g, &tree, 2.0, P).unwrap(), P);
        let e2 = energy_of_speeds(&g, &solve_sp(&g, &tree, 4.0, P).unwrap(), P);
        rel_close(e1 / e2, 4.0, 1e-9);
    }

    #[test]
    fn warm_sweep_matches_cold_and_saves_newton_steps() {
        // The "N" graph (no closed form — every solve hits the
        // barrier). A deadline sweep through one SweepWarm chain must
        // agree with cold solves pointwise and spend fewer Newton
        // steps in total.
        let g =
            taskgraph::TaskGraph::new(vec![1.0, 2.0, 3.0, 1.0], &[(0, 2), (0, 3), (1, 3)]).unwrap();
        let prep = PreparedGraph::new(&g);
        let deadlines: Vec<f64> = (0..6).map(|k| 3.0 + 0.6 * k as f64).collect();
        let mut chain = SweepWarm::new();
        let mut cold_steps = 0u64;
        for &d in &deadlines {
            let warm_speeds =
                solve_general_warm(&prep, d, None, Some(2.5), P, None, &mut chain).unwrap();
            let mut one = SweepWarm::new();
            let cold_speeds =
                solve_general_warm(&prep, d, None, Some(2.5), P, None, &mut one).unwrap();
            cold_steps += one.stats.newton_steps;
            let (ew, ec) = (
                energy_of_speeds(&g, &warm_speeds, P),
                energy_of_speeds(&g, &cold_speeds, P),
            );
            rel_close(ew, ec, 1e-5);
        }
        assert_eq!(chain.stats.solves, deadlines.len() as u64);
        assert_eq!(chain.stats.warm_seeded, deadlines.len() as u64 - 1);
        assert!(
            chain.stats.newton_steps < cold_steps,
            "warm chain {} steps vs cold {cold_steps}",
            chain.stats.newton_steps
        );
    }

    #[test]
    fn warm_sweep_decreasing_deadline_falls_back_cold() {
        let g =
            taskgraph::TaskGraph::new(vec![1.0, 2.0, 3.0, 1.0], &[(0, 2), (0, 3), (1, 3)]).unwrap();
        let prep = PreparedGraph::new(&g);
        let mut chain = SweepWarm::new();
        solve_general_warm(&prep, 6.0, None, None, P, None, &mut chain).unwrap();
        let speeds = solve_general_warm(&prep, 3.0, None, None, P, None, &mut chain).unwrap();
        assert_eq!(chain.stats.warm_seeded, 0, "shrinking deadline is cold");
        let cold = solve_general(&g, 3.0, None, P, None).unwrap();
        rel_close(
            energy_of_speeds(&g, &speeds, P),
            energy_of_speeds(&g, &cold, P),
            1e-5,
        );
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let g = generators::chain(&[1.0]);
        assert!(matches!(
            solve(&g, 0.0, None, P, None),
            Err(SolveError::Infeasible { .. })
        ));
        assert!(matches!(
            solve(&g, f64::NAN, None, P, None),
            Err(SolveError::Infeasible { .. })
        ));
    }
}
