//! Discrete-model solvers (Theorem 4: NP-complete; Proposition 1(b):
//! rounding approximation).
//!
//! * [`exact`] — branch-and-bound over per-task mode choices. Worst
//!   case exponential, as Theorem 4's NP-completeness predicts;
//!   experiment T4 measures the blow-up on PARTITION-style instances.
//!   On a node-budget trip with a feasible incumbent in hand the
//!   search returns the incumbent as an **anytime** result
//!   ([`ExactSolution::complete`] is `false` and
//!   [`ExactSolution::lower_bound`] certifies the optimality gap)
//!   instead of discarding it.
//! * [`chain_dp`] — pseudo-polynomial dynamic program for chains with
//!   a discretized time budget (NP-completeness is *weak* for chains).
//! * [`round_up`] — Proposition 1(b): solve the Continuous relaxation
//!   boxed to `[s_1, s_m]` to precision `1/K` and round each speed up
//!   to the next mode; approximation factor
//!   `(1 + α/s_1)^{α_pow−1} · (1 + 1/K)^{α_pow−1}` where
//!   `α = max_i (s_{i+1} − s_i)` (for the paper's cubic power law the
//!   exponent is 2, matching the stated `(1+α/s₁)²(1+1/K)²`).
//!
//! The search core is factored into a `SearchCtx` (all precomputed
//! bounds) plus a subtree DFS that can start from a fixed assignment
//! prefix — the building block `engine::par_bnb` partitions across
//! worker threads Bobpp-style.

use crate::continuous;
use crate::error::SolveError;
use models::{DiscreteModes, PowerLaw};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use taskgraph::analysis::{critical_path_weight, topo_order};
use taskgraph::{PreparedGraph, TaskGraph, TaskId};

/// Branch-and-bound search statistics (experiment T4 evidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BnbStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the deadline-feasibility bound.
    pub pruned_infeasible: u64,
    /// Nodes cut by the energy lower bound.
    pub pruned_bound: u64,
}

impl BnbStats {
    /// Accumulate another counter set (partition merges).
    pub fn absorb(&mut self, other: BnbStats) {
        self.nodes += other.nodes;
        self.pruned_infeasible += other.pruned_infeasible;
        self.pruned_bound += other.pruned_bound;
    }
}

/// Result of an exact Discrete solve.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Best per-task speeds found (each one of the modes). Optimal
    /// when [`ExactSolution::complete`]; otherwise the best feasible
    /// incumbent at the node-budget trip.
    pub speeds: Vec<f64>,
    /// Energy of `speeds`.
    pub energy: f64,
    /// Search statistics.
    pub stats: BnbStats,
    /// Whether the search ran to completion, proving `energy` optimal.
    /// `false` means the node budget tripped and this is an anytime
    /// result: `speeds` is still feasible, `energy` is an upper bound
    /// on the optimum, and [`ExactSolution::lower_bound`] is a
    /// certified lower bound.
    pub complete: bool,
    /// Certified lower bound on the true optimum: `energy` itself when
    /// `complete`; otherwise the best of the boxed-relaxation bound
    /// (Proposition 1(b)) and the root combinatorial bound.
    pub lower_bound: f64,
}

impl ExactSolution {
    /// Relative optimality gap `(energy − lower_bound) / lower_bound`:
    /// `0` for complete (proven optimal) solves.
    pub fn gap(&self) -> f64 {
        if self.complete || self.lower_bound <= 0.0 {
            return 0.0;
        }
        ((self.energy - self.lower_bound) / self.lower_bound).max(0.0)
    }
}

/// Hard cap on explored nodes before giving up (exponential searches
/// must fail loudly rather than hang).
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Branch-and-bound configuration (the knobs ablated in
/// `benches/discrete.rs`).
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Hard cap on explored nodes.
    pub node_budget: u64,
    /// Seed the incumbent with the Proposition 1(b) rounding.
    pub warm_start: bool,
    /// Use the dynamic chain-cover lower bound in addition to the
    /// static per-task bound (see [`exact_with_config`]).
    pub chain_bound: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_budget: DEFAULT_NODE_BUDGET,
            warm_start: true,
            chain_bound: true,
        }
    }
}

/// Candidate-mode order within each task — the portfolio's branching
/// axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BranchOrder {
    /// Slowest admissible (cheapest) mode first: the sequential
    /// default. With the static bound this order lets a bound failure
    /// backtrack (faster candidates only cost more).
    SlowestFirst,
    /// Fastest (most expensive) mode first: the alternate portfolio
    /// arm — reaches feasible leaves quickly on tight deadlines.
    FastestFirst,
}

/// A search incumbent: best energy seen plus the mode assignment that
/// achieved it (`None` while only an externally seeded bound exists).
#[derive(Debug, Clone)]
pub(crate) struct Incumbent {
    pub(crate) energy: f64,
    pub(crate) modes: Option<Vec<usize>>,
}

impl Incumbent {
    pub(crate) fn new() -> Incumbent {
        Incumbent {
            energy: f64::INFINITY,
            modes: None,
        }
    }
}

/// How one subtree search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubtreeOutcome {
    /// The subtree was exhausted: its part of the space is proven.
    Complete,
    /// The per-subtree node budget tripped.
    Budget,
    /// A shared stop flag cancelled the search (portfolio racing).
    Stopped,
}

/// The incumbent bound shared across parallel subtree searches: the
/// energy lives in an `AtomicU64` as `f64` bits maintained by a
/// CAS-min loop (readable every node without a lock), and the
/// assignment that achieved it is stored at the same time under a
/// mutex touched only on improvements (rare).
pub(crate) struct SharedIncumbent {
    bits: AtomicU64,
    best: Mutex<Option<(f64, Vec<usize>)>>,
}

impl SharedIncumbent {
    pub(crate) fn new() -> SharedIncumbent {
        SharedIncumbent {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
            best: Mutex::new(None),
        }
    }

    /// The current bound (∞ until the first publish).
    pub(crate) fn bound(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// CAS-min the bound and record the assignment when it improves.
    pub(crate) fn publish(&self, energy: f64, modes: &[usize]) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if energy >= f64::from_bits(cur) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                energy.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut guard = match self.best.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.as_ref().is_none_or(|(e, _)| energy < *e) {
            *guard = Some((energy, modes.to_vec()));
        }
    }

    /// The best published assignment, if any improvement was found.
    pub(crate) fn take_best(&self) -> Option<(f64, Vec<usize>)> {
        match self.best.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

/// All precomputed state of one branch-and-bound instance: bounds,
/// chain cover, candidate orders. Immutable during the search, so one
/// `SearchCtx` is shared by every parallel subtree worker.
pub(crate) struct SearchCtx<'a> {
    g: &'a TaskGraph,
    pub(crate) deadline: f64,
    p: PowerLaw,
    pub(crate) speeds_list: Vec<f64>,
    pub(crate) n: usize,
    m: usize,
    order: Vec<TaskId>,
    pos: Vec<usize>,
    tail: Vec<f64>,
    est: Vec<f64>,
    suffix_lb: Vec<f64>,
    chains: Vec<Vec<usize>>,
    chain_w_suffix: Vec<Vec<f64>>,
    chain_lb_suffix: Vec<Vec<f64>>,
    chain_frontier: Vec<Vec<usize>>,
    s_top: f64,
    s_bottom: f64,
    chain_bound: bool,
    branch: BranchOrder,
    cand: Vec<Vec<usize>>,
}

impl<'a> SearchCtx<'a> {
    /// Precompute every bound for `(g, deadline, modes)`. Fails with
    /// [`SolveError::Infeasible`] when even top speed misses the
    /// deadline.
    pub(crate) fn new(
        g: &'a TaskGraph,
        deadline: f64,
        modes: &DiscreteModes,
        p: PowerLaw,
        chain_bound: bool,
        branch: BranchOrder,
    ) -> Result<SearchCtx<'a>, SolveError> {
        continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
        let n = g.n();
        let order = topo_order(g);
        let speeds_list = modes.speeds().to_vec();
        let m = speeds_list.len();

        // Position of each task in the topological order.
        let mut pos = vec![0usize; n];
        for (k, &t) in order.iter().enumerate() {
            pos[t.0] = k;
        }

        // Top-speed tail below each task: heaviest path weight from the
        // task (exclusive) to a sink, divided by s_m.
        let s_top = modes.s_max();
        let mut tail = vec![0.0f64; n];
        for &t in order.iter().rev() {
            tail[t.0] = g
                .succs(t)
                .iter()
                .map(|&s| tail[s.0] + g.weight(s) / s_top)
                .fold(0.0f64, f64::max);
        }
        // Earliest possible start (everything at top speed) per task.
        let mut est = vec![0.0f64; n];
        for &t in &order {
            est[t.0] = g
                .preds(t)
                .iter()
                .map(|&q| est[q.0] + g.weight(q) / s_top)
                .fold(0.0f64, f64::max);
        }

        // Per-task energy lower bound: the slowest mode that fits the
        // task's widest possible window [est, D − tail].
        let mut task_lb = vec![0.0f64; n];
        let mut min_mode_idx = vec![0usize; n];
        for i in 0..n {
            let window = deadline - tail[i] - est[i];
            if window <= 0.0 {
                return Err(SolveError::Infeasible {
                    deadline,
                    min_makespan: critical_path_weight(g) / s_top,
                });
            }
            let need = g.weights()[i] / window;
            let s_lb = modes.round_up(need).ok_or(SolveError::Infeasible {
                deadline,
                min_makespan: critical_path_weight(g) / s_top,
            })?;
            min_mode_idx[i] = speeds_list.iter().position(|&s| s >= s_lb - 1e-12).unwrap();
            task_lb[i] = p.energy_at_speed(g.weights()[i], s_lb);
        }
        // Suffix sums of the per-task lower bounds along the topo order.
        let mut suffix_lb = vec![0.0f64; n + 1];
        for k in (0..n).rev() {
            suffix_lb[k] = suffix_lb[k + 1] + task_lb[order[k].0];
        }

        // Greedy chain cover: disjoint directed paths covering every
        // task, each following graph edges (so topo positions increase
        // along a chain and the assigned members of a chain are always
        // a prefix).
        let mut chain_of = vec![usize::MAX; n];
        let mut chains: Vec<Vec<usize>> = Vec::new();
        for &t in &order {
            if chain_of[t.0] != usize::MAX {
                continue;
            }
            let id = chains.len();
            let mut chain = vec![t.0];
            chain_of[t.0] = id;
            let mut cur = t;
            'extend: loop {
                for &s in g.succs(cur) {
                    if chain_of[s.0] == usize::MAX {
                        chain_of[s.0] = id;
                        chain.push(s.0);
                        cur = s;
                        continue 'extend;
                    }
                }
                break;
            }
            chains.push(chain);
        }
        // Per-chain suffix sums of work and static per-task bounds, and
        // per-depth frontiers (index of the chain's first unassigned
        // member when the topo prefix of length k is assigned).
        let nc = chains.len();
        let mut chain_w_suffix: Vec<Vec<f64>> = Vec::with_capacity(nc);
        let mut chain_lb_suffix: Vec<Vec<f64>> = Vec::with_capacity(nc);
        for chain in &chains {
            let len = chain.len();
            let mut ws = vec![0.0f64; len + 1];
            let mut lbs = vec![0.0f64; len + 1];
            for j in (0..len).rev() {
                ws[j] = ws[j + 1] + g.weights()[chain[j]];
                lbs[j] = lbs[j + 1] + task_lb[chain[j]];
            }
            chain_w_suffix.push(ws);
            chain_lb_suffix.push(lbs);
        }
        let mut chain_frontier: Vec<Vec<usize>> = vec![vec![0usize; n + 2]; nc];
        for (c, chain) in chains.iter().enumerate() {
            let mut j = 0usize;
            for (k, slot) in chain_frontier[c].iter_mut().enumerate() {
                while j < chain.len() && pos[chain[j]] < k {
                    j += 1;
                }
                *slot = j;
            }
        }

        // Candidate mode order per task: the slowest possibly feasible
        // mode up to the fastest, in the arm's branching order.
        let mut cand: Vec<Vec<usize>> = Vec::with_capacity(n);
        for &lo in &min_mode_idx {
            let asc: Vec<usize> = (lo..m).collect();
            cand.push(match branch {
                BranchOrder::SlowestFirst => asc,
                BranchOrder::FastestFirst => asc.into_iter().rev().collect(),
            });
        }

        Ok(SearchCtx {
            g,
            deadline,
            p,
            speeds_list,
            n,
            m,
            order,
            pos,
            tail,
            est,
            suffix_lb,
            chains,
            chain_w_suffix,
            chain_lb_suffix,
            chain_frontier,
            s_top,
            s_bottom: modes.s_min(),
            chain_bound,
            branch,
            cand,
        })
    }

    /// Minimum achievable makespan (for [`SolveError::Infeasible`]).
    pub(crate) fn min_makespan(&self) -> f64 {
        critical_path_weight(self.g) / self.s_top
    }

    /// Map mode speeds back to mode indices (warm-start seeding).
    pub(crate) fn modes_of_speeds(&self, speeds: &[f64]) -> Vec<usize> {
        speeds
            .iter()
            .map(|&s| {
                self.speeds_list
                    .iter()
                    .position(|&v| (v - s).abs() <= 1e-9 * (1.0 + v.abs()))
                    .expect("warm-start speed is one of the modes")
            })
            .collect()
    }

    /// Per-task speeds of a mode-index assignment.
    pub(crate) fn speeds_of(&self, modes_idx: &[usize]) -> Vec<f64> {
        modes_idx.iter().map(|&j| self.speeds_list[j]).collect()
    }

    /// Energy lower bound for the unassigned suffix once the topo
    /// prefix of length `d1` is assigned (`ecl` holds the completion
    /// of every assigned task).
    fn rem_lb(&self, d1: usize, ecl: &[f64]) -> f64 {
        if !self.chain_bound {
            return self.suffix_lb[d1];
        }
        let mut b = 0.0f64;
        for c in 0..self.chains.len() {
            let j = self.chain_frontier[c][d1];
            let chain = &self.chains[c];
            if j >= chain.len() {
                continue;
            }
            let w_rem = self.chain_w_suffix[c][j];
            let lb_static = self.chain_lb_suffix[c][j];
            let f = chain[j];
            let mut start_f = self.est[f];
            for &q in self.g.preds(TaskId(f)) {
                if self.pos[q.0] < d1 {
                    start_f = start_f.max(ecl[q.0]);
                }
            }
            let window = self.deadline - start_f;
            let lb_chain = if window <= 0.0 {
                f64::INFINITY
            } else {
                self.p
                    .energy_at_speed(w_rem, (w_rem / window).max(self.s_bottom))
            };
            b += lb_static.max(lb_chain);
        }
        b
    }

    /// Admissible lower bound on *any* complete assignment (depth 0):
    /// the chain-cover bound when enabled, the static suffix sum
    /// otherwise. Used as the open bound of anytime results.
    pub(crate) fn root_lower_bound(&self) -> f64 {
        let ecl = vec![0.0f64; self.n];
        self.rem_lb(0, &ecl)
    }

    /// The Bobpp-style deterministic partition frontier: iteratively
    /// deepen a breadth-first expansion of the search tree — children
    /// in candidate order, prefixes in lexicographic order — until at
    /// least `target` live prefixes exist (or the tree is shallower).
    /// The result is a pure function of the instance, the branching
    /// order, and `incumbent_energy`, so two runs with the same
    /// partition target enumerate byte-identical partitions.
    ///
    /// Returns `(depth, prefixes)`; an empty frontier means the whole
    /// tree was pruned against `incumbent_energy` (the seed is
    /// optimal). Enumeration work is charged to `stats`.
    pub(crate) fn enumerate_frontier(
        &self,
        target: usize,
        incumbent_energy: f64,
        stats: &mut BnbStats,
    ) -> (usize, Vec<Vec<usize>>) {
        // Frontier growth is capped so a wide ladder cannot explode
        // the prefix list; `n − 1` keeps every partition a real
        // subtree (at least one free task below the split).
        const MAX_FRONTIER: usize = 4096;
        let max_depth = self.n.saturating_sub(1);
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
        let mut depth = 0usize;
        while depth < max_depth
            && !frontier.is_empty()
            && frontier.len() < target
            && frontier.len().saturating_mul(self.m) <= MAX_FRONTIER
        {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for prefix in &frontier {
                self.expand_prefix(prefix, incumbent_energy, &mut next, stats);
            }
            frontier = next;
            depth += 1;
        }
        (depth, frontier)
    }

    /// Expand one frontier prefix by one level, pruning children
    /// exactly as the subtree search would.
    fn expand_prefix(
        &self,
        prefix: &[usize],
        incumbent_energy: f64,
        out: &mut Vec<Vec<usize>>,
        stats: &mut BnbStats,
    ) {
        let g = self.g;
        let depth = prefix.len();
        let mut ecl = vec![0.0f64; self.n];
        let mut energy = 0.0f64;
        for (k, &mode_idx) in prefix.iter().enumerate() {
            let task = self.order[k];
            let i = task.0;
            let s = self.speeds_list[mode_idx];
            let start = g
                .preds(task)
                .iter()
                .map(|&q| ecl[q.0])
                .fold(0.0f64, f64::max);
            ecl[i] = start + g.weights()[i] / s;
            energy += self.p.energy_at_speed(g.weights()[i], s);
        }
        let task = self.order[depth];
        let i = task.0;
        let start = g
            .preds(task)
            .iter()
            .map(|&q| ecl[q.0])
            .fold(0.0f64, f64::max);
        for &mode_idx in &self.cand[i] {
            stats.nodes += 1;
            let s = self.speeds_list[mode_idx];
            let completion = start + g.weights()[i] / s;
            if completion + self.tail[i] > self.deadline * (1.0 + 1e-12) {
                stats.pruned_infeasible += 1;
                continue;
            }
            let e = energy + self.p.energy_at_speed(g.weights()[i], s);
            ecl[i] = completion;
            let rem_lb = self.rem_lb(depth + 1, &ecl);
            if e + rem_lb >= incumbent_energy * (1.0 - 1e-12) {
                stats.pruned_bound += 1;
                continue;
            }
            let mut child = Vec::with_capacity(depth + 1);
            child.extend_from_slice(prefix);
            child.push(mode_idx);
            out.push(child);
        }
    }

    /// Depth-first search of the subtree rooted at `prefix` (mode
    /// indices for the first `prefix.len()` tasks in topological
    /// order; empty = the whole tree).
    ///
    /// * `incumbent` — in/out: pruning bound and best assignment. Seed
    ///   `energy` with a known feasible value (round-up) to start with
    ///   a strong bound.
    /// * `shared` — optional cross-thread incumbent cell: improvements
    ///   are always published; the cell's bound additionally joins the
    ///   pruning bound only when `prune_shared` is set. Deterministic
    ///   partitioned search leaves `prune_shared` off — each subtree's
    ///   node count then depends only on `(prefix, seed, budget)`, not
    ///   on scheduling — while racing arms turn it on.
    /// * `stop` — optional cancellation flag, polled every 64 nodes.
    /// * `node_budget` — cap on nodes charged to `stats` by this call.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_subtree(
        &self,
        prefix: &[usize],
        node_budget: u64,
        incumbent: &mut Incumbent,
        shared: Option<&SharedIncumbent>,
        prune_shared: bool,
        stop: Option<&AtomicBool>,
        stats: &mut BnbStats,
    ) -> SubtreeOutcome {
        let g = self.g;
        let n = self.n;
        let base = prefix.len();
        let mut assign = vec![usize::MAX; n]; // mode index per task
        let mut ecl = vec![0.0f64; n]; // completion of assigned tasks
        let mut energy_prefix = vec![0.0f64; n + 1];
        // Replay the fixed prefix (already vetted by enumeration).
        for (k, &mode_idx) in prefix.iter().enumerate() {
            let task = self.order[k];
            let i = task.0;
            let s = self.speeds_list[mode_idx];
            let start = g
                .preds(task)
                .iter()
                .map(|&q| ecl[q.0])
                .fold(0.0f64, f64::max);
            ecl[i] = start + g.weights()[i] / s;
            assign[i] = mode_idx;
            energy_prefix[k + 1] = energy_prefix[k] + self.p.energy_at_speed(g.weights()[i], s);
        }

        struct Frame {
            /// Index into `cand[task]` tried next.
            next: usize,
        }
        let mut frames: Vec<Frame> = vec![Frame { next: 0 }];
        'search: while let Some(rel) = frames.len().checked_sub(1) {
            let depth = base + rel;
            if depth == n {
                // Complete assignment: record incumbent.
                if energy_prefix[n] < incumbent.energy {
                    incumbent.energy = energy_prefix[n];
                    incumbent.modes = Some(assign.clone());
                    if let Some(cell) = shared {
                        cell.publish(energy_prefix[n], &assign);
                    }
                }
                frames.pop();
                continue;
            }
            let task = self.order[depth];
            let i = task.0;
            loop {
                let frame = frames.last_mut().unwrap();
                let Some(&mode_idx) = self.cand[i].get(frame.next) else {
                    // Exhausted this task's modes: backtrack.
                    assign[i] = usize::MAX;
                    frames.pop();
                    continue 'search;
                };
                frame.next += 1;
                stats.nodes += 1;
                if stats.nodes > node_budget {
                    return SubtreeOutcome::Budget;
                }
                if let Some(flag) = stop {
                    if stats.nodes & 0x3F == 0 && flag.load(Ordering::Relaxed) {
                        return SubtreeOutcome::Stopped;
                    }
                }
                let s = self.speeds_list[mode_idx];
                let d = g.weights()[i] / s;
                let start = g
                    .preds(task)
                    .iter()
                    .map(|&q| ecl[q.0])
                    .fold(0.0f64, f64::max);
                let completion = start + d;
                // Deadline prune: this task's completion plus the
                // fastest possible tail must fit.
                if completion + self.tail[i] > self.deadline * (1.0 + 1e-12) {
                    stats.pruned_infeasible += 1;
                    continue;
                }
                let e = energy_prefix[depth] + self.p.energy_at_speed(g.weights()[i], s);
                // Energy lower bound for the unassigned suffix.
                ecl[i] = completion; // chain frontiers read it
                let rem_lb = self.rem_lb(depth + 1, &ecl);
                let bound = if prune_shared {
                    match shared {
                        Some(cell) => incumbent.energy.min(cell.bound()),
                        None => incumbent.energy,
                    }
                } else {
                    incumbent.energy
                };
                if e + rem_lb >= bound * (1.0 - 1e-12) {
                    stats.pruned_bound += 1;
                    if self.chain_bound || self.branch == BranchOrder::FastestFirst {
                        // The dynamic chain bound is not monotone in
                        // the mode index (a faster mode frees the
                        // chain windows), and fastest-first candidates
                        // get *cheaper* as the index advances: in both
                        // cases try the next candidate.
                        continue;
                    }
                    // Static bound, slowest-first: candidates are
                    // ordered by increasing speed, hence increasing
                    // energy — once a mode's bound fails, all faster
                    // modes fail too.
                    assign[i] = usize::MAX;
                    frames.pop();
                    continue 'search;
                }
                assign[i] = mode_idx;
                energy_prefix[depth + 1] = e;
                frames.push(Frame { next: 0 });
                continue 'search;
            }
        }
        SubtreeOutcome::Complete
    }

    /// Package a finished (or budget-tripped) search into the public
    /// result type.
    pub(crate) fn conclude(
        &self,
        incumbent: Incumbent,
        complete: bool,
        stats: BnbStats,
        relax_lb: f64,
        budget: u64,
    ) -> Result<ExactSolution, SolveError> {
        match incumbent.modes {
            Some(mi) => {
                let energy = incumbent.energy;
                let lower_bound = if complete {
                    energy
                } else {
                    relax_lb.max(self.root_lower_bound()).min(energy)
                };
                Ok(ExactSolution {
                    speeds: self.speeds_of(&mi),
                    energy,
                    stats,
                    complete,
                    lower_bound,
                })
            }
            None if complete => Err(SolveError::Infeasible {
                deadline: self.deadline,
                min_makespan: self.min_makespan(),
            }),
            None => Err(SolveError::BudgetExhausted {
                nodes: stats.nodes,
                budget,
            }),
        }
    }
}

/// Exact branch-and-bound (Theorem 4's problem).
///
/// Tasks are assigned in topological order, so each task's earliest
/// completion is known as soon as it is assigned. Pruning:
///
/// 1. **Deadline**: completion of the assigned prefix plus the
///    top-speed tail of the heaviest remaining path must fit in `D`;
/// 2. **Energy bound**: accumulated energy plus a per-task admissible
///    lower bound (each unassigned task at the slowest mode that can
///    possibly meet its window) must beat the incumbent.
///
/// The initial incumbent is the [`round_up`] approximation, so the
/// search starts with a provably near-optimal bound — and a
/// node-budget trip degrades to an **anytime** result carrying that
/// incumbent (or any improvement found before the trip) rather than
/// an error; see [`ExactSolution::complete`].
pub fn exact(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<ExactSolution, SolveError> {
    exact_with_config(g, deadline, modes, p, BnbConfig::default())
}

/// [`exact`] with an explicit node budget and optional warm start
/// (kept for convenience; [`exact_with_config`] exposes all knobs).
pub fn exact_with_budget(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    node_budget: u64,
    warm_start: bool,
) -> Result<ExactSolution, SolveError> {
    exact_with_config(
        g,
        deadline,
        modes,
        p,
        BnbConfig {
            node_budget,
            warm_start,
            ..Default::default()
        },
    )
}

/// [`exact`] with full branch-and-bound configuration.
///
/// When [`BnbConfig::chain_bound`] is on, the energy lower bound for
/// the unassigned suffix additionally uses a **chain-cover bound**:
/// the graph is covered once by disjoint directed paths (for execution
/// graphs these are essentially the per-processor chains), and the
/// remaining members of each chain must run *serially* between the
/// chain's dynamic earliest start (known exactly from the assigned
/// prefix) and the deadline — by convexity their energy is at least
/// `W·max(W/window, s₁)^{α−1}` for total remaining work `W`. This is
/// much tighter than per-task windows on serialized workloads.
///
/// A node-budget trip returns `Ok` with the feasible incumbent when
/// one exists (`complete == false`, `lower_bound` certifying the
/// gap); only a trip with **no** incumbent — no warm start and no
/// leaf reached — is [`SolveError::BudgetExhausted`].
pub fn exact_with_config(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    cfg: BnbConfig,
) -> Result<ExactSolution, SolveError> {
    let ctx = SearchCtx::new(
        g,
        deadline,
        modes,
        p,
        cfg.chain_bound,
        BranchOrder::SlowestFirst,
    )?;
    let mut stats = BnbStats::default();
    let mut incumbent = Incumbent::new();
    let mut relax_lb = 0.0f64;
    if cfg.warm_start {
        // Warm start: the Proposition 1(b) rounding (guaranteed
        // feasible), whose boxed relaxation also certifies a lower
        // bound for the anytime gap.
        if let Ok((speeds, lb)) = round_up_with_bound(g, deadline, modes, p, None) {
            incumbent.energy = continuous::energy_of_speeds(g, &speeds, p);
            incumbent.modes = Some(ctx.modes_of_speeds(&speeds));
            relax_lb = lb;
        }
    }
    let outcome = ctx.search_subtree(
        &[],
        cfg.node_budget,
        &mut incumbent,
        None,
        false,
        None,
        &mut stats,
    );
    ctx.conclude(
        incumbent,
        outcome == SubtreeOutcome::Complete,
        stats,
        relax_lb,
        cfg.node_budget,
    )
}

/// Pseudo-polynomial DP for **chains** (single processor): discretize
/// the deadline into `resolution` slots, round every mode duration
/// *up* to the grid (so the result is always feasible), and run a
/// knapsack-style DP over (task, time-budget).
///
/// Complexity `O(n · m · resolution)`. As `resolution → ∞` the energy
/// converges to the exact optimum from above; this is the standard
/// weak-NP-hardness picture for chains.
pub fn chain_dp(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    resolution: usize,
) -> Result<(Vec<f64>, f64), SolveError> {
    if !taskgraph::structure::is_chain(g) {
        return Err(SolveError::Unsupported("chain_dp requires a chain".into()));
    }
    continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
    assert!(resolution >= 1);
    let n = g.n();
    let _ = modes.m();
    let slot = deadline / resolution as f64;
    // Chain order = topological order.
    let order = topo_order(g);

    // dp[τ] = min energy to finish the processed prefix within τ slots.
    let inf = f64::INFINITY;
    let mut dp = vec![inf; resolution + 1];
    let mut choice = vec![vec![usize::MAX; resolution + 1]; n];
    dp[0] = 0.0;
    for (k, &t) in order.iter().enumerate() {
        let w = g.weight(t);
        let mut next = vec![inf; resolution + 1];
        for (j, &s) in modes.speeds().iter().enumerate() {
            let slots = ((w / s) / slot - 1e-9).ceil().max(1.0) as usize;
            if slots > resolution {
                continue;
            }
            let e = p.energy_at_speed(w, s);
            for tau in slots..=resolution {
                let cand = dp[tau - slots] + e;
                if cand < next[tau] {
                    next[tau] = cand;
                    choice[k][tau] = j;
                }
            }
        }
        dp = next;
    }
    if !dp[resolution].is_finite() {
        return Err(SolveError::Infeasible {
            deadline,
            min_makespan: g.total_work() / modes.s_max(),
        });
    }
    // Reconstruct.
    let mut speeds = vec![0.0; n];
    let mut tau = resolution;
    for k in (0..n).rev() {
        let t = order[k];
        let j = choice[k][tau];
        debug_assert_ne!(j, usize::MAX);
        let s = modes.speeds()[j];
        speeds[t.0] = s;
        let slots = ((g.weight(t) / s) / slot - 1e-9).ceil().max(1.0) as usize;
        tau -= slots;
    }
    let energy = continuous::energy_of_speeds(g, &speeds, p);
    Ok((speeds, energy))
}

/// Proposition 1(b): the rounding approximation for arbitrary mode
/// sets.
///
/// Solves the Continuous relaxation **boxed to `[s_1, s_m]`** (so the
/// relaxation optimum is a lower bound on the Discrete optimum, whose
/// speeds all lie in that box) to relative precision `1/K`, then
/// rounds each speed up to the next mode. Rounding up only shrinks
/// durations, so feasibility is preserved; each speed grows by at most
/// `1 + α/s_1`, giving the stated `(1 + α/s_1)² (1 + 1/K)²` energy
/// factor for the cubic power law.
pub fn round_up(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    round_up_prepared(&PreparedGraph::new(g), deadline, modes, p, precision_k)
}

/// [`round_up`] additionally returning a certified lower bound on the
/// Discrete optimum, derived from the boxed relaxation: every discrete
/// assignment is feasible for the boxed Continuous relaxation, so the
/// relaxation optimum lower-bounds the discrete optimum, and the
/// barrier solve is within `(1 + 1/K)^{α−1}` of the relaxation
/// optimum — `E_relaxed / (1 + 1/K)^{α−1}` is therefore a valid
/// bound. This is what prices the optimality gap of anytime
/// branch-and-bound results.
pub fn round_up_with_bound(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<(Vec<f64>, f64), SolveError> {
    let prep = PreparedGraph::new(g);
    let mut cold = continuous::SweepWarm::new();
    round_up_warm_inner(&prep, deadline, modes, p, precision_k, &mut cold)
}

/// [`round_up`] on a prepared graph (cached analysis for the boxed
/// Continuous relaxation underneath).
pub fn round_up_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    let mut cold = continuous::SweepWarm::new();
    round_up_warm(prep, deadline, modes, p, precision_k, &mut cold)
}

/// [`round_up_prepared`] with a [`continuous::SweepWarm`] chain threaded
/// through the boxed relaxation: a deadline sweep seeds each
/// barrier solve from the previous point's primal (see
/// `continuous::solve_general_warm`), which is what makes sampled
/// Discrete energy–deadline curves cheap.
pub fn round_up_warm(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
    warm: &mut continuous::SweepWarm,
) -> Result<Vec<f64>, SolveError> {
    round_up_warm_inner(prep, deadline, modes, p, precision_k, warm).map(|(speeds, _)| speeds)
}

fn round_up_warm_inner(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
    warm: &mut continuous::SweepWarm,
) -> Result<(Vec<f64>, f64), SolveError> {
    let g = prep.graph();
    let relaxed = if modes.m() == 1 {
        // Degenerate box: the only choice is the single mode.
        vec![modes.s_min(); g.n()]
    } else {
        continuous::solve_general_warm(
            prep,
            deadline,
            Some(modes.s_min()),
            Some(modes.s_max()),
            p,
            precision_k,
            warm,
        )?
    };
    let relax_energy = continuous::energy_of_speeds(g, &relaxed, p);
    // Discount the barrier's relative precision so the bound stays
    // below the relaxation optimum (conservative default when the
    // caller did not pin `K`).
    let k = precision_k.unwrap_or(1_000).max(1) as f64;
    let relax_lb = relax_energy / (1.0 + 1.0 / k).powf(p.alpha() - 1.0);
    let mut speeds = Vec::with_capacity(g.n());
    for &s in &relaxed {
        let rounded = modes.round_up(s).unwrap_or(modes.s_max());
        speeds.push(rounded);
    }
    // Feasibility paranoia: rounding up can only shrink durations, but
    // verify the makespan anyway (the relaxation is numerical).
    let durations: Vec<f64> = g
        .weights()
        .iter()
        .zip(&speeds)
        .map(|(&w, &s)| w / s)
        .collect();
    let mk = prep.makespan(&durations);
    if mk > deadline * (1.0 + 1e-6) {
        return Err(SolveError::Numerical(format!(
            "rounded schedule misses the deadline ({mk} > {deadline})"
        )));
    }
    Ok((speeds, relax_lb))
}

/// Classic DVFS greedy-slowdown baseline (not from the paper — a
/// standard practical heuristic included for comparison, see
/// experiment X2).
///
/// Start from every task at the **fastest** mode, then repeatedly pick
/// the single-task slowdown (one mode step) with the largest energy
/// saving that keeps the schedule feasible, until no slowdown fits the
/// deadline. `O(n²·m)` worst case — polynomial, hence (by Theorem 4)
/// necessarily suboptimal on some instances; the experiments quantify
/// the gap against [`exact`] and [`round_up`].
pub fn greedy_slowdown(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<Vec<f64>, SolveError> {
    continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
    let n = g.n();
    let speeds_list = modes.speeds();
    let m = speeds_list.len();
    // Mode index per task, fastest first.
    let mut idx = vec![m - 1; n];
    let durations = |idx: &[usize]| -> Vec<f64> {
        (0..n)
            .map(|i| g.weights()[i] / speeds_list[idx[i]])
            .collect()
    };
    if taskgraph::analysis::makespan(g, &durations(&idx)) > deadline * (1.0 + 1e-12) {
        return Err(SolveError::Infeasible {
            deadline,
            min_makespan: critical_path_weight(g) / modes.s_max(),
        });
    }
    loop {
        // Best single-step slowdown.
        let mut best: Option<(usize, f64)> = None;
        let base_durs = durations(&idx);
        let slackv = taskgraph::analysis::slack(g, &base_durs, deadline);
        for i in 0..n {
            if idx[i] == 0 {
                continue;
            }
            let s_now = speeds_list[idx[i]];
            let s_next = speeds_list[idx[i] - 1];
            let extra = g.weights()[i] / s_next - g.weights()[i] / s_now;
            // Cheap necessary test first: the task's own slack.
            if extra > slackv[i] * (1.0 + 1e-12) + 1e-12 {
                continue;
            }
            let gain = p.energy_at_speed(g.weights()[i], s_now)
                - p.energy_at_speed(g.weights()[i], s_next);
            match best {
                Some((_, g0)) if g0 >= gain => {}
                _ => best = Some((i, gain)),
            }
        }
        let Some((i, _)) = best else { break };
        idx[i] -= 1;
        // The per-task slack test is exact for a single change
        // (lengthening one task by no more than its total slack keeps
        // every path within the deadline), so no rollback is needed.
        debug_assert!(
            taskgraph::analysis::makespan(g, &durations(&idx)) <= deadline * (1.0 + 1e-9)
        );
    }
    Ok(idx.into_iter().map(|j| speeds_list[j]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    fn modes(v: &[f64]) -> DiscreteModes {
        DiscreteModes::new(v).unwrap()
    }

    #[test]
    fn exact_single_task_picks_slowest_feasible_mode() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0, 4.0]);
        // Deadline 2.5: speed must be ≥ 1.6 → mode 2.
        let sol = exact(&g, 2.5, &ms, P).unwrap();
        assert_eq!(sol.speeds, vec![2.0]);
        assert!((sol.energy - 16.0).abs() < 1e-9);
        assert!(sol.complete);
        assert_eq!(sol.gap(), 0.0);
    }

    #[test]
    fn exact_two_task_chain_enumerates_combinations() {
        // Same instance as the Vdd test: best single-speed assignment
        // is (3,1) or (1,3) with energy 30.
        let g = generators::chain(&[3.0, 3.0]);
        let ms = modes(&[1.0, 3.0]);
        let sol = exact(&g, 4.0, &ms, P).unwrap();
        assert!((sol.energy - 30.0).abs() < 1e-9, "energy {}", sol.energy);
        let mut sp = sol.speeds.clone();
        sp.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sp, vec![1.0, 3.0]);
    }

    #[test]
    fn exact_matches_brute_force_on_diamond() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let sol = exact(&g, d, &ms, P).unwrap();
        // Brute force all 3^4 assignments.
        let mut best = f64::INFINITY;
        let sp = ms.speeds();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for e in 0..3 {
                        let speeds = [sp[a], sp[b], sp[c], sp[e]];
                        let durations: Vec<f64> = g
                            .weights()
                            .iter()
                            .zip(&speeds)
                            .map(|(&w, &s)| w / s)
                            .collect();
                        if taskgraph::analysis::makespan(&g, &durations) <= d + 1e-12 {
                            let en = continuous::energy_of_speeds(&g, &speeds, P);
                            best = best.min(en);
                        }
                    }
                }
            }
        }
        assert!(
            (sol.energy - best).abs() < 1e-9,
            "bnb {} vs brute force {}",
            sol.energy,
            best
        );
    }

    #[test]
    fn exact_dominates_continuous_relaxation() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let sol = exact(&g, d, &ms, P).unwrap();
        let cont = continuous::solve(&g, d, Some(ms.s_max()), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        assert!(sol.energy >= e_cont * (1.0 - 1e-9));
    }

    #[test]
    fn exact_infeasible_detected() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            exact(&g, 1.5, &ms, P),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn round_up_is_feasible_and_within_bound() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.4, 2.0, 2.6]);
        let d = 5.0;
        let speeds = round_up(&g, d, &ms, P, Some(100)).unwrap();
        for &s in &speeds {
            assert!(ms.contains(s), "{s} is not a mode");
        }
        let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
        let opt = exact(&g, d, &ms, P).unwrap().energy;
        let bound = (1.0 + ms.max_gap() / ms.s_min()).powi(2) * (1.0 + 1.0 / 100.0f64).powi(2);
        assert!(
            e_alg <= opt * bound * (1.0 + 1e-6),
            "ratio {} exceeds bound {bound}",
            e_alg / opt
        );
        assert!(e_alg >= opt * (1.0 - 1e-9), "cannot beat the optimum");
    }

    #[test]
    fn round_up_bound_lower_bounds_the_optimum() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.4, 2.0, 2.6]);
        let d = 5.0;
        let (speeds, lb) = round_up_with_bound(&g, d, &ms, P, Some(1000)).unwrap();
        let opt = exact(&g, d, &ms, P).unwrap().energy;
        assert!(lb <= opt * (1.0 + 1e-9), "bound {lb} exceeds optimum {opt}");
        let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
        assert!(lb <= e_alg, "bound must not exceed its own rounding");
        assert!(lb > 0.0);
    }

    #[test]
    fn round_up_single_mode() {
        let g = generators::chain(&[2.0, 2.0]);
        let ms = modes(&[2.0]);
        let speeds = round_up(&g, 2.0, &ms, P, None).unwrap();
        assert_eq!(speeds, vec![2.0, 2.0]);
        // Too tight for the single mode.
        assert!(round_up(&g, 1.5, &ms, P, None).is_err());
    }

    #[test]
    fn chain_dp_matches_exact_at_fine_resolution() {
        let g = generators::chain(&[3.0, 2.0, 4.0]);
        let ms = modes(&[1.0, 2.0, 3.0]);
        let d = 6.0;
        let (speeds, energy) = chain_dp(&g, d, &ms, P, 6000).unwrap();
        // Feasible.
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d + 1e-9);
        let exact_e = exact(&g, d, &ms, P).unwrap().energy;
        assert!(
            energy <= exact_e * 1.02 + 1e-9 && energy >= exact_e * (1.0 - 1e-9),
            "dp {energy} vs exact {exact_e}"
        );
    }

    #[test]
    fn chain_dp_rejects_non_chains() {
        let g = generators::diamond([1.0; 4]);
        let ms = modes(&[1.0]);
        assert!(matches!(
            chain_dp(&g, 10.0, &ms, P, 100),
            Err(SolveError::Unsupported(_))
        ));
    }

    #[test]
    fn chain_dp_infeasible() {
        let g = generators::chain(&[4.0, 4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            chain_dp(&g, 3.0, &ms, P, 300),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn chain_bound_preserves_optimum() {
        // The chain-cover bound must be admissible: switching it on
        // and off gives the same optimal energy, only different node
        // counts.
        let g = taskgraph::TaskGraph::new(
            vec![1.0, 2.0, 3.0, 1.5, 2.5, 1.0],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)],
        )
        .unwrap();
        let ms = modes(&[0.6, 1.2, 1.8, 2.4, 3.0]);
        let d = 1.4 * taskgraph::analysis::critical_path_weight(&g) / ms.s_max();
        let on = exact_with_config(
            &g,
            d,
            &ms,
            P,
            BnbConfig {
                chain_bound: true,
                ..Default::default()
            },
        )
        .unwrap();
        let off = exact_with_config(
            &g,
            d,
            &ms,
            P,
            BnbConfig {
                chain_bound: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (on.energy - off.energy).abs() < 1e-9 * on.energy,
            "{} vs {}",
            on.energy,
            off.energy
        );
    }

    #[test]
    fn node_budget_trip_without_incumbent_is_budget_exhausted() {
        // A partition chain large enough to exceed a tiny budget; no
        // warm start and no leaf reachable in 10 nodes → the search
        // holds nothing to return, and says so structurally (not as a
        // misclassified Numerical failure).
        let values: Vec<f64> = (0..14).map(|i| 1.0 + (i as f64) * 0.37).collect();
        let (g, d) = generators::partition_chain(&values);
        let ms = modes(&[1.0, 2.0]);
        let res = exact_with_budget(&g, d, &ms, P, 10, false);
        assert!(matches!(
            res,
            Err(SolveError::BudgetExhausted {
                nodes: 11,
                budget: 10
            })
        ));
    }

    #[test]
    fn node_budget_trip_with_warm_start_returns_anytime_incumbent() {
        // Same instance, warm-started: the round-up incumbent is a
        // feasible schedule the budget trip must NOT discard.
        let values: Vec<f64> = (0..14).map(|i| 1.0 + (i as f64) * 0.37).collect();
        let (g, d) = generators::partition_chain(&values);
        let ms = modes(&[1.0, 2.0]);
        let sol = exact_with_budget(&g, d, &ms, P, 10, true).unwrap();
        assert!(!sol.complete);
        // Feasible, and no worse than the round-up seed.
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&sol.speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-9));
        let seed = round_up(&g, d, &ms, P, None).unwrap();
        let e_seed = continuous::energy_of_speeds(&g, &seed, P);
        assert!(sol.energy <= e_seed * (1.0 + 1e-12));
        // The gap is certified: lower bound below the incumbent, and
        // below the true optimum.
        assert!(sol.lower_bound <= sol.energy);
        assert!(sol.gap() >= 0.0);
        let opt = exact(&g, d, &ms, P).unwrap();
        assert!(opt.complete);
        assert!(sol.lower_bound <= opt.energy * (1.0 + 1e-9));
        assert!(sol.energy >= opt.energy * (1.0 - 1e-9));
    }

    #[test]
    fn frontier_enumeration_is_deterministic_and_partitions_the_space() {
        // The Bobpp-style frontier: two enumerations agree exactly,
        // and searching every subtree reproduces the sequential
        // optimum.
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let ctx = SearchCtx::new(&g, d, &ms, P, true, BranchOrder::SlowestFirst).unwrap();
        let mut s1 = BnbStats::default();
        let mut s2 = BnbStats::default();
        let (d1, f1) = ctx.enumerate_frontier(4, f64::INFINITY, &mut s1);
        let (d2, f2) = ctx.enumerate_frontier(4, f64::INFINITY, &mut s2);
        assert_eq!(d1, d2);
        assert_eq!(f1, f2);
        assert_eq!(s1, s2);
        assert!(f1.len() >= 4 || d1 == g.n() - 1);

        let mut best = Incumbent::new();
        let mut stats = BnbStats::default();
        for prefix in &f1 {
            let out =
                ctx.search_subtree(prefix, u64::MAX, &mut best, None, false, None, &mut stats);
            assert_eq!(out, SubtreeOutcome::Complete);
        }
        let seq = exact(&g, d, &ms, P).unwrap();
        assert!((best.energy - seq.energy).abs() < 1e-12 * seq.energy);
    }

    #[test]
    fn greedy_slowdown_is_feasible_and_dominated_by_exact() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let speeds = greedy_slowdown(&g, d, &ms, P).unwrap();
        for &s in &speeds {
            assert!(ms.contains(s));
        }
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-9));
        let e_greedy = continuous::energy_of_speeds(&g, &speeds, P);
        let e_exact = exact(&g, d, &ms, P).unwrap().energy;
        assert!(e_greedy >= e_exact * (1.0 - 1e-9));
    }

    #[test]
    fn greedy_slowdown_reaches_floor_on_loose_deadlines() {
        let g = generators::chain(&[1.0, 2.0]);
        let ms = modes(&[0.5, 1.0, 2.0]);
        let speeds = greedy_slowdown(&g, 100.0, &ms, P).unwrap();
        assert_eq!(speeds, vec![0.5, 0.5]);
    }

    #[test]
    fn greedy_slowdown_infeasible() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            greedy_slowdown(&g, 1.0, &ms, P),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn partition_instance_solved_exactly() {
        // {3,1,1,2,2,1}: total 10, perfect partition exists (5/5).
        let (g, d) = generators::partition_chain(&[3.0, 1.0, 1.0, 2.0, 2.0, 1.0]);
        let ms = modes(&[1.0, 2.0]);
        let sol = exact(&g, d, &ms, P).unwrap();
        // Optimal: fast set of weight exactly 5 → energy 4·5 + 1·5 = 25.
        assert!((sol.energy - 25.0).abs() < 1e-9, "energy {}", sol.energy);
    }

    #[test]
    fn shared_incumbent_cas_min_keeps_the_best() {
        let cell = SharedIncumbent::new();
        assert!(cell.bound().is_infinite());
        cell.publish(5.0, &[1, 1]);
        cell.publish(7.0, &[2, 2]); // worse: ignored
        cell.publish(4.0, &[0, 1]);
        assert_eq!(cell.bound(), 4.0);
        let (e, m) = cell.take_best().unwrap();
        assert_eq!(e, 4.0);
        assert_eq!(m, vec![0, 1]);
    }
}
