//! Discrete-model solvers (Theorem 4: NP-complete; Proposition 1(b):
//! rounding approximation).
//!
//! * [`exact`] — branch-and-bound over per-task mode choices. Worst
//!   case exponential, as Theorem 4's NP-completeness predicts;
//!   experiment T4 measures the blow-up on PARTITION-style instances.
//! * [`chain_dp`] — pseudo-polynomial dynamic program for chains with
//!   a discretized time budget (NP-completeness is *weak* for chains).
//! * [`round_up`] — Proposition 1(b): solve the Continuous relaxation
//!   boxed to `[s_1, s_m]` to precision `1/K` and round each speed up
//!   to the next mode; approximation factor
//!   `(1 + α/s_1)^{α_pow−1} · (1 + 1/K)^{α_pow−1}` where
//!   `α = max_i (s_{i+1} − s_i)` (for the paper's cubic power law the
//!   exponent is 2, matching the stated `(1+α/s₁)²(1+1/K)²`).

use crate::continuous;
use crate::error::SolveError;
use models::{DiscreteModes, PowerLaw};
use taskgraph::analysis::{critical_path_weight, topo_order};
use taskgraph::{PreparedGraph, TaskGraph};

/// Branch-and-bound search statistics (experiment T4 evidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Nodes cut by the deadline-feasibility bound.
    pub pruned_infeasible: u64,
    /// Nodes cut by the energy lower bound.
    pub pruned_bound: u64,
}

/// Result of an exact Discrete solve.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal per-task speeds (each one of the modes).
    pub speeds: Vec<f64>,
    /// Optimal energy.
    pub energy: f64,
    /// Search statistics.
    pub stats: BnbStats,
}

/// Hard cap on explored nodes before giving up (exponential searches
/// must fail loudly rather than hang).
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Branch-and-bound configuration (the knobs ablated in
/// `benches/discrete.rs`).
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Hard cap on explored nodes.
    pub node_budget: u64,
    /// Seed the incumbent with the Proposition 1(b) rounding.
    pub warm_start: bool,
    /// Use the dynamic chain-cover lower bound in addition to the
    /// static per-task bound (see [`exact_with_config`]).
    pub chain_bound: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            node_budget: DEFAULT_NODE_BUDGET,
            warm_start: true,
            chain_bound: true,
        }
    }
}

/// Exact branch-and-bound (Theorem 4's problem).
///
/// Tasks are assigned in topological order, so each task's earliest
/// completion is known as soon as it is assigned. Pruning:
///
/// 1. **Deadline**: completion of the assigned prefix plus the
///    top-speed tail of the heaviest remaining path must fit in `D`;
/// 2. **Energy bound**: accumulated energy plus a per-task admissible
///    lower bound (each unassigned task at the slowest mode that can
///    possibly meet its window) must beat the incumbent.
///
/// The initial incumbent is the [`round_up`] approximation, so the
/// search starts with a provably near-optimal bound.
pub fn exact(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<ExactSolution, SolveError> {
    exact_with_config(g, deadline, modes, p, BnbConfig::default())
}

/// [`exact`] with an explicit node budget and optional warm start
/// (kept for convenience; [`exact_with_config`] exposes all knobs).
pub fn exact_with_budget(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    node_budget: u64,
    warm_start: bool,
) -> Result<ExactSolution, SolveError> {
    exact_with_config(
        g,
        deadline,
        modes,
        p,
        BnbConfig {
            node_budget,
            warm_start,
            ..Default::default()
        },
    )
}

/// [`exact`] with full branch-and-bound configuration.
///
/// When [`BnbConfig::chain_bound`] is on, the energy lower bound for
/// the unassigned suffix additionally uses a **chain-cover bound**:
/// the graph is covered once by disjoint directed paths (for execution
/// graphs these are essentially the per-processor chains), and the
/// remaining members of each chain must run *serially* between the
/// chain's dynamic earliest start (known exactly from the assigned
/// prefix) and the deadline — by convexity their energy is at least
/// `W·max(W/window, s₁)^{α−1}` for total remaining work `W`. This is
/// much tighter than per-task windows on serialized workloads.
pub fn exact_with_config(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    cfg: BnbConfig,
) -> Result<ExactSolution, SolveError> {
    continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
    let n = g.n();
    let order = topo_order(g);
    let speeds_list = modes.speeds();
    let m = speeds_list.len();

    // Position of each task in the topological order.
    let mut pos = vec![0usize; n];
    for (k, &t) in order.iter().enumerate() {
        pos[t.0] = k;
    }

    // Top-speed tail below each task: heaviest path weight from the
    // task (exclusive) to a sink, divided by s_m.
    let s_top = modes.s_max();
    let mut tail = vec![0.0f64; n];
    for &t in order.iter().rev() {
        tail[t.0] = g
            .succs(t)
            .iter()
            .map(|&s| tail[s.0] + g.weight(s) / s_top)
            .fold(0.0f64, f64::max);
    }
    // Earliest possible start (everything at top speed) per task.
    let mut est = vec![0.0f64; n];
    for &t in &order {
        est[t.0] = g
            .preds(t)
            .iter()
            .map(|&q| est[q.0] + g.weight(q) / s_top)
            .fold(0.0f64, f64::max);
    }

    // Per-task energy lower bound: the slowest mode that fits the
    // task's widest possible window [est, D − tail].
    let mut task_lb = vec![0.0f64; n];
    let mut min_mode_idx = vec![0usize; n];
    for i in 0..n {
        let window = deadline - tail[i] - est[i];
        if window <= 0.0 {
            return Err(SolveError::Infeasible {
                deadline,
                min_makespan: critical_path_weight(g) / s_top,
            });
        }
        let need = g.weights()[i] / window;
        let s_lb = modes.round_up(need).ok_or(SolveError::Infeasible {
            deadline,
            min_makespan: critical_path_weight(g) / s_top,
        })?;
        min_mode_idx[i] = speeds_list.iter().position(|&s| s >= s_lb - 1e-12).unwrap();
        task_lb[i] = p.energy_at_speed(g.weights()[i], s_lb);
    }
    // Suffix sums of the per-task lower bounds along the topo order.
    let mut suffix_lb = vec![0.0f64; n + 1];
    for k in (0..n).rev() {
        suffix_lb[k] = suffix_lb[k + 1] + task_lb[order[k].0];
    }

    // Greedy chain cover: disjoint directed paths covering every task,
    // each following graph edges (so topo positions increase along a
    // chain and the assigned members of a chain are always a prefix).
    let mut chain_of = vec![usize::MAX; n];
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for &t in &order {
        if chain_of[t.0] != usize::MAX {
            continue;
        }
        let id = chains.len();
        let mut chain = vec![t.0];
        chain_of[t.0] = id;
        let mut cur = t;
        'extend: loop {
            for &s in g.succs(cur) {
                if chain_of[s.0] == usize::MAX {
                    chain_of[s.0] = id;
                    chain.push(s.0);
                    cur = s;
                    continue 'extend;
                }
            }
            break;
        }
        chains.push(chain);
    }
    // Per-chain suffix sums of work and static per-task bounds, and
    // per-depth frontiers (index of the chain's first unassigned
    // member when the topo prefix of length k is assigned).
    let nc = chains.len();
    let mut chain_w_suffix: Vec<Vec<f64>> = Vec::with_capacity(nc);
    let mut chain_lb_suffix: Vec<Vec<f64>> = Vec::with_capacity(nc);
    for chain in &chains {
        let len = chain.len();
        let mut ws = vec![0.0f64; len + 1];
        let mut lbs = vec![0.0f64; len + 1];
        for j in (0..len).rev() {
            ws[j] = ws[j + 1] + g.weights()[chain[j]];
            lbs[j] = lbs[j + 1] + task_lb[chain[j]];
        }
        chain_w_suffix.push(ws);
        chain_lb_suffix.push(lbs);
    }
    let mut chain_frontier: Vec<Vec<usize>> = vec![vec![0usize; n + 2]; nc];
    for (c, chain) in chains.iter().enumerate() {
        let mut j = 0usize;
        for (k, slot) in chain_frontier[c].iter_mut().enumerate() {
            while j < chain.len() && pos[chain[j]] < k {
                j += 1;
            }
            *slot = j;
        }
    }
    let s_bottom = modes.s_min();

    // Warm start: the Proposition 1(b) rounding (guaranteed feasible).
    let mut best_energy = f64::INFINITY;
    let mut best_speeds: Option<Vec<f64>> = None;
    if cfg.warm_start {
        if let Ok(speeds) = round_up(g, deadline, modes, p, None) {
            best_energy = continuous::energy_of_speeds(g, &speeds, p);
            best_speeds = Some(speeds);
        }
    }

    // Candidate mode order per task: start from the cheapest possibly
    // feasible mode (slowest that fits the widest window), faster ones
    // after.
    let mut cand: Vec<Vec<usize>> = Vec::with_capacity(n);
    for &lo in &min_mode_idx {
        cand.push((lo..m).collect());
    }

    // Iterative DFS over (depth, mode-choice) with explicit stacks to
    // allow deep graphs.
    struct Frame {
        /// Index into `cand[task]` tried next.
        next: usize,
    }
    let mut stats = BnbStats {
        nodes: 0,
        pruned_infeasible: 0,
        pruned_bound: 0,
    };
    let mut assign = vec![usize::MAX; n]; // mode index per task
    let mut ecl = vec![0.0f64; n]; // completion of assigned tasks
    let mut energy_prefix = vec![0.0f64; n + 1];
    let mut frames: Vec<Frame> = vec![Frame { next: 0 }];

    'search: while let Some(depth) = frames.len().checked_sub(1) {
        if depth == n {
            // Complete assignment: record incumbent.
            if energy_prefix[n] < best_energy {
                best_energy = energy_prefix[n];
                let mut speeds = vec![0.0; n];
                for i in 0..n {
                    speeds[i] = speeds_list[assign[i]];
                }
                best_speeds = Some(speeds);
            }
            frames.pop();
            continue;
        }
        let task = order[depth];
        let i = task.0;
        loop {
            let frame = frames.last_mut().unwrap();
            let Some(&mode_idx) = cand[i].get(frame.next) else {
                // Exhausted this task's modes: backtrack.
                assign[i] = usize::MAX;
                frames.pop();
                continue 'search;
            };
            frame.next += 1;
            stats.nodes += 1;
            if stats.nodes > cfg.node_budget {
                return Err(SolveError::Numerical(format!(
                    "branch-and-bound node budget {} exhausted",
                    cfg.node_budget
                )));
            }
            let s = speeds_list[mode_idx];
            let d = g.weights()[i] / s;
            let start = g
                .preds(task)
                .iter()
                .map(|&q| ecl[q.0])
                .fold(0.0f64, f64::max);
            let completion = start + d;
            // Deadline prune: this task's completion plus the fastest
            // possible tail must fit.
            if completion + tail[i] > deadline * (1.0 + 1e-12) {
                stats.pruned_infeasible += 1;
                continue;
            }
            let e = energy_prefix[depth] + p.energy_at_speed(g.weights()[i], s);
            // Energy lower bound for the unassigned suffix.
            ecl[i] = completion; // chain frontiers read it
            let rem_lb = if cfg.chain_bound {
                let d1 = depth + 1;
                let mut b = 0.0f64;
                for c in 0..nc {
                    let j = chain_frontier[c][d1];
                    let chain = &chains[c];
                    if j >= chain.len() {
                        continue;
                    }
                    let w_rem = chain_w_suffix[c][j];
                    let lb_static = chain_lb_suffix[c][j];
                    let f = chain[j];
                    let mut start_f = est[f];
                    for &q in g.preds(taskgraph::TaskId(f)) {
                        if pos[q.0] < d1 {
                            start_f = start_f.max(ecl[q.0]);
                        }
                    }
                    let window = deadline - start_f;
                    let lb_chain = if window <= 0.0 {
                        f64::INFINITY
                    } else {
                        p.energy_at_speed(w_rem, (w_rem / window).max(s_bottom))
                    };
                    b += lb_static.max(lb_chain);
                }
                b
            } else {
                suffix_lb[depth + 1]
            };
            if e + rem_lb >= best_energy * (1.0 - 1e-12) {
                stats.pruned_bound += 1;
                if cfg.chain_bound {
                    // A faster mode frees the chain windows, so the
                    // dynamic bound is not monotone in the mode index:
                    // try the next candidate instead of backtracking.
                    continue;
                }
                // Static bound: candidates are ordered by increasing
                // speed, hence increasing energy — once a mode's bound
                // fails, all faster modes fail too.
                assign[i] = usize::MAX;
                frames.pop();
                continue 'search;
            }
            assign[i] = mode_idx;
            energy_prefix[depth + 1] = e;
            frames.push(Frame { next: 0 });
            continue 'search;
        }
    }

    match best_speeds {
        Some(speeds) => Ok(ExactSolution {
            speeds,
            energy: best_energy,
            stats,
        }),
        None => Err(SolveError::Infeasible {
            deadline,
            min_makespan: critical_path_weight(g) / s_top,
        }),
    }
}

/// Pseudo-polynomial DP for **chains** (single processor): discretize
/// the deadline into `resolution` slots, round every mode duration
/// *up* to the grid (so the result is always feasible), and run a
/// knapsack-style DP over (task, time-budget).
///
/// Complexity `O(n · m · resolution)`. As `resolution → ∞` the energy
/// converges to the exact optimum from above; this is the standard
/// weak-NP-hardness picture for chains.
pub fn chain_dp(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    resolution: usize,
) -> Result<(Vec<f64>, f64), SolveError> {
    if !taskgraph::structure::is_chain(g) {
        return Err(SolveError::Unsupported("chain_dp requires a chain".into()));
    }
    continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
    assert!(resolution >= 1);
    let n = g.n();
    let _ = modes.m();
    let slot = deadline / resolution as f64;
    // Chain order = topological order.
    let order = topo_order(g);

    // dp[τ] = min energy to finish the processed prefix within τ slots.
    let inf = f64::INFINITY;
    let mut dp = vec![inf; resolution + 1];
    let mut choice = vec![vec![usize::MAX; resolution + 1]; n];
    dp[0] = 0.0;
    for (k, &t) in order.iter().enumerate() {
        let w = g.weight(t);
        let mut next = vec![inf; resolution + 1];
        for (j, &s) in modes.speeds().iter().enumerate() {
            let slots = ((w / s) / slot - 1e-9).ceil().max(1.0) as usize;
            if slots > resolution {
                continue;
            }
            let e = p.energy_at_speed(w, s);
            for tau in slots..=resolution {
                let cand = dp[tau - slots] + e;
                if cand < next[tau] {
                    next[tau] = cand;
                    choice[k][tau] = j;
                }
            }
        }
        dp = next;
    }
    if !dp[resolution].is_finite() {
        return Err(SolveError::Infeasible {
            deadline,
            min_makespan: g.total_work() / modes.s_max(),
        });
    }
    // Reconstruct.
    let mut speeds = vec![0.0; n];
    let mut tau = resolution;
    for k in (0..n).rev() {
        let t = order[k];
        let j = choice[k][tau];
        debug_assert_ne!(j, usize::MAX);
        let s = modes.speeds()[j];
        speeds[t.0] = s;
        let slots = ((g.weight(t) / s) / slot - 1e-9).ceil().max(1.0) as usize;
        tau -= slots;
    }
    let energy = continuous::energy_of_speeds(g, &speeds, p);
    Ok((speeds, energy))
}

/// Proposition 1(b): the rounding approximation for arbitrary mode
/// sets.
///
/// Solves the Continuous relaxation **boxed to `[s_1, s_m]`** (so the
/// relaxation optimum is a lower bound on the Discrete optimum, whose
/// speeds all lie in that box) to relative precision `1/K`, then
/// rounds each speed up to the next mode. Rounding up only shrinks
/// durations, so feasibility is preserved; each speed grows by at most
/// `1 + α/s_1`, giving the stated `(1 + α/s_1)² (1 + 1/K)²` energy
/// factor for the cubic power law.
pub fn round_up(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    round_up_prepared(&PreparedGraph::new(g), deadline, modes, p, precision_k)
}

/// [`round_up`] on a prepared graph (cached analysis for the boxed
/// Continuous relaxation underneath).
pub fn round_up_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
) -> Result<Vec<f64>, SolveError> {
    let mut cold = continuous::SweepWarm::new();
    round_up_warm(prep, deadline, modes, p, precision_k, &mut cold)
}

/// [`round_up_prepared`] with a [`continuous::SweepWarm`] chain
/// threaded through the boxed relaxation: a deadline sweep seeds each
/// barrier solve from the previous point's primal (see
/// `continuous::solve_general_warm`), which is what makes sampled
/// Discrete energy–deadline curves cheap.
pub fn round_up_warm(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
    precision_k: Option<u32>,
    warm: &mut continuous::SweepWarm,
) -> Result<Vec<f64>, SolveError> {
    let g = prep.graph();
    let relaxed = if modes.m() == 1 {
        // Degenerate box: the only choice is the single mode.
        vec![modes.s_min(); g.n()]
    } else {
        continuous::solve_general_warm(
            prep,
            deadline,
            Some(modes.s_min()),
            Some(modes.s_max()),
            p,
            precision_k,
            warm,
        )?
    };
    let mut speeds = Vec::with_capacity(g.n());
    for &s in &relaxed {
        let rounded = modes.round_up(s).unwrap_or(modes.s_max());
        speeds.push(rounded);
    }
    // Feasibility paranoia: rounding up can only shrink durations, but
    // verify the makespan anyway (the relaxation is numerical).
    let durations: Vec<f64> = g
        .weights()
        .iter()
        .zip(&speeds)
        .map(|(&w, &s)| w / s)
        .collect();
    let mk = prep.makespan(&durations);
    if mk > deadline * (1.0 + 1e-6) {
        return Err(SolveError::Numerical(format!(
            "rounded schedule misses the deadline ({mk} > {deadline})"
        )));
    }
    Ok(speeds)
}

/// Classic DVFS greedy-slowdown baseline (not from the paper — a
/// standard practical heuristic included for comparison, see
/// experiment X2).
///
/// Start from every task at the **fastest** mode, then repeatedly pick
/// the single-task slowdown (one mode step) with the largest energy
/// saving that keeps the schedule feasible, until no slowdown fits the
/// deadline. `O(n²·m)` worst case — polynomial, hence (by Theorem 4)
/// necessarily suboptimal on some instances; the experiments quantify
/// the gap against [`exact`] and [`round_up`].
pub fn greedy_slowdown(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<Vec<f64>, SolveError> {
    continuous::check_feasible(g, deadline, Some(modes.s_max()))?;
    let n = g.n();
    let speeds_list = modes.speeds();
    let m = speeds_list.len();
    // Mode index per task, fastest first.
    let mut idx = vec![m - 1; n];
    let durations = |idx: &[usize]| -> Vec<f64> {
        (0..n)
            .map(|i| g.weights()[i] / speeds_list[idx[i]])
            .collect()
    };
    if taskgraph::analysis::makespan(g, &durations(&idx)) > deadline * (1.0 + 1e-12) {
        return Err(SolveError::Infeasible {
            deadline,
            min_makespan: critical_path_weight(g) / modes.s_max(),
        });
    }
    loop {
        // Best single-step slowdown.
        let mut best: Option<(usize, f64)> = None;
        let base_durs = durations(&idx);
        let slackv = taskgraph::analysis::slack(g, &base_durs, deadline);
        for i in 0..n {
            if idx[i] == 0 {
                continue;
            }
            let s_now = speeds_list[idx[i]];
            let s_next = speeds_list[idx[i] - 1];
            let extra = g.weights()[i] / s_next - g.weights()[i] / s_now;
            // Cheap necessary test first: the task's own slack.
            if extra > slackv[i] * (1.0 + 1e-12) + 1e-12 {
                continue;
            }
            let gain = p.energy_at_speed(g.weights()[i], s_now)
                - p.energy_at_speed(g.weights()[i], s_next);
            match best {
                Some((_, g0)) if g0 >= gain => {}
                _ => best = Some((i, gain)),
            }
        }
        let Some((i, _)) = best else { break };
        idx[i] -= 1;
        // The per-task slack test is exact for a single change
        // (lengthening one task by no more than its total slack keeps
        // every path within the deadline), so no rollback is needed.
        debug_assert!(
            taskgraph::analysis::makespan(g, &durations(&idx)) <= deadline * (1.0 + 1e-9)
        );
    }
    Ok(idx.into_iter().map(|j| speeds_list[j]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    fn modes(v: &[f64]) -> DiscreteModes {
        DiscreteModes::new(v).unwrap()
    }

    #[test]
    fn exact_single_task_picks_slowest_feasible_mode() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0, 4.0]);
        // Deadline 2.5: speed must be ≥ 1.6 → mode 2.
        let sol = exact(&g, 2.5, &ms, P).unwrap();
        assert_eq!(sol.speeds, vec![2.0]);
        assert!((sol.energy - 16.0).abs() < 1e-9);
    }

    #[test]
    fn exact_two_task_chain_enumerates_combinations() {
        // Same instance as the Vdd test: best single-speed assignment
        // is (3,1) or (1,3) with energy 30.
        let g = generators::chain(&[3.0, 3.0]);
        let ms = modes(&[1.0, 3.0]);
        let sol = exact(&g, 4.0, &ms, P).unwrap();
        assert!((sol.energy - 30.0).abs() < 1e-9, "energy {}", sol.energy);
        let mut sp = sol.speeds.clone();
        sp.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sp, vec![1.0, 3.0]);
    }

    #[test]
    fn exact_matches_brute_force_on_diamond() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let sol = exact(&g, d, &ms, P).unwrap();
        // Brute force all 3^4 assignments.
        let mut best = f64::INFINITY;
        let sp = ms.speeds();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for e in 0..3 {
                        let speeds = [sp[a], sp[b], sp[c], sp[e]];
                        let durations: Vec<f64> = g
                            .weights()
                            .iter()
                            .zip(&speeds)
                            .map(|(&w, &s)| w / s)
                            .collect();
                        if taskgraph::analysis::makespan(&g, &durations) <= d + 1e-12 {
                            let en = continuous::energy_of_speeds(&g, &speeds, P);
                            best = best.min(en);
                        }
                    }
                }
            }
        }
        assert!(
            (sol.energy - best).abs() < 1e-9,
            "bnb {} vs brute force {}",
            sol.energy,
            best
        );
    }

    #[test]
    fn exact_dominates_continuous_relaxation() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let sol = exact(&g, d, &ms, P).unwrap();
        let cont = continuous::solve(&g, d, Some(ms.s_max()), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        assert!(sol.energy >= e_cont * (1.0 - 1e-9));
    }

    #[test]
    fn exact_infeasible_detected() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            exact(&g, 1.5, &ms, P),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn round_up_is_feasible_and_within_bound() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.4, 2.0, 2.6]);
        let d = 5.0;
        let speeds = round_up(&g, d, &ms, P, Some(100)).unwrap();
        for &s in &speeds {
            assert!(ms.contains(s), "{s} is not a mode");
        }
        let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
        let opt = exact(&g, d, &ms, P).unwrap().energy;
        let bound = (1.0 + ms.max_gap() / ms.s_min()).powi(2) * (1.0 + 1.0 / 100.0f64).powi(2);
        assert!(
            e_alg <= opt * bound * (1.0 + 1e-6),
            "ratio {} exceeds bound {bound}",
            e_alg / opt
        );
        assert!(e_alg >= opt * (1.0 - 1e-9), "cannot beat the optimum");
    }

    #[test]
    fn round_up_single_mode() {
        let g = generators::chain(&[2.0, 2.0]);
        let ms = modes(&[2.0]);
        let speeds = round_up(&g, 2.0, &ms, P, None).unwrap();
        assert_eq!(speeds, vec![2.0, 2.0]);
        // Too tight for the single mode.
        assert!(round_up(&g, 1.5, &ms, P, None).is_err());
    }

    #[test]
    fn chain_dp_matches_exact_at_fine_resolution() {
        let g = generators::chain(&[3.0, 2.0, 4.0]);
        let ms = modes(&[1.0, 2.0, 3.0]);
        let d = 6.0;
        let (speeds, energy) = chain_dp(&g, d, &ms, P, 6000).unwrap();
        // Feasible.
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d + 1e-9);
        let exact_e = exact(&g, d, &ms, P).unwrap().energy;
        assert!(
            energy <= exact_e * 1.02 + 1e-9 && energy >= exact_e * (1.0 - 1e-9),
            "dp {energy} vs exact {exact_e}"
        );
    }

    #[test]
    fn chain_dp_rejects_non_chains() {
        let g = generators::diamond([1.0; 4]);
        let ms = modes(&[1.0]);
        assert!(matches!(
            chain_dp(&g, 10.0, &ms, P, 100),
            Err(SolveError::Unsupported(_))
        ));
    }

    #[test]
    fn chain_dp_infeasible() {
        let g = generators::chain(&[4.0, 4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            chain_dp(&g, 3.0, &ms, P, 300),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn chain_bound_preserves_optimum() {
        // The chain-cover bound must be admissible: switching it on
        // and off gives the same optimal energy, only different node
        // counts.
        let g = taskgraph::TaskGraph::new(
            vec![1.0, 2.0, 3.0, 1.5, 2.5, 1.0],
            &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)],
        )
        .unwrap();
        let ms = modes(&[0.6, 1.2, 1.8, 2.4, 3.0]);
        let d = 1.4 * taskgraph::analysis::critical_path_weight(&g) / ms.s_max();
        let on = exact_with_config(
            &g,
            d,
            &ms,
            P,
            BnbConfig {
                chain_bound: true,
                ..Default::default()
            },
        )
        .unwrap();
        let off = exact_with_config(
            &g,
            d,
            &ms,
            P,
            BnbConfig {
                chain_bound: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (on.energy - off.energy).abs() < 1e-9 * on.energy,
            "{} vs {}",
            on.energy,
            off.energy
        );
    }

    #[test]
    fn node_budget_respected() {
        // A partition chain large enough to exceed a tiny budget.
        let values: Vec<f64> = (0..14).map(|i| 1.0 + (i as f64) * 0.37).collect();
        let (g, d) = generators::partition_chain(&values);
        let ms = modes(&[1.0, 2.0]);
        let res = exact_with_budget(&g, d, &ms, P, 10, false);
        assert!(matches!(res, Err(SolveError::Numerical(_))));
    }

    #[test]
    fn greedy_slowdown_is_feasible_and_dominated_by_exact() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let speeds = greedy_slowdown(&g, d, &ms, P).unwrap();
        for &s in &speeds {
            assert!(ms.contains(s));
        }
        let durations: Vec<f64> = g
            .weights()
            .iter()
            .zip(&speeds)
            .map(|(&w, &s)| w / s)
            .collect();
        assert!(taskgraph::analysis::makespan(&g, &durations) <= d * (1.0 + 1e-9));
        let e_greedy = continuous::energy_of_speeds(&g, &speeds, P);
        let e_exact = exact(&g, d, &ms, P).unwrap().energy;
        assert!(e_greedy >= e_exact * (1.0 - 1e-9));
    }

    #[test]
    fn greedy_slowdown_reaches_floor_on_loose_deadlines() {
        let g = generators::chain(&[1.0, 2.0]);
        let ms = modes(&[0.5, 1.0, 2.0]);
        let speeds = greedy_slowdown(&g, 100.0, &ms, P).unwrap();
        assert_eq!(speeds, vec![0.5, 0.5]);
    }

    #[test]
    fn greedy_slowdown_infeasible() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            greedy_slowdown(&g, 1.0, &ms, P),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn partition_instance_solved_exactly() {
        // {3,1,1,2,2,1}: total 10, perfect partition exists (5/5).
        let (g, d) = generators::partition_chain(&[3.0, 1.0, 1.0, 2.0, 2.0, 1.0]);
        let ms = modes(&[1.0, 2.0]);
        let sol = exact(&g, d, &ms, P).unwrap();
        // Optimal: fast set of weight exactly 5 → energy 4·5 + 1·5 = 25.
        assert!((sol.energy - 25.0).abs() < 1e-9, "energy {}", sol.energy);
    }
}
