//! Vdd-Hopping solver (Theorem 3): polynomial time via linear
//! programming.
//!
//! Under Vdd-Hopping a task may switch between modes during execution,
//! so the decision per task is *how much time to spend in each mode*.
//! With variables `x_{ij}` (time task `i` runs at mode `s_j`) and
//! completion times `t_i`, `MinEnergy(Ĝ, D)` becomes the LP
//!
//! ```text
//! minimize   Σ_{i,j} s_j^α · x_{ij}
//! subject to Σ_j s_j · x_{ij} = w_i                (work completion)
//!            t_u + Σ_j x_{vj} ≤ t_v   ∀ (u,v) ∈ Ê  (precedence)
//!            Σ_j x_{ij} ≤ t_i                      (start ≥ 0)
//!            t_i ≤ D
//!            x_{ij}, t_i ≥ 0
//! ```
//!
//! solved by the `lp` crate's two-phase simplex. The LP optimum uses
//! at most two (consecutive) modes per task in basic solutions, which
//! is the "mix two consecutive modes optimally" intuition of the
//! paper's conclusion.
//!
//! [`adjacent_mix`] is the *heuristic* the conclusion contrasts with:
//! take the continuous optimum and emulate each continuous speed by
//! mixing its two bracketing modes, keeping per-task durations. It is
//! always feasible but not always optimal, because the LP can also
//! *rebalance durations between tasks* — experiment F4 quantifies the
//! gap.

use crate::continuous;
use crate::error::SolveError;
use lp::{LpSolution, Problem, Relation};
use models::{DiscreteModes, PowerLaw, Schedule, SpeedProfile};
use taskgraph::{PreparedGraph, TaskGraph};

/// Minimum piece duration kept in an extracted profile (pure noise
/// below this).
const PIECE_EPS: f64 = 1e-10;

/// Solve Vdd-Hopping exactly via the LP of Theorem 3.
///
/// Returns the optimal schedule (piecewise-constant speed profiles and
/// explicit start times taken from the LP's completion-time
/// variables).
pub fn solve_lp(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<Schedule, SolveError> {
    solve_lp_prepared(&PreparedGraph::new(g), deadline, modes, p)
}

/// [`solve_lp`] on a prepared graph: the transitive reduction and
/// critical path come from the shared cache instead of being
/// re-derived per call.
pub fn solve_lp_prepared(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<Schedule, SolveError> {
    continuous::check_feasible_prepared(prep, deadline, Some(modes.s_max()))?;
    let (prob, _) = build_lp(prep, deadline, modes, p);
    let sol = prob
        .solve()
        .map_err(|e| lp_error(prep, deadline, modes, e))?;
    Ok(extract_schedule(prep.graph(), modes, &sol))
}

/// Solve the Theorem 3 LP at many deadlines on one graph, reusing the
/// optimal basis between consecutive points (parametric-RHS warm
/// start: only the `t_i ≤ D` rows move, so the previous basis stays
/// dual feasible and a few dual-simplex pivots re-optimize it — see
/// [`lp::PreparedLp`]). Results are returned in input order; each
/// entry matches what [`solve_lp`] would return at that deadline, up
/// to LP tolerance.
pub fn solve_lp_sweep(
    prep: &PreparedGraph<'_>,
    deadlines: &[f64],
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Vec<Result<Schedule, SolveError>> {
    let g = prep.graph();
    let mut out: Vec<Result<Schedule, SolveError>> = Vec::with_capacity(deadlines.len());
    let mut warm: Option<(lp::PreparedLp, Vec<usize>)> = None;
    for &d in deadlines {
        if let Err(e) = continuous::check_feasible_prepared(prep, d, Some(modes.s_max())) {
            out.push(Err(e));
            continue;
        }
        // Warm path: move the deadline rows, re-optimize dually.
        let warm_sol = match &mut warm {
            Some((lp, rows)) => {
                let changes: Vec<(usize, f64)> = rows.iter().map(|&r| (r, d)).collect();
                match lp.resolve_rhs(&changes) {
                    Ok(sol) => Some(sol),
                    Err(_) => {
                        // The retained basis could not be re-optimized;
                        // ledger the loss and restart cold below.
                        crate::engine::profiling::bump_warm_lost();
                        None
                    }
                }
            }
            None => None,
        };
        let sol = match warm_sol {
            Some(sol) => Ok(sol),
            None => {
                // Cold (re)start: also refreshes the warm handle after
                // a failed or never-started warm chain.
                let (prob, rows) = build_lp(prep, d, modes, p);
                match prob.solve_prepared() {
                    Ok((sol, handle)) => {
                        warm = Some((handle, rows));
                        Ok(sol)
                    }
                    Err(e) => {
                        warm = None;
                        Err(lp_error(prep, d, modes, e))
                    }
                }
            }
        };
        out.push(sol.map(|s| extract_schedule(g, modes, &s)));
    }
    out
}

/// A retained, re-optimizable Theorem 3 LP for **one graph structure
/// and mode ladder** — the warm-start substrate of edited re-solves.
///
/// [`solve_lp_sweep`] already reuses the previous optimal basis when
/// only the deadline rows move. Weight edits are the same parametric
/// situation one row-block over: a task cost `w_i` is the RHS of the
/// work-completion row `Σ_j s_j·x_{ij} = w_i`, so a weight-only edit
/// keeps the LP's *matrix* (hence the retained basis's dual
/// feasibility) intact and moves only `b`. [`VddWarm::resolve`]
/// re-optimizes with a few dual-simplex pivots
/// ([`lp::PreparedLp::resolve_rhs`]) instead of a cold two-phase run.
///
/// The handle is tied to the precedence structure the LP was built
/// over: it stays valid across any number of weight and deadline
/// changes, and must be discarded after structural edits (edge or
/// task changes) — the engine's edit routing does exactly that.
pub struct VddWarm {
    lp: lp::PreparedLp,
    deadline_rows: Vec<usize>,
    modes: DiscreteModes,
    n: usize,
}

/// [`solve_lp_prepared`], additionally returning a [`VddWarm`] handle
/// that can re-solve the instance after weight and/or deadline changes
/// without a cold LP.
pub fn solve_lp_warm(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<(Schedule, VddWarm), SolveError> {
    continuous::check_feasible_prepared(prep, deadline, Some(modes.s_max()))?;
    let (prob, deadline_rows) = build_lp(prep, deadline, modes, p);
    let (sol, handle) = prob
        .solve_prepared()
        .map_err(|e| lp_error(prep, deadline, modes, e))?;
    let sched = extract_schedule(prep.graph(), modes, &sol);
    Ok((
        sched,
        VddWarm {
            lp: handle,
            deadline_rows,
            modes: modes.clone(),
            n: prep.graph().n(),
        },
    ))
}

impl VddWarm {
    /// Re-solve against `prep`'s (possibly edited) weights and a new
    /// deadline, starting from the retained optimal basis.
    ///
    /// `prep` must describe the same precedence structure the handle
    /// was built over — weight-only edits qualify, structural edits do
    /// not. Errors other than [`SolveError::Infeasible`] mean the warm
    /// basis could not be re-optimized (e.g.
    /// [`lp::LpError::WarmStartLost`]); the handle is then spent and
    /// the caller should fall back to a cold solve.
    pub fn resolve(
        &mut self,
        prep: &PreparedGraph<'_>,
        deadline: f64,
    ) -> Result<Schedule, SolveError> {
        let g = prep.graph();
        assert_eq!(
            g.n(),
            self.n,
            "VddWarm is per graph structure; task set changed"
        );
        continuous::check_feasible_prepared(prep, deadline, Some(self.modes.s_max()))?;
        // Work rows are rows 0..n by construction (`build_lp` adds
        // them first); unchanged RHS entries are skipped inside
        // `resolve_rhs`, so passing the full block is O(changed).
        let mut changes: Vec<(usize, f64)> = g
            .weights()
            .iter()
            .enumerate()
            .map(|(i, &w)| (i, w))
            .collect();
        changes.extend(self.deadline_rows.iter().map(|&r| (r, deadline)));
        let sol = self.lp.resolve_rhs(&changes).map_err(|e| match e {
            lp::LpError::Infeasible => SolveError::Infeasible {
                deadline,
                min_makespan: prep.critical_path_weight() / self.modes.s_max(),
            },
            other => SolveError::Numerical(format!("warm Vdd LP: {other}")),
        })?;
        Ok(extract_schedule(g, &self.modes, &sol))
    }

    /// The mode ladder the handle was built over.
    pub fn modes(&self) -> &DiscreteModes {
        &self.modes
    }

    /// Walk the **exact** energy–deadline curve `E*(D)` for
    /// `D ∈ [d_lo, d_hi]` by parametric-RHS dual simplex
    /// ([`lp::PreparedLp::parametric_rhs`]): the Theorem-3 LP's
    /// deadline rows `t_i ≤ D` are exactly the ray `b + t·𝟙`, so the
    /// optimal energy is piecewise **affine in `D`** and the whole
    /// curve costs one basis walk — one dual pivot per breakpoint, no
    /// per-sample work at all.
    ///
    /// The returned ray's segments carry `t` in **absolute deadline
    /// units** (`t_lo`/`t_hi` are deadlines, `value_*` are energies).
    /// The handle is first re-positioned at `d_lo` (refreshing the
    /// work rows from `prep`'s weights, like [`VddWarm::resolve`]) and
    /// is left positioned at the end of the walk, still usable.
    ///
    /// Errors: [`SolveError::Infeasible`] when `d_lo` is below the
    /// instance's minimum makespan; [`SolveError::Numerical`] when the
    /// warm basis cannot drive the walk (callers fall back to the
    /// sampled sweep).
    pub fn deadline_ray(
        &mut self,
        prep: &PreparedGraph<'_>,
        d_lo: f64,
        d_hi: f64,
    ) -> Result<lp::RhsRay, SolveError> {
        let g = prep.graph();
        assert_eq!(
            g.n(),
            self.n,
            "VddWarm is per graph structure; task set changed"
        );
        continuous::check_feasible_prepared(prep, d_lo, Some(self.modes.s_max()))?;
        // Reposition at d_lo (work rows refreshed so edited weights are
        // honored, exactly as `resolve` does).
        let mut changes: Vec<(usize, f64)> = g
            .weights()
            .iter()
            .enumerate()
            .map(|(i, &w)| (i, w))
            .collect();
        changes.extend(self.deadline_rows.iter().map(|&r| (r, d_lo)));
        let sol = self.lp.resolve_rhs(&changes).map_err(|e| match e {
            lp::LpError::Infeasible => SolveError::Infeasible {
                deadline: d_lo,
                min_makespan: prep.critical_path_weight() / self.modes.s_max(),
            },
            other => SolveError::Numerical(format!("deadline ray reposition: {other}")),
        })?;
        // The handle carries the *matrix* it was built over. A stale
        // handle — same task count, different precedence — would walk
        // a curve for the wrong constraint set and label it exact, so
        // validate the repositioned optimum against the caller's graph
        // exactly as the warm solve paths do; a stale basis fails the
        // precedence check and routes the caller to a cold rebuild.
        let sched = extract_schedule(g, &self.modes, &sol);
        sched
            .validate(
                g,
                &models::EnergyModel::VddHopping(self.modes.clone()),
                d_lo,
            )
            .map_err(|e| SolveError::Numerical(format!("warm basis stale for this graph: {e}")))?;
        let dir: Vec<(usize, f64)> = self.deadline_rows.iter().map(|&r| (r, 1.0)).collect();
        let mut ray = self
            .lp
            .parametric_rhs(&dir, d_hi - d_lo)
            .map_err(|e| SolveError::Numerical(format!("deadline ray walk: {e}")))?;
        // Shift the ray parameter into absolute deadline units.
        for s in &mut ray.segments {
            s.t_lo += d_lo;
            if s.t_hi.is_finite() {
                s.t_hi += d_lo;
            }
        }
        Ok(ray)
    }
}

/// Build the Theorem-3 LP at `d_lo` and walk the exact energy curve up
/// to `d_hi` in one go (cold entry point of [`VddWarm::deadline_ray`]).
/// The warm handle rides back so the caller can keep re-solving — or
/// re-walking — without another cold LP.
pub fn deadline_ray_prepared(
    prep: &PreparedGraph<'_>,
    d_lo: f64,
    d_hi: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<(lp::RhsRay, VddWarm), SolveError> {
    let (_, mut warm) = solve_lp_warm(prep, d_lo, modes, p)?;
    let ray = warm.deadline_ray(prep, d_lo, d_hi)?;
    Ok((ray, warm))
}

/// Build the Theorem 3 LP. Returns the problem and the row indices of
/// the per-task deadline rows `t_i ≤ D` (for parametric re-solves).
fn build_lp(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> (Problem, Vec<usize>) {
    let g = prep.graph();
    let n = g.n();
    let m = modes.m();
    let x = |i: usize, j: usize| i * m + j;
    let t = |i: usize| n * m + i;
    let mut prob = Problem::new(n * m + n);

    // Objective: Σ s_j^α x_ij.
    let mut obj = Vec::with_capacity(n * m);
    for i in 0..n {
        for (j, &s) in modes.speeds().iter().enumerate() {
            obj.push((x(i, j), p.power(s)));
        }
    }
    prob.set_objective(&obj);

    // Work completion.
    for i in 0..n {
        let coeffs: Vec<(usize, f64)> = modes
            .speeds()
            .iter()
            .enumerate()
            .map(|(j, &s)| (x(i, j), s))
            .collect();
        prob.add_constraint(&coeffs, Relation::Eq, g.weights()[i]);
    }
    // Precedence: t_u + d_v − t_v ≤ 0 (transitively reduced — same
    // feasible set, fewer simplex rows).
    for &(u, v) in prep.reduced().edges() {
        let mut coeffs: Vec<(usize, f64)> = vec![(t(u.0), 1.0), (t(v.0), -1.0)];
        for j in 0..m {
            coeffs.push((x(v.0, j), 1.0));
        }
        prob.add_constraint(&coeffs, Relation::Le, 0.0);
    }
    // Start ≥ 0 and deadline.
    let mut deadline_rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut coeffs: Vec<(usize, f64)> = vec![(t(i), -1.0)];
        for j in 0..m {
            coeffs.push((x(i, j), 1.0));
        }
        prob.add_constraint(&coeffs, Relation::Le, 0.0);
        deadline_rows.push(prob.nrows());
        prob.add_constraint(&[(t(i), 1.0)], Relation::Le, deadline);
    }
    (prob, deadline_rows)
}

fn lp_error(
    prep: &PreparedGraph<'_>,
    deadline: f64,
    modes: &DiscreteModes,
    e: lp::LpError,
) -> SolveError {
    match e {
        lp::LpError::Infeasible => SolveError::Infeasible {
            deadline,
            min_makespan: prep.critical_path_weight() / modes.s_max(),
        },
        other => SolveError::Numerical(other.to_string()),
    }
}

/// Extract per-task profiles and start times from an LP solution.
fn extract_schedule(g: &TaskGraph, modes: &DiscreteModes, sol: &LpSolution) -> Schedule {
    let n = g.n();
    let m = modes.m();
    let x = |i: usize, j: usize| i * m + j;
    let t = |i: usize| n * m + i;
    let mut starts = Vec::with_capacity(n);
    let mut profiles = Vec::with_capacity(n);
    for i in 0..n {
        let mut pieces: Vec<(f64, f64)> = Vec::new();
        for (j, &s) in modes.speeds().iter().enumerate() {
            let dur = sol.x[x(i, j)];
            if dur > PIECE_EPS {
                pieces.push((s, dur));
            }
        }
        // Guard against an all-noise extraction (cannot happen for a
        // consistent LP, but keep the schedule well-formed).
        if pieces.is_empty() {
            pieces.push((modes.s_max(), g.weights()[i] / modes.s_max()));
        }
        // Remove tiny work drift from the simplex tolerance by scaling
        // piece durations so ∫ s dt = w_i exactly.
        let done: f64 = pieces.iter().map(|&(s, d)| s * d).sum();
        let scale = g.weights()[i] / done;
        for piece in &mut pieces {
            piece.1 *= scale;
        }
        let duration: f64 = pieces.iter().map(|&(_, d)| d).sum();
        let completion = sol.x[t(i)];
        starts.push((completion - duration).max(0.0));
        profiles.push(if pieces.len() == 1 {
            SpeedProfile::Constant(pieces[0].0)
        } else {
            SpeedProfile::Pieces(pieces)
        });
    }
    Schedule::new(starts, profiles)
}

/// The adjacent-mode-mix heuristic (ablation F4).
///
/// Solve the Continuous model with `s_max = s_m`, then execute each
/// task for the same duration `d_i = w_i / s_i^*` by mixing the two
/// modes bracketing `s_i^*` (time split chosen so the work completes
/// exactly). Tasks whose continuous speed falls below `s_1` run at
/// `s_1` (finishing early — still feasible).
///
/// Because every task keeps (or shrinks) its continuous duration, the
/// continuous schedule's start times remain feasible.
pub fn adjacent_mix(
    g: &TaskGraph,
    deadline: f64,
    modes: &DiscreteModes,
    p: PowerLaw,
) -> Result<Schedule, SolveError> {
    let speeds = continuous::solve(g, deadline, Some(modes.s_max()), p, None)?;
    let mut profiles = Vec::with_capacity(g.n());
    for (&w, &s_star) in g.weights().iter().zip(&speeds) {
        let profile = match modes.bracket(s_star) {
            None => {
                // Below the slowest mode: run flat at s_1.
                SpeedProfile::Constant(modes.s_min())
            }
            Some((lo, hi)) if (hi - lo).abs() <= 1e-12 * (1.0 + hi) => SpeedProfile::Constant(lo),
            Some((lo, hi)) => {
                let d = w / s_star;
                // x_hi·hi + (d − x_hi)·lo = w  ⇒  x_hi = (w − lo·d)/(hi − lo)
                let x_hi = (w - lo * d) / (hi - lo);
                let x_lo = d - x_hi;
                debug_assert!(x_hi >= -1e-9 && x_lo >= -1e-9);
                SpeedProfile::Pieces(vec![(lo, x_lo.max(0.0)), (hi, x_hi.max(0.0))])
            }
        };
        profiles.push(profile);
    }
    Ok(Schedule::asap_from_profiles(g, profiles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::EnergyModel;
    use taskgraph::generators;

    const P: PowerLaw = PowerLaw::CUBIC;

    fn modes(v: &[f64]) -> DiscreteModes {
        DiscreteModes::new(v).unwrap()
    }

    #[test]
    fn single_task_mixes_bracketing_modes() {
        // One task, w = 3, modes {1, 2}, deadline 2: continuous optimum
        // is speed 1.5; Vdd mixes modes 1 and 2 with one time unit
        // each: energy 1³·1 + 2³·1 = 9 < 2²·3 = 12 (all-fast).
        let g = generators::chain(&[3.0]);
        let ms = modes(&[1.0, 2.0]);
        let sched = solve_lp(&g, 2.0, &ms, P).unwrap();
        sched
            .validate(&g, &EnergyModel::VddHopping(ms.clone()), 2.0)
            .unwrap();
        let e = sched.energy(&g, P);
        assert!((e - 9.0).abs() < 1e-6, "energy {e}");
    }

    #[test]
    fn lp_beats_or_matches_discrete_single_speeds() {
        // Chain of two tasks, modes {1, 3}, deadline 4, weights 3 and 3.
        // Discrete options are limited; Vdd can mix.
        let g = generators::chain(&[3.0, 3.0]);
        let ms = modes(&[1.0, 3.0]);
        let sched = solve_lp(&g, 4.0, &ms, P).unwrap();
        sched
            .validate(&g, &EnergyModel::VddHopping(ms.clone()), 4.0)
            .unwrap();
        let e_vdd = sched.energy(&g, P);
        // Best single-speed-per-task assignment: speeds (3,1): time
        // 1+3=4 ok, energy 9·3+1·3 = 30; (1,3) symmetric 30; (3,3):
        // energy 54; (1,1): time 6 > 4 infeasible. So discrete best 30.
        assert!(e_vdd <= 30.0 + 1e-6);
        // Continuous lower bound: speed 6/4 = 1.5, E = 2.25·6 = 13.5.
        assert!(e_vdd >= 13.5 - 1e-6);
    }

    #[test]
    fn vdd_energy_between_continuous_and_discrete_bounds() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let sched = solve_lp(&g, d, &ms, P).unwrap();
        sched
            .validate(&g, &EnergyModel::VddHopping(ms.clone()), d)
            .unwrap();
        let e_vdd = sched.energy(&g, P);
        let cont = continuous::solve(&g, d, Some(ms.s_max()), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        assert!(
            e_vdd >= e_cont * (1.0 - 1e-6),
            "vdd {e_vdd} must dominate continuous {e_cont}"
        );
    }

    #[test]
    fn infeasible_deadline() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        assert!(matches!(
            solve_lp(&g, 1.0, &ms, P),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn exact_mode_speed_uses_single_piece() {
        // Deadline exactly w/s for mode 2: LP picks the single mode.
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0, 4.0]);
        let sched = solve_lp(&g, 2.0, &ms, P).unwrap();
        let e = sched.energy(&g, P);
        // Optimal: speed 2 for 2 time units → 8·2 = 16? Mixing 1 and 4
        // for durations a+b=2, a+4b=4 → b=2/3, a=4/3: energy
        // 1·4/3 + 64·2/3 = 44 — worse. So 16.
        assert!((e - 16.0).abs() < 1e-6, "energy {e}");
    }

    #[test]
    fn adjacent_mix_is_feasible_and_dominates_lp() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let heur = adjacent_mix(&g, d, &ms, P).unwrap();
        heur.validate(&g, &EnergyModel::VddHopping(ms.clone()), d)
            .unwrap();
        let e_heur = heur.energy(&g, P);
        let e_lp = solve_lp(&g, d, &ms, P).unwrap().energy(&g, P);
        assert!(
            e_heur >= e_lp * (1.0 - 1e-6),
            "heuristic {e_heur} cannot beat the LP {e_lp}"
        );
        // And the heuristic is within the bracketing bound of the
        // continuous optimum (mixing is convex interpolation).
        let cont = continuous::solve(&g, d, Some(ms.s_max()), P, None).unwrap();
        let e_cont = continuous::energy_of_speeds(&g, &cont, P);
        assert!(e_heur >= e_cont * (1.0 - 1e-6));
    }

    #[test]
    fn adjacent_mix_below_smin_runs_at_s1() {
        // Very loose deadline: continuous optimum is slower than s_1.
        let g = generators::chain(&[1.0]);
        let ms = modes(&[1.0, 2.0]);
        let sched = adjacent_mix(&g, 100.0, &ms, P).unwrap();
        match sched.profile(taskgraph::TaskId(0)) {
            SpeedProfile::Constant(s) => assert_eq!(*s, 1.0),
            other => panic!("expected constant profile, got {other:?}"),
        }
        sched
            .validate(&g, &EnergyModel::VddHopping(ms), 100.0)
            .unwrap();
    }

    #[test]
    fn warm_weight_resolve_matches_cold() {
        use taskgraph::edit::GraphEdit;

        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let d = 5.0;
        let prep = PreparedGraph::new(&g);
        let (base, mut warm) = solve_lp_warm(&prep, d, &ms, P).unwrap();
        base.validate(&g, &EnergyModel::VddHopping(ms.clone()), d)
            .unwrap();

        // A chain of weight edits, each re-solved warm and compared
        // against an independent cold LP on the edited graph.
        let inst = taskgraph::PreparedInstance::new(std::sync::Arc::new(g));
        let mut current = inst.apply(&[]).unwrap();
        for (task, w) in [(1usize, 3.5), (2, 1.2), (0, 2.0)] {
            current = current
                .apply(&[GraphEdit::SetWeight { task, weight: w }])
                .unwrap();
            let view = current.view();
            let sched = warm.resolve(&view, d).unwrap();
            sched
                .validate(current.graph(), &EnergyModel::VddHopping(ms.clone()), d)
                .unwrap();
            let cold = solve_lp_prepared(&view, d, &ms, P).unwrap();
            let (ew, ec) = (
                sched.energy(current.graph(), P),
                cold.energy(current.graph(), P),
            );
            assert!(
                (ew - ec).abs() <= 1e-6 * (1.0 + ec),
                "warm {ew} vs cold {ec} after w({task}) = {w}"
            );
        }
    }

    #[test]
    fn warm_resolve_reports_infeasible_weights() {
        let g = generators::chain(&[2.0]);
        let ms = modes(&[1.0, 2.0]);
        let prep = PreparedGraph::new(&g);
        let (_, mut warm) = solve_lp_warm(&prep, 2.0, &ms, P).unwrap();
        // Weight 10 at top speed 2 needs 5 time units > deadline 2.
        let heavy = taskgraph::TaskGraph::new(vec![10.0], &[]).unwrap();
        let hp = PreparedGraph::new(&heavy);
        assert!(matches!(
            warm.resolve(&hp, 2.0),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn deadline_ray_matches_cold_solves_pointwise() {
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.8, 1.6, 2.4]);
        let prep = PreparedGraph::new(&g);
        let cp = taskgraph::analysis::critical_path_weight(&g);
        let (d_lo, d_hi) = (1.05 * cp / ms.s_max(), 3.0 * cp / ms.s_max());
        let (ray, _warm) = deadline_ray_prepared(&prep, d_lo, d_hi, &ms, P).unwrap();
        assert!(!ray.segments.is_empty());
        // Contiguous, monotone segment boundaries spanning [d_lo, d_hi].
        assert!((ray.segments[0].t_lo - d_lo).abs() < 1e-9 * d_lo);
        for w in ray.segments.windows(2) {
            assert!((w[0].t_hi - w[1].t_lo).abs() < 1e-9 * (1.0 + w[0].t_hi.abs()));
        }
        // Energy non-increasing in D, and pointwise equal to cold LPs.
        for k in 0..=16 {
            let d = d_lo + (d_hi - d_lo) * k as f64 / 16.0;
            let exact = ray.value_at(d).unwrap();
            let cold = solve_lp_prepared(&prep, d, &ms, P).unwrap().energy(&g, P);
            assert!(
                (exact - cold).abs() <= 1e-6 * (1.0 + cold),
                "ray {exact} vs cold {cold} at D = {d}"
            );
        }
        for w in ray.segments.windows(2) {
            assert!(w[1].value_lo <= w[0].value_lo * (1.0 + 1e-9));
        }
    }

    #[test]
    fn deadline_ray_rejects_infeasible_lo() {
        let g = generators::chain(&[4.0]);
        let ms = modes(&[1.0, 2.0]);
        let prep = PreparedGraph::new(&g);
        let (_, mut warm) = solve_lp_warm(&prep, 3.0, &ms, P).unwrap();
        assert!(matches!(
            warm.deadline_ray(&prep, 1.0, 5.0),
            Err(SolveError::Infeasible { .. })
        ));
        // The handle survives the rejection (feasibility pre-check
        // fires before any tableau work).
        assert!(warm.resolve(&prep, 3.0).is_ok());
    }

    #[test]
    fn lp_profiles_use_at_most_two_modes_per_task() {
        // Basic-solution structure: ≤ 2 modes per task (and they are
        // consecutive). Verify on a random-ish instance.
        let g = generators::diamond([1.0, 2.0, 3.0, 1.5]);
        let ms = modes(&[0.5, 1.0, 1.5, 2.0, 2.5]);
        let sched = solve_lp(&g, 5.5, &ms, P).unwrap();
        for t in g.tasks() {
            match sched.profile(t) {
                SpeedProfile::Constant(_) => {}
                SpeedProfile::Pieces(ps) => {
                    assert!(ps.len() <= 2, "task {t} uses {} modes: {ps:?}", ps.len());
                    if ps.len() == 2 {
                        // Consecutive in the mode list.
                        let idx: Vec<usize> = ps
                            .iter()
                            .map(|&(s, _)| {
                                ms.speeds()
                                    .iter()
                                    .position(|&x| (x - s).abs() < 1e-9)
                                    .unwrap()
                            })
                            .collect();
                        assert_eq!(idx[0].abs_diff(idx[1]), 1, "{ps:?}");
                    }
                }
            }
        }
    }
}
