//! Regenerate every table and figure of the experiment suite.
//!
//! ```text
//! cargo run -p bench --release --bin experiments             # all
//! cargo run -p bench --release --bin experiments -- t3 f1    # subset
//! cargo run -p bench --release --bin experiments -- --csv results/
//! cargo run -p bench --release --bin experiments -- --json perf/
//! ```
//!
//! With `--csv DIR`, each experiment's table is also written to
//! `DIR/<id>.csv`. With `--json DIR`, each experiment additionally
//! emits a machine-readable `DIR/BENCH_<ID>.json` record so the perf
//! trajectory can be tracked across PRs: `experiment`, `mean_ns`
//! (wall-clock of one full experiment run — experiments average over
//! instance ensembles internally, but the figure is a single-shot
//! coarse signal, not a criterion-style repeated mean), and
//! `instance_size`, plus any experiment-specific `metrics` — e.g.
//! `X6` records its naive/engine sweep arms separately, which is the
//! entry to watch for sweep-path regressions.

use bench::experiments;
use bench::experiments::Outcome;

/// Render the `BENCH_<id>.json` record (no serde in-tree; the schema
/// is flat enough to format by hand). `mean_ns` is the single-run
/// wall-clock of the experiment (see the module docs for caveats).
fn bench_json(o: &Outcome, mean_ns: u128) -> String {
    let mut s = format!(
        "{{\n  \"experiment\": \"{}\",\n  \"mean_ns\": {},\n  \"instance_size\": {}",
        o.id, mean_ns, o.size
    );
    if !o.metrics.is_empty() {
        s.push_str(",\n  \"metrics\": {");
        for (k, (name, value)) in o.metrics.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            // Full float precision: gate steps (e.g. `speedup >= 8`
            // for X9) must not be flattered or failed by rounding.
            if value.fract() == 0.0 && value.abs() < 1e15 {
                s.push_str(&format!("\"{name}\": {value:.0}"));
            } else {
                s.push_str(&format!("\"{name}\": {value:e}"));
            }
        }
        s.push('}');
    }
    s.push_str("\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "all" => {}
            other => ids.push(other.to_string()),
        }
    }

    let run_ids: Vec<String> = if ids.is_empty() {
        experiments::all_ids()
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        ids
    };

    let mut failed = 0;
    let mut count = 0;
    for id in &run_ids {
        let start = std::time::Instant::now();
        let o = experiments::run_one(id).unwrap_or_else(|| {
            eprintln!("unknown experiment id: {id} (use t1..t7, f1..f4, x1..x8)");
            std::process::exit(2);
        });
        let mean_ns = start.elapsed().as_nanos();
        count += 1;
        println!("{}", o.render());
        if o.verdict.starts_with("FAIL") {
            failed += 1;
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", o.id.to_ascii_lowercase());
            std::fs::write(&path, o.table.to_csv()).expect("write csv");
            println!("(csv written to {path})\n");
        }
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/BENCH_{}.json", o.id);
            std::fs::write(&path, bench_json(&o, mean_ns)).expect("write json");
            println!("(json written to {path})\n");
        }
    }
    println!("summary: {}/{} experiments PASS", count - failed, count);
    if failed > 0 {
        std::process::exit(1);
    }
}
