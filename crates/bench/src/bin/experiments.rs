//! Regenerate every table and figure of the experiment suite.
//!
//! ```text
//! cargo run -p bench --release --bin experiments            # all
//! cargo run -p bench --release --bin experiments -- t3 f1   # subset
//! cargo run -p bench --release --bin experiments -- --csv results/
//! ```
//!
//! With `--csv DIR`, each experiment's table is also written to
//! `DIR/<id>.csv`.

use bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "all" => {}
            other => ids.push(other.to_string()),
        }
    }

    let outcomes = if ids.is_empty() {
        experiments::run_all()
    } else {
        ids.iter()
            .map(|id| {
                experiments::run_one(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id: {id} (use t1..t7, f1..f4)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut failed = 0;
    for o in &outcomes {
        println!("{}", o.render());
        if o.verdict.starts_with("FAIL") {
            failed += 1;
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", o.id.to_ascii_lowercase());
            std::fs::write(&path, o.table.to_csv()).expect("write csv");
            println!("(csv written to {path})\n");
        }
    }
    println!(
        "summary: {}/{} experiments PASS",
        outcomes.len() - failed,
        outcomes.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
