//! # bench — experiment harness
//!
//! The brief announcement has no evaluation section, so the experiment
//! suite reproduces **every theorem and proposition as an executable
//! experiment** plus the "comparative study of energy models" that the
//! paper's conclusion announces (in the style of the companion
//! research report's simulations). See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! * `T1`–`T7` — one experiment per theorem/proposition;
//! * `F1`–`F4` — comparative figures (energy vs deadline, vs mode
//!   count, vs graph family; LP-vs-heuristic ablation).
//!
//! Regenerate everything with
//! `cargo run -p bench --release --bin experiments -- all`.

pub mod experiments;
pub mod instances;

pub use instances::{
    deadline_grid, dmin, irregular_modes, random_execution_graph, spread_modes, Ensemble,
};
