//! Instance ensembles shared by experiments and criterion benches.
//!
//! Every generator is seeded for reproducibility. The canonical random
//! workload follows the paper's setting: an application DAG is mapped
//! onto identical processors by list scheduling (the "given" mapping),
//! and the solvers then work on the resulting execution graph.

use mapping::{list_schedule, Priority};
use models::{DiscreteModes, EnergyModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taskgraph::analysis::critical_path_weight;
use taskgraph::{generators, TaskGraph};

/// The minimum feasible deadline at top speed `s_max` (deadlines in
/// experiments are expressed as multiples `D = tightness · dmin`).
pub fn dmin(g: &TaskGraph, s_max: f64) -> f64 {
    critical_path_weight(g) / s_max
}

/// The geometric deadline grid `Engine::energy_curve` samples:
/// `points` deadlines from `lo` to `hi` times the reference deadline
/// (critical path at top speed, or at unit speed for unbounded
/// Continuous), with the same iterated-multiplication rounding the
/// engine uses. The sweep benchmarks (`X6`, `benches/sweep.rs`) feed
/// these to their naive arms so the engine-vs-naive energy drift
/// check compares identical deadlines; if the engine's spacing ever
/// changes, X6's drift assertion fails loudly rather than silently
/// comparing different points.
pub fn deadline_grid(
    g: &TaskGraph,
    model: &EnergyModel,
    points: usize,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    let base = match model.top_speed() {
        Some(sm) => critical_path_weight(g) / sm,
        None => critical_path_weight(g),
    };
    let ratio = (hi / lo).powf(1.0 / (points - 1) as f64);
    let mut out = Vec::with_capacity(points);
    let mut f = lo;
    for _ in 0..points {
        out.push(f * base);
        f *= ratio;
    }
    out
}

/// A random layered application DAG mapped onto `procs` processors by
/// critical-path list scheduling; returns the **execution graph**
/// (application edges + serialization edges).
pub fn random_execution_graph(layers: usize, width: usize, procs: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let app = generators::layered_dag(layers, width, 0.35, 1.0, 5.0, &mut rng);
    let m = list_schedule(&app, procs, Priority::BottomLevel);
    m.execution_graph(&app)
        .expect("list scheduling respects precedence")
}

/// `m` modes spread uniformly over `[lo, hi]` (inclusive endpoints).
pub fn spread_modes(m: usize, lo: f64, hi: f64) -> DiscreteModes {
    assert!(m >= 1);
    let speeds: Vec<f64> = if m == 1 {
        vec![hi]
    } else {
        (0..m)
            .map(|i| lo + (hi - lo) * i as f64 / (m - 1) as f64)
            .collect()
    };
    DiscreteModes::new(&speeds).expect("spread speeds are valid")
}

/// `m` modes over `[lo, hi]` with irregular spacing: endpoints fixed,
/// interior points drawn uniformly. Used by T7 (Proposition 1(b)) to
/// sweep the max-gap constant α.
pub fn irregular_modes(m: usize, lo: f64, hi: f64, seed: u64) -> DiscreteModes {
    assert!(m >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut speeds = vec![lo, hi];
    for _ in 0..m.saturating_sub(2) {
        speeds.push(rng.gen_range(lo..hi));
    }
    DiscreteModes::new(&speeds).expect("irregular speeds are valid")
}

/// A reproducible family of execution graphs (seeds `base..base+count`).
pub struct Ensemble {
    /// Number of layers in each application DAG.
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Processors for the list-scheduled mapping.
    pub procs: usize,
    /// First seed.
    pub base_seed: u64,
    /// Number of instances.
    pub count: usize,
}

impl Ensemble {
    /// Materialize all execution graphs.
    pub fn graphs(&self) -> Vec<TaskGraph> {
        (0..self.count)
            .map(|k| {
                random_execution_graph(
                    self.layers,
                    self.width,
                    self.procs,
                    self.base_seed + k as u64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_graph_is_reproducible() {
        let a = random_execution_graph(4, 3, 2, 7);
        let b = random_execution_graph(4, 3, 2, 7);
        assert_eq!(a, b);
        assert_eq!(a.n(), 12);
    }

    #[test]
    fn spread_modes_endpoints() {
        let m = spread_modes(5, 0.5, 2.5);
        assert_eq!(m.m(), 5);
        assert_eq!(m.s_min(), 0.5);
        assert_eq!(m.s_max(), 2.5);
        assert!((m.max_gap() - 0.5).abs() < 1e-12);
        let one = spread_modes(1, 0.5, 2.5);
        assert_eq!(one.speeds(), &[2.5]);
    }

    #[test]
    fn irregular_modes_keep_endpoints() {
        let m = irregular_modes(6, 1.0, 3.0, 42);
        assert_eq!(m.s_min(), 1.0);
        assert_eq!(m.s_max(), 3.0);
        assert!(m.m() <= 6 && m.m() >= 2);
    }

    #[test]
    fn ensemble_counts() {
        let e = Ensemble {
            layers: 3,
            width: 2,
            procs: 2,
            base_seed: 1,
            count: 4,
        };
        assert_eq!(e.graphs().len(), 4);
    }

    #[test]
    fn dmin_is_cp_over_smax() {
        let g = generators::chain(&[2.0, 2.0]);
        assert!((dmin(&g, 2.0) - 2.0).abs() < 1e-12);
    }
}
