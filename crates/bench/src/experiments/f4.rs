//! F4 — ablation: the Theorem 3 LP vs the adjacent-mode-mix
//! heuristic.
//!
//! The heuristic freezes the continuous optimum's per-task durations
//! and mixes the two bracketing modes; the LP can additionally
//! rebalance durations across tasks. The gap quantifies the value of
//! solving the full LP (DESIGN.md decision 3).

use super::{Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use reclaim_core::vdd;
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "m-modes",
        "tightness",
        "geo mix/LP",
        "max mix/LP",
        "LP-never-worse",
    ]);
    let mut all_ok = true;
    let mut overall_max = 1.0f64;

    for &m in &[2usize, 3, 5] {
        let modes = spread_modes(m, 0.5, 3.0);
        for &tight in &[1.05, 1.3, 2.0] {
            let mut ratios = Vec::new();
            let mut ok = true;
            for seed in 0..8u64 {
                let g = random_execution_graph(4, 3, 2, 1100 + seed);
                let d = tight * dmin(&g, modes.s_max());
                let e_lp = vdd::solve_lp(&g, d, &modes, P).unwrap().energy(&g, P);
                let e_mix = vdd::adjacent_mix(&g, d, &modes, P).unwrap().energy(&g, P);
                ok &= e_mix >= e_lp * (1.0 - 1e-6);
                ratios.push(e_mix / e_lp);
            }
            all_ok &= ok;
            let geo = report::geo_mean(&ratios);
            let max = report::max(&ratios);
            overall_max = overall_max.max(max);
            table.row(&[
                m.to_string(),
                format!("{tight:.2}"),
                format!("{geo:.4}"),
                format!("{max:.4}"),
                if ok { "ok".into() } else { "VIOLATED".into() },
            ]);
        }
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "F4",
        claim: "mixing adjacent modes of the continuous optimum is feasible but suboptimal; the LP can rebalance durations",
        table,
        verdict: format!(
            "{}: LP ≤ heuristic always; worst heuristic excess ×{overall_max:.3}",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
