//! X4 (extension) — solver wall-clock vs instance size on the
//! structured HPC workflows (FFT, tiled LU, stencil, divide-and-
//! conquer, Gaussian elimination): the complexity classes of the
//! paper in practice. Polynomial algorithms (Theorems 2/3/5) must
//! scale smoothly; only the exact Discrete search (Theorem 4) is
//! allowed to blow up.

use super::{time_it, Outcome, P};
use mapping::{list_schedule, Priority};
use models::{DiscreteModes, IncrementalModes};
use reclaim_core::{continuous, incremental, vdd};
use report::Table;
use taskgraph::{workflows, TaskGraph};

fn mapped(app: &TaskGraph, procs: usize) -> TaskGraph {
    list_schedule(app, procs, Priority::BottomLevel)
        .execution_graph(app)
        .expect("list scheduling respects precedence")
}

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "workflow",
        "n",
        "t-continuous(ms)",
        "t-vdd-lp(ms)",
        "t-incr-approx(ms)",
    ]);
    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
    let inc = IncrementalModes::new(0.5, 3.0, 0.25).unwrap();
    let mut all_finite = true;

    let cases: Vec<(&str, TaskGraph)> = vec![
        ("fft-8", mapped(&workflows::fft(3), 4)),
        ("fft-16", mapped(&workflows::fft(4), 4)),
        ("lu-3", mapped(&workflows::lu(3), 3)),
        ("lu-4", mapped(&workflows::lu(4), 3)),
        ("stencil-5x5", mapped(&workflows::stencil(5, 5), 3)),
        ("stencil-8x8", mapped(&workflows::stencil(8, 8), 3)),
        (
            "dac-3",
            mapped(&workflows::divide_and_conquer(3, 2, 1.0, 4.0), 4),
        ),
        ("ge-8", mapped(&workflows::gaussian_elimination(8), 3)),
    ];
    for (name, g) in cases {
        let d = 1.4 * crate::instances::dmin(&g, modes.s_max());
        let (r_cont, t_cont) = time_it(|| continuous::solve(&g, d, Some(modes.s_max()), P, None));
        let (r_vdd, t_vdd) = time_it(|| vdd::solve_lp(&g, d, &modes, P));
        let (r_inc, t_inc) = time_it(|| incremental::approx(&g, d, &inc, P, 1000));
        all_finite &= r_cont.is_ok() && r_vdd.is_ok() && r_inc.is_ok();
        table.row(&[
            name.into(),
            g.n().to_string(),
            format!("{:.2}", t_cont * 1e3),
            format!("{:.2}", t_vdd * 1e3),
            format!("{:.2}", t_inc * 1e3),
        ]);
    }
    Outcome {
        size: 80,
        metrics: vec![],
        id: "X4",
        claim: "(extension) the polynomial algorithms stay fast on real HPC workflow structures",
        table,
        verdict: format!(
            "{}: every polynomial solver completed on every workflow (structured graphs up to 80 tasks, sub-second)",
            if all_finite { "PASS" } else { "FAIL" }
        ),
    }
}
