//! X12 (extension) — restart-under-replay: what the content-addressed
//! disk store buys a restarted daemon.
//!
//! **The trace.** A deterministic mixed trace over a pool of
//! series–parallel graphs: one preamble solve per graph (so every
//! patch base exists before it is patched, in every arm), then a
//! seeded mix of cached solves, identity patch batches (set a weight,
//! set it back — the XOR-delta key is stable, so bases survive
//! repeated patching), and exact Vdd energy curves. The trace depends
//! only on the seed and is replayed serially — per-request latency is
//! the roundtrip itself.
//!
//! **Arms.**
//!
//! * *populate*: a fresh daemon with `--store DIR` answers the trace,
//!   then shuts down cleanly (clean shutdown spills every cached
//!   instance and retained curve to the store);
//! * *warm*: a second daemon boots on the populated store — the bind
//!   (which includes the recovery scan) is timed — and answers the
//!   same trace. Every instance it needs re-materializes from disk:
//!   zero prepare passes, curves served from restored slots;
//! * *cold*: a daemon with no store answers the same trace from
//!   scratch — one prepare pass per distinct instance.
//!
//! **Gates.** All three arms must answer every request exactly once
//! with the right response kind, and the warm arm's energies must be
//! bit-identical to the cold arm's (the store roundtrip loses
//! nothing). The headline claim — the cold arm pays ≥ 5× the warm
//! arm's prepare passes — is a deterministic count, so it is gated
//! unconditionally at any core count. Recovery time and p50/p99
//! latencies land in `BENCH_X12.json`.
//!
//! `X12_SMOKE=1` shrinks the trace for quick CI runs; every gate
//! holds at every scale.

use super::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::engine::content_key;
use reclaim_service::client::Client;
use reclaim_service::daemon::{Daemon, DaemonConfig};
use reclaim_service::proto::{Request, Response};
use reclaim_service::Endpoint;
use report::Table;
use std::path::PathBuf;
use taskgraph::edit::GraphEdit;
use taskgraph::{generators, TaskGraph};

/// The headline bar: cold prepare passes ≥ this multiple of warm.
const GATE_RATIO: f64 = 5.0;
/// Deadline slack factor for the cached solves.
const SLACK: f64 = 1.35;
/// Exact curve deadline-factor range.
const CURVE_LO: f64 = 1.1;
const CURVE_HI: f64 = 1.6;

/// Full-scale vs `X12_SMOKE=1` trace dimensions: (graphs, total
/// requests including the per-graph preamble).
fn scale() -> (usize, usize) {
    if std::env::var("X12_SMOKE").is_ok() {
        (8, 60)
    } else {
        (40, 1200)
    }
}

/// What a response must be for the trace entry that asked for it.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    Solve,
    Patch,
    CurveExact,
}

/// The fixed workload pool: series–parallel graphs with their solve
/// deadlines, one solve model, one curve model.
struct Pool {
    graphs: Vec<(TaskGraph, f64)>,
    solve_model: models::EnergyModel,
    curve_model: models::EnergyModel,
}

fn pool(n_graphs: usize) -> Pool {
    let graphs: Vec<(TaskGraph, f64)> = (0..n_graphs)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x12AA + i as u64);
            let n = 16 + (i % 24);
            let (g, _) = generators::random_sp(n, 0.55, 1.0, 5.0, &mut rng);
            let d = SLACK * taskgraph::analysis::critical_path_weight(&g);
            (g, d)
        })
        .collect();
    Pool {
        graphs,
        solve_model: models::EnergyModel::continuous_unbounded(),
        curve_model: models::EnergyModel::VddHopping(
            models::DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap(),
        ),
    }
}

/// Deal the deterministic trace: one preamble solve per graph, then
/// the seeded mix. Depends only on the seed and the pool — never on
/// timing — so all three arms answer byte-for-byte the same requests.
fn trace(pool: &Pool, total: usize) -> Vec<(Kind, Request)> {
    let mut out: Vec<(Kind, Request)> = pool
        .graphs
        .iter()
        .map(|(g, d)| {
            (
                Kind::Solve,
                Request::Solve {
                    graph: g.clone(),
                    model: pool.solve_model.clone(),
                    deadline: *d,
                },
            )
        })
        .collect();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut roll = move |m: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    while out.len() < total {
        let (g, d) = &pool.graphs[roll(pool.graphs.len() as u64) as usize];
        let entry = match roll(100) {
            0..=54 => (
                Kind::Solve,
                Request::Solve {
                    graph: g.clone(),
                    model: pool.solve_model.clone(),
                    deadline: *d,
                },
            ),
            // Identity batches keep the patched key equal to the base
            // key, so bases stay patchable for the whole trace while
            // the full patch path (edit application, re-solve, rekey
            // accounting, lineage) still runs.
            55..=84 => {
                let task = roll(g.n() as u64) as usize;
                let w0 = g.weights()[task];
                (
                    Kind::Patch,
                    Request::Patch {
                        base: content_key(g, &pool.solve_model),
                        edits: vec![
                            GraphEdit::SetWeight {
                                task,
                                weight: w0 + 1.0,
                            },
                            GraphEdit::SetWeight { task, weight: w0 },
                        ],
                        deadline: *d,
                    },
                )
            }
            _ => (
                Kind::CurveExact,
                Request::EnergyCurve {
                    graph: g.clone(),
                    model: pool.curve_model.clone(),
                    points: 4,
                    lo: CURVE_LO,
                    hi: CURVE_HI,
                    exact: true,
                },
            ),
        };
        out.push(entry);
    }
    out
}

fn kind_matches(kind: Kind, resp: &Response) -> bool {
    matches!(
        (kind, resp),
        (Kind::Solve, Response::Solve(_))
            | (Kind::Patch, Response::Patch(_))
            | (Kind::CurveExact, Response::CurveExact(_))
    )
}

/// A timing-free fingerprint of one response: energy bits for solves
/// and patches, segment layout for exact curves. Equal traces must
/// fingerprint equally across arms — the store roundtrip is lossless.
fn fingerprint(resp: &Response) -> u64 {
    match resp {
        Response::Solve(r) => r.energy.to_bits(),
        Response::Patch(p) => p.report.energy.to_bits() ^ (p.key as u64),
        Response::CurveExact(c) => c.segments.iter().fold(c.segments.len() as u64, |acc, s| {
            acc ^ s.deadline_lo.to_bits().rotate_left(17) ^ s.deadline_hi.to_bits().rotate_right(13)
        }),
        _ => 0,
    }
}

/// One arm's replay measurements.
struct Arm {
    lat_ns: Vec<u64>,
    answered: usize,
    mismatched: usize,
    /// Solve responses that paid a prepare pass (`prep_ns > 0`) — the
    /// quantity the store exists to eliminate after a restart.
    prepares: usize,
    /// Exact-curve responses served from a retained (or restored)
    /// curve slot.
    cached_curves: usize,
    fingerprints: Vec<u64>,
}

/// Replay the trace serially over one connection.
fn replay(ep: &Endpoint, trace: &[(Kind, Request)]) -> Arm {
    let mut client = Client::connect(ep).expect("connect replay client");
    let mut arm = Arm {
        lat_ns: Vec::with_capacity(trace.len()),
        answered: 0,
        mismatched: 0,
        prepares: 0,
        cached_curves: 0,
        fingerprints: Vec::with_capacity(trace.len()),
    };
    for (kind, req) in trace {
        let t0 = std::time::Instant::now();
        let resp = client.roundtrip(req.clone()).expect("replay roundtrip");
        arm.lat_ns.push(t0.elapsed().as_nanos() as u64);
        arm.answered += 1;
        if !kind_matches(*kind, &resp.response) {
            arm.mismatched += 1;
            eprintln!(
                "X12: request {} expected a {kind:?} answer, got {:?}",
                resp.id, resp.response
            );
        }
        match &resp.response {
            Response::Solve(r) if r.prep_ns > 0 => arm.prepares += 1,
            Response::CurveExact(c) if c.cached_curve => arm.cached_curves += 1,
            _ => {}
        }
        arm.fingerprints.push(fingerprint(&resp.response));
    }
    arm
}

/// Bind an in-process daemon, optionally on a store directory, and
/// return its endpoint, its thread, and how long the bind took (for
/// store-backed daemons that is recovery: the boot scan runs inside).
fn spawn_daemon(
    store: Option<PathBuf>,
) -> (Endpoint, std::thread::JoinHandle<std::io::Result<()>>, u64) {
    let t0 = std::time::Instant::now();
    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 2,
        cache: reclaim_service::cache::CacheConfig {
            max_entries: 4096,
            max_bytes: 256 << 20,
        },
        store,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral daemon");
    let bind_ns = t0.elapsed().as_nanos() as u64;
    let ep = daemon.endpoint();
    let handle = std::thread::spawn(move || daemon.run());
    (ep, handle, bind_ns)
}

/// Fetch the daemon's store counters.
fn store_stats(ep: &Endpoint) -> reclaim_service::proto::StoreStatsReport {
    let mut client = Client::connect(ep).expect("connect stats client");
    match client.roundtrip(Request::Stats).expect("stats").response {
        Response::Stats(s) => s.store,
        other => panic!("unexpected response: {other:?}"),
    }
}

fn shutdown(ep: &Endpoint, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(ep).expect("connect for shutdown");
    match client
        .roundtrip(Request::Shutdown)
        .expect("shutdown")
        .response
    {
        Response::Shutdown => {}
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    handle.join().expect("daemon thread").expect("daemon run");
}

fn percentile(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e3
}

/// Run the experiment.
pub fn run() -> Outcome {
    let (n_graphs, total) = scale();
    let pool = pool(n_graphs);
    let trace = trace(&pool, total);
    let requests = trace.len();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let dir = std::env::temp_dir().join(format!("reclaim-x12-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Arm 1: populate the store, then shut down cleanly (the spill on
    // shutdown is what a warm restart recovers from).
    let (ep, handle, _) = spawn_daemon(Some(dir.clone()));
    let populate = replay(&ep, &trace);
    let populated = store_stats(&ep);
    shutdown(&ep, handle);

    // Arm 2: restart on the populated store. The bind is the
    // recovery: the boot scan re-indexes every entry before the
    // socket opens.
    let (ep, handle, recovery_ns) = spawn_daemon(Some(dir.clone()));
    let warm = replay(&ep, &trace);
    let recovered = store_stats(&ep);
    shutdown(&ep, handle);

    // Arm 3: no store — every distinct instance pays its prepare.
    let (ep, handle, _) = spawn_daemon(None);
    let cold = replay(&ep, &trace);
    shutdown(&ep, handle);

    let _ = std::fs::remove_dir_all(&dir);

    let clean = |a: &Arm| a.answered == requests && a.mismatched == 0;
    let lossless = clean(&populate) && clean(&warm) && clean(&cold);
    let answers_match =
        populate.fingerprints == warm.fingerprints && warm.fingerprints == cold.fingerprints;
    let prepare_ratio = cold.prepares as f64 / warm.prepares.max(1) as f64;
    // Prepare counts are deterministic (they depend on the trace, not
    // on timing), so the ratio is gated unconditionally.
    let few_prepares = prepare_ratio >= GATE_RATIO;
    let recovered_warm = recovered.recovered > 0;

    let mut warm_lat = warm.lat_ns.clone();
    warm_lat.sort_unstable();
    let mut cold_lat = cold.lat_ns.clone();
    cold_lat.sort_unstable();
    let (w_p50, w_p99) = (percentile(&warm_lat, 50), percentile(&warm_lat, 99));
    let (c_p50, c_p99) = (percentile(&cold_lat, 50), percentile(&cold_lat, 99));

    let mut table = Table::new(&[
        "arm",
        "requests",
        "prepares",
        "cached curves",
        "p50(µs)",
        "p99(µs)",
        "mismatched",
    ]);
    let mut row = |name: &str, a: &Arm, p50: f64, p99: f64| {
        table.row(&[
            name.into(),
            format!("{requests}"),
            format!("{}", a.prepares),
            format!("{}", a.cached_curves),
            format!("{p50:.1}"),
            format!("{p99:.1}"),
            format!("{}", a.mismatched),
        ]);
    };
    {
        let mut pop_lat = populate.lat_ns.clone();
        pop_lat.sort_unstable();
        let (p50, p99) = (percentile(&pop_lat, 50), percentile(&pop_lat, 99));
        row("populate (store, cold)", &populate, p50, p99);
    }
    row("warm restart (store)", &warm, w_p50, w_p99);
    row("cold (no store)", &cold, c_p50, c_p99);

    let pass = lossless && answers_match && few_prepares && recovered_warm;
    Outcome {
        id: "X12",
        claim: "a daemon restarted on its content-addressed store answers the \
                same deterministic trace with bit-identical energies, zero-ish \
                prepare passes (>= 5x fewer than a cold start), and curves \
                served from restored slots — recovery time is one boot scan",
        size: requests,
        metrics: vec![
            ("requests", requests as f64),
            ("graphs", n_graphs as f64),
            ("cores", cores as f64),
            ("cold_prepares", cold.prepares as f64),
            ("warm_prepares", warm.prepares as f64),
            ("prepare_ratio", prepare_ratio),
            ("recovery_ms", recovery_ns as f64 / 1e6),
            ("warm_p50_us", w_p50),
            ("warm_p99_us", w_p99),
            ("cold_p50_us", c_p50),
            ("cold_p99_us", c_p99),
            ("warm_cached_curves", warm.cached_curves as f64),
            ("store_entries", populated.entries as f64),
            ("store_bytes", populated.bytes as f64),
            ("store_recovered", recovered.recovered as f64),
            ("store_corrupt_skipped", recovered.corrupt_skipped as f64),
            ("answers_match", f64::from(u8::from(answers_match))),
            ("lossless", f64::from(u8::from(lossless))),
        ],
        table,
        verdict: format!(
            "{}: {requests} requests × 3 arms, cold paid {} prepare passes vs \
             {} warm ({prepare_ratio:.1}×, want ≥ {GATE_RATIO}×), recovery \
             {:.2} ms for {} entries, energies {} across arms, lossless {}",
            if pass { "PASS" } else { "FAIL" },
            cold.prepares,
            warm.prepares,
            recovery_ns as f64 / 1e6,
            recovered.recovered,
            if answers_match {
                "bit-identical"
            } else {
                "DRIFTED"
            },
            if lossless { "✓" } else { "✗" },
        ),
    }
}
