//! X5 (extension) — sensitivity to the *given* mapping: the paper
//! freezes the mapping, so the natural follow-up is how much energy a
//! bad mapping costs. We compare the reclaimable energy under
//! critical-path list scheduling, FIFO list scheduling, round-robin,
//! and random mappings, and across processor counts.

use super::{cont_energy, Outcome};
use mapping::{list_schedule, random_mapping, round_robin, Priority};
use rand::rngs::StdRng;
use rand::SeedableRng;
use report::Table;
use taskgraph::generators;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "procs",
        "BL-list",
        "FIFO-list",
        "round-robin",
        "random",
        "worst/best",
    ]);
    let mut all_ok = true;
    let mut worst_spread = 1.0f64;

    for &procs in &[2usize, 3, 4] {
        // Geo-means over an instance ensemble, same absolute deadline
        // per instance across all mappings (the fair comparison).
        let mut energies = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(1500 + seed);
            let app = generators::layered_dag(4, 4, 0.3, 1.0, 5.0, &mut rng);
            // A deadline every mapping can meet: serial execution at
            // half speed would fit; use total work (any list schedule's
            // critical path is ≤ total work at unit speed).
            let d = app.total_work();
            let mappings = [
                list_schedule(&app, procs, Priority::BottomLevel),
                list_schedule(&app, procs, Priority::Topological),
                round_robin(&app, procs),
                random_mapping(&app, procs, &mut rng),
            ];
            for (k, m) in mappings.iter().enumerate() {
                let exec = m.execution_graph(&app).expect("valid mapping");
                energies[k].push(cont_energy(&exec, d, None));
            }
        }
        let geo: Vec<f64> = energies.iter().map(|v| report::geo_mean(v)).collect();
        let best = geo.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = geo.iter().copied().fold(0.0f64, f64::max);
        // The critical-path list schedule should not lose badly to any
        // other mapping.
        all_ok &= geo[0] <= worst * (1.0 + 1e-9);
        worst_spread = worst_spread.max(worst / best);
        table.row(&[
            procs.to_string(),
            format!("{:.2}", geo[0]),
            format!("{:.2}", geo[1]),
            format!("{:.2}", geo[2]),
            format!("{:.2}", geo[3]),
            format!("{:.3}", worst / best),
        ]);
    }
    Outcome {
        size: 16,
        metrics: vec![],
        id: "X5",
        claim: "(extension) the frozen mapping matters: bad placements cost real energy even after optimal speed scaling",
        table,
        verdict: format!(
            "{}: mapping choice spreads optimal energy by up to ×{worst_spread:.2} — speed scaling cannot undo a bad placement",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
