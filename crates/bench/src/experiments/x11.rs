//! X11 (extension) — event-driven daemon throughput: a deterministic
//! mixed traffic trace replayed serial vs pipelined against a live
//! `reclaimd`, measuring what the nonblocking poll loop and the
//! pipelined client buy together.
//!
//! **The trace.** A fixed xorshift stream deals `REQUESTS_PER_CONN`
//! requests to each of `CONNECTIONS` connections from a weighted mix:
//! cached solves (the common case), multi-deadline solves, sampled
//! and exact energy curves (Vdd-hopping, so the parametric ray and
//! curve cache are on the path), incremental patches against cached
//! bases, and sharded corpus runs — every protocol-v4 request kind
//! the daemon serves. The trace depends only on the seed: with
//! `X11_MANIFEST=PATH` in the environment a manifest (one line per
//! request: connection, sequence number, and the encoded envelope) is
//! written to `PATH`, and two independent process runs must produce
//! byte-identical files (CI `cmp`s them).
//!
//! **Arms.** The same trace replays against a fresh in-process daemon
//! per arm, after an identical warmup that populates the solve,
//! curve, and patch caches:
//!
//! * *serial*: pipeline window 1 — one request in flight, the classic
//!   request/response lockstep;
//! * *pipelined*: window `WINDOW` (32) — the client keeps the window
//!   full and reassociates responses by id in daemon completion
//!   order, exercising the out-of-order write path and the
//!   per-connection admission bound (window = `--max-inflight`).
//!
//! **Gates.** Structural correctness is gated unconditionally: every
//! request must be answered exactly once with the response kind its
//! request calls for (zero dropped, zero mismatched) in both arms.
//! The throughput claim — pipelined ≥ 4× serial — is enforced only
//! when the host grants ≥ 4 cores (below that the speedup is
//! reported, not gated; CI runs on ≥ 4). Per-request latency
//! percentiles (p50/p99) land in `BENCH_X11.json` either way.
//!
//! `X11_SMOKE=1` shrinks the trace for quick CI runs; the manifest
//! determinism contract holds at every scale.

use super::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::engine::content_key;
use reclaim_service::client::Client;
use reclaim_service::corpus::CorpusJob;
use reclaim_service::daemon::{Daemon, DaemonConfig};
use reclaim_service::proto::{Request, RequestEnvelope, Response};
use reclaim_service::Endpoint;
use report::Table;
use taskgraph::edit::GraphEdit;
use taskgraph::{generators, TaskGraph};

/// Pipelined arm's window; matches the daemon's default
/// `--max-inflight` so the admission bound is actually exercised.
const WINDOW: usize = 32;
/// Gate the speedup only at this many cores or more.
const GATE_CORES: usize = 4;
/// Deadline slack factor for the cached solves.
const SLACK: f64 = 1.35;
/// Exact/sampled curve deadline-factor range.
const CURVE_LO: f64 = 1.1;
const CURVE_HI: f64 = 1.6;

/// Full-scale vs `X11_SMOKE=1` trace dimensions: (connections,
/// requests per connection).
fn scale() -> (usize, usize) {
    if std::env::var("X11_SMOKE").is_ok() {
        (3, 16)
    } else {
        (120, 180)
    }
}

/// What a response must be for the trace entry that asked for it.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Kind {
    Solve,
    Deadlines,
    CurveSampled,
    CurveExact,
    Patch,
    Corpus,
}

fn kind_matches(kind: Kind, resp: &Response) -> bool {
    matches!(
        (kind, resp),
        (Kind::Solve, Response::Solve(_))
            | (Kind::Deadlines, Response::Deadlines(_))
            | (Kind::CurveSampled, Response::Curve(_))
            | (Kind::CurveExact, Response::CurveExact(_))
            | (Kind::Patch, Response::Patch(_))
            | (Kind::Corpus, Response::Corpus(_))
    )
}

/// The fixed workload pool: small series–parallel graphs (sizes
/// 36–96), their solve deadlines, and the corpus jobs.
struct Pool {
    graphs: Vec<(TaskGraph, f64)>,
    solve_model: models::EnergyModel,
    curve_model: models::EnergyModel,
    corpus_jobs: Vec<CorpusJob>,
}

fn pool() -> Pool {
    // Small graphs on purpose: the replay measures the transport, so
    // per-request work (codec + cached solve) must be cheap enough
    // that the serial arm's cost is the round trip itself.
    let graphs: Vec<(TaskGraph, f64)> = (0..6)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0x11AA + i as u64);
            let (g, _) = generators::random_sp(16 + 6 * i, 0.55, 1.0, 5.0, &mut rng);
            let d = SLACK * taskgraph::analysis::critical_path_weight(&g);
            (g, d)
        })
        .collect();
    let corpus_jobs = (0..4)
        .map(|i| CorpusJob {
            name: format!("trace_{i}.inst"),
            graph: generators::chain(&[1.0 + i as f64, 2.0, 0.5, 1.5]),
            model: models::EnergyModel::continuous_unbounded(),
            deadline: 10.0,
        })
        .collect();
    Pool {
        graphs,
        solve_model: models::EnergyModel::continuous_unbounded(),
        curve_model: models::EnergyModel::VddHopping(
            models::DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap(),
        ),
        corpus_jobs,
    }
}

/// Deal the deterministic trace: `conns` connections of `per_conn`
/// requests each, from the weighted mix. Depends only on the seed and
/// the pool — never on timing.
///
/// Patch requests use *identity batches* — set a weight, set it back
/// — so the XOR-delta patched key equals the base key and the cache
/// entry is re-inserted in place. That makes patches repeatable (a
/// rekeying patch consumes its base: the entry moves to the patched
/// key and a second patch of the same base is `unknown-base`) and
/// safe to run concurrently inside a pipeline window, while still
/// driving the full patch path: edit application, instance clone,
/// re-solve, rekey accounting.
fn trace(pool: &Pool, conns: usize, per_conn: usize) -> Vec<Vec<(Kind, Request)>> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let mut roll = move |m: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % m
    };
    (0..conns)
        .map(|_| {
            (0..per_conn)
                .map(|_| {
                    let (g, d) = &pool.graphs[roll(pool.graphs.len() as u64) as usize];
                    match roll(100) {
                        // Cached solves dominate, as in real traffic.
                        0..=49 => (
                            Kind::Solve,
                            Request::Solve {
                                graph: g.clone(),
                                model: pool.solve_model.clone(),
                                deadline: *d,
                            },
                        ),
                        50..=59 => (
                            Kind::Deadlines,
                            Request::SolveDeadlines {
                                graph: g.clone(),
                                model: pool.solve_model.clone(),
                                deadlines: vec![*d, 1.1 * d, 1.5 * d],
                            },
                        ),
                        // Exact curves hit the daemon's curve cache
                        // after warmup; sampled curves recompute every
                        // time, so they ride on the smallest graph
                        // only (they exercise the protocol, not the
                        // throughput claim).
                        60..=61 => (
                            Kind::CurveSampled,
                            Request::EnergyCurve {
                                graph: pool.graphs[0].0.clone(),
                                model: pool.curve_model.clone(),
                                points: 4,
                                lo: CURVE_LO,
                                hi: CURVE_HI,
                                exact: false,
                            },
                        ),
                        62..=69 => (
                            Kind::CurveExact,
                            Request::EnergyCurve {
                                graph: g.clone(),
                                model: pool.curve_model.clone(),
                                points: 4,
                                lo: CURVE_LO,
                                hi: CURVE_HI,
                                exact: true,
                            },
                        ),
                        70..=94 => {
                            let task = roll(g.n() as u64) as usize;
                            let w0 = g.weights()[task];
                            (
                                Kind::Patch,
                                Request::Patch {
                                    base: content_key(g, &pool.solve_model),
                                    edits: vec![
                                        GraphEdit::SetWeight {
                                            task,
                                            weight: w0 + 1.0,
                                        },
                                        GraphEdit::SetWeight { task, weight: w0 },
                                    ],
                                    deadline: *d,
                                },
                            )
                        }
                        _ => (
                            Kind::Corpus,
                            Request::Corpus {
                                shards: 2,
                                jobs: pool.corpus_jobs.clone(),
                            },
                        ),
                    }
                })
                .collect()
        })
        .collect()
}

/// Render the trace manifest: connection, sequence number, encoded
/// envelope (ids are trace-global sequence numbers, not live client
/// ids). Two runs of the same binary must produce identical bytes.
fn manifest(trace: &[Vec<(Kind, Request)>]) -> String {
    let mut s = String::new();
    let mut seq = 0u64;
    for (c, conn) in trace.iter().enumerate() {
        for (k, (_, req)) in conn.iter().enumerate() {
            s.push_str(&format!(
                "{c}:{k} {}\n",
                RequestEnvelope::new(seq, req.clone()).encode()
            ));
            seq += 1;
        }
    }
    s
}

/// One arm's replay measurements.
struct Arm {
    wall_ns: u64,
    /// Per-request latency samples, nanoseconds.
    lat_ns: Vec<u64>,
    answered: usize,
    mismatched: usize,
    dropped: usize,
}

/// Replay the trace connection by connection at the given window.
/// Window 1 is the serial arm; the code path is otherwise identical.
fn replay(ep: &Endpoint, trace: &[Vec<(Kind, Request)>], window: usize) -> Arm {
    let mut lat_ns = Vec::new();
    let mut answered = 0usize;
    let mut mismatched = 0usize;
    let mut dropped = 0usize;
    let t0 = std::time::Instant::now();
    for conn in trace {
        let mut client = Client::connect(ep).expect("connect replay client");
        let mut pipe = client.pipeline(window);
        let mut sent: std::collections::HashMap<u64, (std::time::Instant, Kind)> =
            std::collections::HashMap::new();
        let mut record = |resp: reclaim_service::proto::ResponseEnvelope,
                          sent: &mut std::collections::HashMap<u64, (std::time::Instant, Kind)>,
                          lat_ns: &mut Vec<u64>| {
            let Some((at, kind)) = sent.remove(&resp.id) else {
                mismatched += 1;
                return;
            };
            lat_ns.push(at.elapsed().as_nanos() as u64);
            answered += 1;
            if !kind_matches(kind, &resp.response) {
                mismatched += 1;
                eprintln!(
                    "X11: request {} expected a {kind:?} answer, got {:?}",
                    resp.id, resp.response
                );
            }
        };
        for (kind, req) in conn {
            let id = pipe.send(req.clone()).expect("pipelined send");
            sent.insert(id, (std::time::Instant::now(), *kind));
            // Responses collected while `send` waited for window
            // space: timestamp them now, not at the final drain.
            for resp in pipe.take_ready() {
                record(resp, &mut sent, &mut lat_ns);
            }
        }
        while pipe.outstanding() > 0 {
            let resp = pipe.recv().expect("pipelined recv");
            record(resp, &mut sent, &mut lat_ns);
        }
        dropped += sent.len();
    }
    Arm {
        wall_ns: t0.elapsed().as_nanos() as u64,
        lat_ns,
        answered,
        mismatched,
        dropped,
    }
}

/// Fresh daemon + identical warmup (populate solve, curve, and corpus
/// caches so the replay measures the transport, not cold solves).
fn spawn_warm_daemon(pool: &Pool) -> (Endpoint, std::thread::JoinHandle<std::io::Result<()>>) {
    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 4,
        cache: reclaim_service::cache::CacheConfig {
            max_entries: 4096,
            max_bytes: 256 << 20,
        },
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral daemon");
    let ep = daemon.endpoint();
    let handle = std::thread::spawn(move || daemon.run());
    let mut client = Client::connect(&ep).expect("connect warmup client");
    for (g, d) in &pool.graphs {
        client
            .roundtrip(Request::Solve {
                graph: g.clone(),
                model: pool.solve_model.clone(),
                deadline: *d,
            })
            .expect("warmup solve");
        client
            .roundtrip(Request::EnergyCurve {
                graph: g.clone(),
                model: pool.curve_model.clone(),
                points: 4,
                lo: CURVE_LO,
                hi: CURVE_HI,
                exact: true,
            })
            .expect("warmup curve");
    }
    client
        .roundtrip(Request::Corpus {
            shards: 2,
            jobs: pool.corpus_jobs.clone(),
        })
        .expect("warmup corpus");
    (ep, handle)
}

fn shutdown(ep: &Endpoint, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(ep).expect("connect for shutdown");
    match client
        .roundtrip(Request::Shutdown)
        .expect("shutdown")
        .response
    {
        Response::Shutdown => {}
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    handle.join().expect("daemon thread").expect("daemon run");
}

fn percentile(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e3
}

/// Run the experiment.
pub fn run() -> Outcome {
    let (conns, per_conn) = scale();
    let pool = pool();
    let trace = trace(&pool, conns, per_conn);
    let requests: usize = trace.iter().map(Vec::len).sum();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if let Ok(path) = std::env::var("X11_MANIFEST") {
        std::fs::write(&path, manifest(&trace)).expect("write X11 manifest");
    }

    let (ep, handle) = spawn_warm_daemon(&pool);
    let serial = replay(&ep, &trace, 1);
    shutdown(&ep, handle);

    let (ep, handle) = spawn_warm_daemon(&pool);
    let pipelined = replay(&ep, &trace, WINDOW);
    shutdown(&ep, handle);

    let speedup = serial.wall_ns as f64 / pipelined.wall_ns.max(1) as f64;
    let fast_enough = speedup >= 4.0 || cores < GATE_CORES;
    let clean = |a: &Arm| a.answered == requests && a.mismatched == 0 && a.dropped == 0;
    let lossless = clean(&serial) && clean(&pipelined);

    let mut serial_lat = serial.lat_ns.clone();
    serial_lat.sort_unstable();
    let mut pipe_lat = pipelined.lat_ns.clone();
    pipe_lat.sort_unstable();
    let (s_p50, s_p99) = (percentile(&serial_lat, 50), percentile(&serial_lat, 99));
    let (p_p50, p_p99) = (percentile(&pipe_lat, 50), percentile(&pipe_lat, 99));

    let mut table = Table::new(&[
        "arm",
        "requests",
        "wall(ms)",
        "p50(µs)",
        "p99(µs)",
        "dropped",
        "mismatched",
    ]);
    table.row(&[
        "serial (window 1)".into(),
        format!("{requests}"),
        format!("{:.2}", serial.wall_ns as f64 / 1e6),
        format!("{s_p50:.1}"),
        format!("{s_p99:.1}"),
        format!("{}", serial.dropped),
        format!("{}", serial.mismatched),
    ]);
    table.row(&[
        format!("pipelined (window {WINDOW})"),
        format!("{requests}"),
        format!("{:.2}", pipelined.wall_ns as f64 / 1e6),
        format!("{p_p50:.1}"),
        format!("{p_p99:.1}"),
        format!("{}", pipelined.dropped),
        format!("{}", pipelined.mismatched),
    ]);

    let pass = lossless && fast_enough;
    Outcome {
        id: "X11",
        claim: "the event-driven poll loop sustains pipelined mixed traffic \
                losslessly (every request answered once, right kind, out-of-order \
                completion reassociated by id) and a window of 32 beats serial \
                lockstep by ≥ 4× on the same deterministic trace",
        size: requests,
        metrics: vec![
            ("requests", requests as f64),
            ("connections", conns as f64),
            ("window", WINDOW as f64),
            ("serial_ns", serial.wall_ns as f64),
            ("pipelined_ns", pipelined.wall_ns as f64),
            ("speedup", speedup),
            ("cores", cores as f64),
            ("serial_p50_us", s_p50),
            ("serial_p99_us", s_p99),
            ("pipelined_p50_us", p_p50),
            ("pipelined_p99_us", p_p99),
            ("dropped", (serial.dropped + pipelined.dropped) as f64),
            (
                "mismatched",
                (serial.mismatched + pipelined.mismatched) as f64,
            ),
            ("lossless", f64::from(u8::from(lossless))),
        ],
        table,
        verdict: format!(
            "{}: {requests} requests × 2 arms, speedup {speedup:.2}× on {cores} \
             cores (want ≥ 4× at ≥ {GATE_CORES}), pipelined p99 {p_p99:.1} µs \
             vs serial p99 {s_p99:.1} µs, lossless {}",
            if pass { "PASS" } else { "FAIL" },
            if lossless { "✓" } else { "✗" },
        ),
    }
}
