//! T1 — Theorem 1: the fork closed form (including `s_max`
//! saturation) agrees with the independent numerical solver.

use super::{time_it, Outcome, P};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::continuous;
use report::Table;
use taskgraph::generators;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "n-leaves",
        "deadline",
        "regime",
        "E-closed-form",
        "E-numerical",
        "rel-diff",
        "t-closed(us)",
        "t-numeric(us)",
    ]);
    let mut rng = StdRng::seed_from_u64(101);
    let mut worst = 0.0f64;

    for &n in &[2usize, 4, 8, 16, 32] {
        let children = generators::random_weights(n, 1.0, 5.0, &mut rng);
        let g = generators::fork(2.0, &children);
        let comb = P.parallel_combine(children.iter().copied());
        // The saturated branch needs cp/D < s_max < s0; the midpoint
        // always qualifies because s0 = (comb + w0)/D ≥ cp/D with
        // strict inequality for ≥ 2 leaves (comb > max w_i).
        let d = 2.0;
        let s0_unconstrained = (comb + 2.0) / d;
        let cp = taskgraph::analysis::critical_path_weight(&g);
        let sm_mid = 0.5 * (cp / d + s0_unconstrained);
        assert!(sm_mid > cp / d && sm_mid < s0_unconstrained);
        for (label, s_max) in [("unsaturated", None), ("saturated", Some(sm_mid))] {
            let (closed, t_closed) = time_it(|| continuous::solve_fork(&g, d, s_max, P).unwrap());
            let (numer, t_numer) =
                time_it(|| continuous::solve_general(&g, d, s_max, P, None).unwrap());
            let e_closed = continuous::energy_of_speeds(&g, &closed, P);
            let e_numer = continuous::energy_of_speeds(&g, &numer, P);
            let rel = (e_closed - e_numer).abs() / e_closed;
            worst = worst.max(rel);
            table.row(&[
                n.to_string(),
                format!("{d:.2}"),
                label.into(),
                format!("{e_closed:.6}"),
                format!("{e_numer:.6}"),
                format!("{rel:.2e}"),
                format!("{:.0}", t_closed * 1e6),
                format!("{:.0}", t_numer * 1e6),
            ]);
        }
    }
    let pass = worst < 1e-4;
    Outcome {
        size: 33,
        metrics: vec![],
        id: "T1",
        claim: "fork optimum: s0 = ((Σ w_i³)^⅓ + w0)/D, s_i ∝ w_i; s_max-saturated fallback",
        table,
        verdict: format!(
            "{}: closed form vs numerical worst relative diff = {worst:.2e} (threshold 1e-4)",
            if pass { "PASS" } else { "FAIL" }
        ),
    }
}
