//! T2 — Theorem 2: trees and series–parallel graphs solve exactly in
//! polynomial time (equivalent-weight composition), agreeing with the
//! numerical solver and scaling polynomially in `n`.

use super::{time_it, Outcome, P};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::continuous;
use report::Table;
use taskgraph::{generators, SpTree};

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "family",
        "n",
        "t-exact(us)",
        "E-exact",
        "E-numerical",
        "rel-diff",
    ]);
    let mut rng = StdRng::seed_from_u64(202);
    let mut worst = 0.0f64;
    let mut times: Vec<(usize, f64)> = Vec::new();

    for &n in &[10usize, 30, 100, 300, 1000, 3000] {
        // Random out-tree.
        let tree = generators::random_out_tree(n, 1.0, 5.0, &mut rng);
        let d = taskgraph::analysis::critical_path_weight(&tree) * 0.8;
        let (speeds, t_exact) = time_it(|| continuous::solve_tree(&tree, d, P).unwrap());
        let e_exact = continuous::energy_of_speeds(&tree, &speeds, P);
        times.push((n, t_exact));
        // Cross-check with the barrier solver on small sizes only
        // (dense Newton is O(n³)).
        let (e_num_str, rel) = if n <= 100 {
            let numer = continuous::solve_general(&tree, d, None, P, None).unwrap();
            let e_numer = continuous::energy_of_speeds(&tree, &numer, P);
            let rel = (e_exact - e_numer).abs() / e_exact;
            worst = worst.max(rel);
            (format!("{e_numer:.6}"), format!("{rel:.2e}"))
        } else {
            ("-".into(), "-".into())
        };
        table.row(&[
            "tree".into(),
            n.to_string(),
            format!("{:.0}", t_exact * 1e6),
            format!("{e_exact:.6}"),
            e_num_str,
            rel,
        ]);

        // Random series–parallel graph (decomposition known by
        // construction; recognition is also exercised for small n).
        let (sp, decomp) = generators::random_sp(n, 0.55, 1.0, 5.0, &mut rng);
        let d = taskgraph::analysis::critical_path_weight(&sp) * 0.8;
        let (speeds, t_exact) = time_it(|| continuous::solve_sp(&sp, &decomp, d, P).unwrap());
        let e_exact = continuous::energy_of_speeds(&sp, &speeds, P);
        if n <= 100 {
            // Recognition must rediscover a decomposition with the
            // same optimal energy.
            let rec = SpTree::from_graph(&sp).expect("generated SP graph");
            let speeds2 = continuous::solve_sp(&sp, &rec, d, P).unwrap();
            let e2 = continuous::energy_of_speeds(&sp, &speeds2, P);
            worst = worst.max((e_exact - e2).abs() / e_exact);
        }
        let (e_num_str, rel) = if n <= 100 {
            let numer = continuous::solve_general(&sp, d, None, P, None).unwrap();
            let e_numer = continuous::energy_of_speeds(&sp, &numer, P);
            let rel = (e_exact - e_numer).abs() / e_exact;
            worst = worst.max(rel);
            (format!("{e_numer:.6}"), format!("{rel:.2e}"))
        } else {
            ("-".into(), "-".into())
        };
        table.row(&[
            "sp".into(),
            n.to_string(),
            format!("{:.0}", t_exact * 1e6),
            format!("{e_exact:.6}"),
            e_num_str,
            rel,
        ]);
    }

    // Polynomial-scaling check: time should grow ≲ n² (the
    // composition itself is O(n); recognition is not timed here).
    let (n0, t0) = times[0];
    let (n1, t1) = *times.last().unwrap();
    let growth = (t1.max(1e-9) / t0.max(1e-9)).log2() / ((n1 as f64 / n0 as f64).log2());
    let pass = worst < 1e-4 && growth < 3.0;
    Outcome {
        size: 3000,
        metrics: vec![],
        id: "T2",
        claim: "MinEnergy solvable in polynomial time on trees and SP graphs (s_max = ∞)",
        table,
        verdict: format!(
            "{}: worst rel-diff vs numerical = {worst:.2e}; tree-solver time growth exponent ≈ {growth:.2} (poly)",
            if pass { "PASS" } else { "FAIL" }
        ),
    }
}
