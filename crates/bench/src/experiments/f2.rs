//! F2 — energy ratio vs number of modes `m`: Vdd-Hopping "smooths out
//! the discrete nature of the modes" even with few modes, while
//! Discrete needs many modes to approach Continuous.

use super::{cont_energy, Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use reclaim_core::{discrete, vdd};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&["m-modes", "Vdd/Cont", "Disc/Cont", "vdd-advantage"]);
    let seeds: Vec<u64> = (0..8).collect();
    let mut prev_disc = f64::INFINITY;
    let mut disc_decreases = true;
    let mut vdd_below_disc = true;

    for &m in &[2usize, 3, 4, 6, 8, 12, 16] {
        let modes = spread_modes(m, 0.5, 3.0);
        let mut r_vdd = Vec::new();
        let mut r_disc = Vec::new();
        for &seed in &seeds {
            let g = random_execution_graph(4, 3, 2, 900 + seed);
            let d = 1.5 * dmin(&g, modes.s_max());
            let e_cont = cont_energy(&g, d, Some(modes.s_max()));
            let e_vdd = vdd::solve_lp(&g, d, &modes, P).unwrap().energy(&g, P);
            // Exact optimum while the search stays tractable
            // (Theorem 4: it is exponential in general; the chain-
            // cover bound pushes tractability to m ≈ 8 here); the
            // rounding upper bound beyond.
            let e_disc = if m <= 8 {
                discrete::exact(&g, d, &modes, P).unwrap().energy
            } else {
                let sp = discrete::round_up(&g, d, &modes, P, None).unwrap();
                reclaim_core::continuous::energy_of_speeds(&g, &sp, P)
            };
            r_vdd.push(e_vdd / e_cont);
            r_disc.push(e_disc / e_cont);
        }
        let gv = report::geo_mean(&r_vdd);
        let gd = report::geo_mean(&r_disc);
        vdd_below_disc &= gv <= gd * (1.0 + 1e-6);
        if m <= 8 {
            // Exact values must be non-increasing in m for nested
            // spread sets only; ours are not nested, so allow noise but
            // require the overall trend down.
            disc_decreases &= gd <= prev_disc * 1.10;
            prev_disc = gd;
        }
        table.row(&[
            m.to_string(),
            format!("{gv:.4}"),
            format!("{gd:.4}"),
            format!("{:.4}", gd / gv),
        ]);
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "F2",
        claim: "Vdd-Hopping smooths out mode discreteness: near-Continuous with any m; Discrete converges only as m grows",
        table,
        verdict: format!(
            "{}: E_vdd ≤ E_disc at every m; the discrete premium shrinks with m while Vdd stays ≈ 1",
            if vdd_below_disc && disc_decreases { "PASS" } else { "FAIL" }
        ),
    }
}
