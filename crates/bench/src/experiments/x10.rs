//! X10 (extension) — deterministic parallel branch-and-bound with
//! portfolio racing, on a 512-task instance whose hardness is
//! concentrated in a combinatorial core.
//!
//! **The instance.** A 512-task chain: 24 *core* tasks with irregular
//! weights followed by 488 heavy uniform *tail* tasks, two speed
//! modes `{1, 2}`. The deadline grants the core a slack window
//! smaller than one tail slowdown costs, so every tail task is forced
//! to top speed along every search path and the search is a
//! subset-selection problem over the core — exponential in the core,
//! linear in the tail, exactly the regime where the fixed-depth
//! partition split pays off (the frontier forms inside the core).
//!
//! Every timed arm runs **cold** (no round-up seeding): at this size
//! the boxed continuous relaxation behind Proposition 1(b) costs
//! orders of magnitude more than the whole search, and the claim
//! under test is search throughput, not seeding. The anytime arm
//! instead demonstrates the budget-trip contract with an incumbent
//! found *by the search itself*.
//!
//! **Arms.**
//!
//! * *sequential*: [`discrete::exact_with_config`] — the baseline
//!   single-threaded branch-and-bound;
//! * *parallel-deterministic*: [`par_bnb::exact_par`] at 4 workers,
//!   run **twice** — both runs must agree on energy bits, speeds, and
//!   the full per-partition manifest (keys, node counts, prune
//!   counters), and the wall-clock must beat sequential by ≥ 2×
//!   (enforced only when the host grants ≥ 4 cores; below that the
//!   measurement is reported, not gated — CI runs on ≥ 4);
//! * *racing*: the portfolio (slowest-first vs fastest-first
//!   branching) — values must match the sequential optimum exactly
//!   and a winning arm must be declared;
//! * *anytime*: the sequential search re-run under a deliberately
//!   tripping node budget — it must return the feasible incumbent
//!   with a non-negative optimality gap, and a budget too small to
//!   reach any leaf must be the structured
//!   [`SolveError::BudgetExhausted`], never a string-matched
//!   numerical error.
//!
//! With `X10_MANIFEST=PATH` in the environment, the deterministic
//! arm's partition manifest is written to `PATH` (stable field order,
//! energies as bit patterns, no timings) so CI can `cmp` the files
//! from two independent process runs.

use super::Outcome;
use reclaim_core::discrete::{self, BnbConfig};
use reclaim_core::engine::par_bnb::{self, ParBnbConfig};
use reclaim_core::SolveError;
use report::Table;
use taskgraph::TaskGraph;

/// Combinatorial-core size (2^24 assignments before pruning).
const N_CORE: usize = 24;
/// Forced tail length; total task count is 512 (past the 500 bar).
const N_TAIL: usize = 488;
/// Parallel arm width.
const WORKERS: usize = 4;
/// Per-tail-task work. Slowing one tail task costs
/// `TAIL_W/1 − TAIL_W/2 = 15` time units.
const TAIL_W: f64 = 30.0;
/// Deadline slack granted to the core, in time units. Well below one
/// tail slowdown (15), so the tail is forced to top speed; roughly
/// half the core's total slowdown cost (~24), so the core is a dense
/// subset-selection search.
const CORE_SLACK: f64 = 12.0;

/// Irregular core weights in `[1, 3)` from a fixed xorshift stream —
/// deterministic across runs and platforms.
fn core_weights() -> Vec<f64> {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    (0..N_CORE)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            1.0 + (x % 1000) as f64 / 500.0
        })
        .collect()
}

/// The 512-task chain and its deadline.
fn instance() -> (TaskGraph, f64) {
    let mut weights = core_weights();
    weights.extend(std::iter::repeat_n(TAIL_W, N_TAIL));
    let edges: Vec<(usize, usize)> = (0..weights.len() - 1).map(|i| (i, i + 1)).collect();
    let total: f64 = weights.iter().sum();
    let g = TaskGraph::new(weights, &edges).unwrap();
    // Everything at top speed takes total/2; the core may spend
    // CORE_SLACK beyond that.
    (g, total / 2.0 + CORE_SLACK)
}

/// Render the deterministic arm's partition manifest: stable field
/// order, energies as f64 bit patterns, no wall-clock anywhere — two
/// runs of the same binary must produce byte-identical files.
fn manifest(partitions: &[par_bnb::PartitionReport]) -> String {
    let mut s = String::from("{\n  \"partitions\": [\n");
    for (i, p) in partitions.iter().enumerate() {
        let key: Vec<String> = p.key.iter().map(|k| k.to_string()).collect();
        let energy = match p.energy {
            Some(e) => format!("\"{:016x}\"", e.to_bits()),
            None => "null".into(),
        };
        s.push_str(&format!(
            "    {{\"arm\": \"{}\", \"key\": [{}], \"nodes\": {}, \
             \"pruned_infeasible\": {}, \"pruned_bound\": {}, \
             \"complete\": {}, \"energy_bits\": {}}}{}\n",
            p.arm,
            key.join(", "),
            p.nodes,
            p.pruned_infeasible,
            p.pruned_bound,
            p.complete,
            energy,
            if i + 1 < partitions.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run the experiment.
pub fn run() -> Outcome {
    let (g, deadline) = instance();
    let modes = models::DiscreteModes::new(&[1.0, 2.0]).unwrap();
    let n = g.n();
    let cold = BnbConfig {
        warm_start: false,
        ..Default::default()
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Sequential baseline.
    let t0 = std::time::Instant::now();
    let seq = discrete::exact_with_config(&g, deadline, &modes, super::P, cold)
        .expect("sequential exact solve");
    let seq_ns = t0.elapsed().as_nanos() as u64;
    assert!(seq.complete, "baseline must prove optimality");

    // Parallel deterministic arm, twice.
    let cfg = ParBnbConfig {
        warm_start: false,
        ..ParBnbConfig::with_workers(WORKERS)
    };
    let t0 = std::time::Instant::now();
    let par1 = par_bnb::exact_par(&g, deadline, &modes, super::P, &cfg).expect("parallel solve");
    let par_ns = t0.elapsed().as_nanos() as u64;
    let par2 = par_bnb::exact_par(&g, deadline, &modes, super::P, &cfg).expect("parallel re-run");
    let deterministic = par1.energy.to_bits() == par2.energy.to_bits()
        && par1.speeds == par2.speeds
        && par1.partitions == par2.partitions;
    let exact_match = par1.complete && par1.energy.to_bits() == seq.energy.to_bits();
    let speedup = seq_ns as f64 / par_ns.max(1) as f64;
    // Node-count overhead of searching partitions against local
    // incumbents instead of one global one — the determinism tax.
    // Near 1.0 means wall-clock speedup tracks the worker count.
    let node_ratio = par1.stats.nodes as f64 / seq.stats.nodes.max(1) as f64;
    let fast_enough = speedup >= 2.0 || cores < WORKERS;
    if let Ok(path) = std::env::var("X10_MANIFEST") {
        std::fs::write(&path, manifest(&par1.partitions)).expect("write X10 manifest");
    }

    // Racing arm: exact values, nondeterministic node counts.
    let racing_cfg = ParBnbConfig {
        racing: true,
        ..cfg
    };
    let raced =
        par_bnb::exact_par(&g, deadline, &modes, super::P, &racing_cfg).expect("racing solve");
    let racing_ok = raced.complete
        && raced.winner.is_some()
        && (raced.energy - seq.energy).abs() <= 1e-9 * seq.energy;

    // Anytime arm: a budget far below the full search must surface
    // the incumbent the search has found by then, not an error…
    let trip_budget = (seq.stats.nodes / 8).max(1);
    let anytime = discrete::exact_with_config(
        &g,
        deadline,
        &modes,
        super::P,
        BnbConfig {
            node_budget: trip_budget,
            ..cold
        },
    )
    .expect("budget trip must return the anytime incumbent");
    // …while a budget too small to reach any leaf is the structured
    // budget error, matched on shape rather than message text.
    let starved = discrete::exact_with_config(
        &g,
        deadline,
        &modes,
        super::P,
        BnbConfig {
            node_budget: 5,
            ..cold
        },
    );
    let anytime_ok = !anytime.complete
        && anytime.gap() >= 0.0
        && anytime.energy >= seq.energy * (1.0 - 1e-12)
        && matches!(starved, Err(SolveError::BudgetExhausted { budget: 5, .. }));

    let mut table = Table::new(&["arm", "nodes", "wall(ms)", "result"]);
    table.row(&[
        "sequential bnb (cold)".into(),
        format!("{}", seq.stats.nodes),
        format!("{:.2}", seq_ns as f64 / 1e6),
        format!("E = {:.4}", seq.energy),
    ]);
    table.row(&[
        format!("parallel det ({WORKERS} workers, {cores} cores)"),
        format!("{}", par1.stats.nodes),
        format!("{:.2}", par_ns as f64 / 1e6),
        format!(
            "{} partitions @ depth {}, {} steals",
            par1.partitions.len(),
            par1.depth,
            par1.steals
        ),
    ]);
    table.row(&[
        "portfolio racing".into(),
        format!("{}", raced.stats.nodes),
        "—".into(),
        format!(
            "winner {} ({} cancelled)",
            raced.winner.unwrap_or("none"),
            raced.cancellations
        ),
    ]);
    table.row(&[
        format!("anytime (budget {trip_budget})"),
        format!("{}", anytime.stats.nodes),
        "—".into(),
        format!("E = {:.4}, gap ≤ {:.2e}", anytime.energy, anytime.gap()),
    ]);

    let pass = deterministic && exact_match && fast_enough && racing_ok && anytime_ok;
    Outcome {
        id: "X10",
        claim: "deterministic fixed-depth partitioning makes parallel exact \
                branch-and-bound reproducible (byte-identical manifests at 4 \
                workers) and ≥ 2× faster than sequential on a 512-task \
                instance; racing stays exact; budget trips return the \
                anytime incumbent",
        size: n,
        metrics: vec![
            ("seq_ns", seq_ns as f64),
            ("par_ns", par_ns as f64),
            ("speedup", speedup),
            ("cores", cores as f64),
            ("seq_nodes", seq.stats.nodes as f64),
            ("par_nodes", par1.stats.nodes as f64),
            ("node_ratio", node_ratio),
            ("partitions", par1.partitions.len() as f64),
            ("deterministic", f64::from(u8::from(deterministic))),
            ("exact_match", f64::from(u8::from(exact_match))),
            ("racing_ok", f64::from(u8::from(racing_ok))),
            ("anytime_ok", f64::from(u8::from(anytime_ok))),
            ("anytime_gap", anytime.gap()),
        ],
        table,
        verdict: format!(
            "{}: speedup {speedup:.2}× on {cores} cores (want ≥ 2× at ≥ {WORKERS}), \
             node ratio {node_ratio:.3}, {} partitions deterministic {}, \
             parallel ≡ sequential {}, racing {}, anytime incumbent {}",
            if pass { "PASS" } else { "FAIL" },
            par1.partitions.len(),
            if deterministic { "✓" } else { "✗" },
            if exact_match { "✓" } else { "✗" },
            if racing_ok { "✓" } else { "✗" },
            if anytime_ok { "✓" } else { "✗" },
        ),
    }
}
