//! T3 — Theorem 3: Vdd-Hopping solves in polynomial time via LP; the
//! LP optimum is sandwiched between the Continuous lower bound and
//! every single-speed (Discrete) assignment, and LP solve time scales
//! polynomially with instance size.

use super::{cont_energy, time_it, Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use reclaim_core::{discrete, vdd};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "n",
        "m-modes",
        "tightness",
        "E-cont",
        "E-vdd-lp",
        "E-discrete",
        "t-lp(ms)",
        "sandwich",
    ]);
    let mut all_ok = true;
    let mut worst_gap = 0.0f64;

    for &(layers, width) in &[(3usize, 3usize), (4, 3), (5, 4)] {
        for &m in &[2usize, 4, 8] {
            for &tight in &[1.2, 2.0] {
                let g = random_execution_graph(layers, width, 2, 300 + m as u64);
                let modes = spread_modes(m, 0.5, 3.0);
                let d = tight * dmin(&g, modes.s_max());
                let e_cont = cont_energy(&g, d, Some(modes.s_max()));
                let (sched, t_lp) = time_it(|| vdd::solve_lp(&g, d, &modes, P).unwrap());
                let e_vdd = sched.energy(&g, P);
                // Discrete upper bound: exact when small, rounding
                // otherwise.
                let e_disc = if g.n() <= 12 {
                    discrete::exact(&g, d, &modes, P).unwrap().energy
                } else {
                    let sp = discrete::round_up(&g, d, &modes, P, None).unwrap();
                    reclaim_core::continuous::energy_of_speeds(&g, &sp, P)
                };
                let ok = e_cont <= e_vdd * (1.0 + 1e-6) && e_vdd <= e_disc * (1.0 + 1e-6);
                all_ok &= ok;
                worst_gap = worst_gap.max(e_vdd / e_cont);
                table.row(&[
                    g.n().to_string(),
                    m.to_string(),
                    format!("{tight:.2}"),
                    format!("{e_cont:.4}"),
                    format!("{e_vdd:.4}"),
                    format!("{e_disc:.4}"),
                    format!("{:.2}", t_lp * 1e3),
                    if ok { "ok".into() } else { "VIOLATED".into() },
                ]);
            }
        }
    }
    Outcome {
        size: 20,
        metrics: vec![],
        id: "T3",
        claim: "Vdd-Hopping solvable in polynomial time via LP; E_cont ≤ E_vdd ≤ E_discrete",
        table,
        verdict: format!(
            "{}: sandwich E_cont ≤ E_vdd ≤ E_disc holds on all instances; worst E_vdd/E_cont = {worst_gap:.3} (→ 1 as m grows)",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
