//! X7 (extension) — daemon throughput: repeated solves of one
//! instance through a live `reclaimd`, measuring what the
//! content-addressed cache buys.
//!
//! A daemon is started in-process on an ephemeral TCP port; a client
//! sends the same 240-task series–parallel instance once cold (cache
//! miss: the worker prepares and warms the analysis) and then
//! `WARM_REQUESTS` more times (cache hits: `prep_ns` must be 0 and
//! the solve must run against the retained analysis). The pass
//! condition is structural, not a wall-clock race: every repeat must
//! report `cached` with zero preparation, and the daemon's own hit
//! counter must match. Wall-clock per phase still lands in
//! `BENCH_X7.json` (`cold_ns` vs `warm_mean_ns`) so the perf trail
//! tracks daemon latency from this PR onward.

use super::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_service::client::Client;
use reclaim_service::daemon::{Daemon, DaemonConfig};
use reclaim_service::proto::{Request, Response, SolveReport};
use report::Table;
use taskgraph::generators;

/// Graph size (large enough that SP recognition is a real cost) and
/// warm-phase request count.
const N_TASKS: usize = 240;
const WARM_REQUESTS: usize = 16;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut rng = StdRng::seed_from_u64(7777);
    let (g, _) = generators::random_sp(N_TASKS, 0.55, 1.0, 5.0, &mut rng);
    let model = models::EnergyModel::continuous_unbounded();
    let deadline = 1.4 * taskgraph::analysis::critical_path_weight(&g);

    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 2,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral daemon");
    let endpoint = daemon.endpoint();
    let daemon_thread = std::thread::spawn(move || daemon.run());

    let mut client = Client::connect(&endpoint).expect("connect to daemon");
    let mut ask = |g: &taskgraph::TaskGraph| -> (SolveReport, u128) {
        let t0 = std::time::Instant::now();
        let resp = client
            .roundtrip(Request::Solve {
                graph: g.clone(),
                model: model.clone(),
                deadline,
            })
            .expect("solve roundtrip");
        let wall = t0.elapsed().as_nanos();
        match resp.response {
            Response::Solve(r) => (r, wall),
            other => panic!("unexpected response: {other:?}"),
        }
    };

    let (cold, cold_wall) = ask(&g);
    let mut warm_reports = Vec::with_capacity(WARM_REQUESTS);
    let mut warm_wall_total = 0u128;
    for _ in 0..WARM_REQUESTS {
        let (r, wall) = ask(&g);
        warm_wall_total += wall;
        warm_reports.push(r);
    }
    let stats = match client.roundtrip(Request::Stats).expect("stats").response {
        Response::Stats(s) => s,
        other => panic!("unexpected response: {other:?}"),
    };
    match client
        .roundtrip(Request::Shutdown)
        .expect("shutdown")
        .response
    {
        Response::Shutdown => {}
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    daemon_thread
        .join()
        .expect("daemon thread")
        .expect("daemon run");

    let hits_ok = stats.cache.hits >= WARM_REQUESTS as u64;
    let all_cached = warm_reports.iter().all(|r| r.cached && r.prep_ns == 0);
    let cold_ok = !cold.cached && cold.prep_ns > 0;
    let energy_stable = warm_reports
        .iter()
        .all(|r| (r.energy - cold.energy).abs() <= 1e-9 * (1.0 + cold.energy));
    let warm_mean_wall = warm_wall_total / WARM_REQUESTS as u128;
    let warm_mean_solve =
        warm_reports.iter().map(|r| r.solve_ns).sum::<u64>() / WARM_REQUESTS as u64;

    let mut table = Table::new(&["phase", "requests", "wall(µs)", "prep(µs)", "cache"]);
    table.row(&[
        "cold".into(),
        "1".into(),
        format!("{:.1}", cold_wall as f64 / 1e3),
        format!("{:.1}", cold.prep_ns as f64 / 1e3),
        "miss".into(),
    ]);
    table.row(&[
        "warm".into(),
        format!("{WARM_REQUESTS}"),
        format!("{:.1} (mean)", warm_mean_wall as f64 / 1e3),
        "0.0".into(),
        "hit".into(),
    ]);

    let pass = hits_ok && all_cached && cold_ok && energy_stable;
    Outcome {
        id: "X7",
        claim: "repeated solves through reclaimd skip preparation: \
                every repeat is a cache hit with prep_ns = 0, at identical energy",
        size: N_TASKS,
        metrics: vec![
            ("cold_ns", cold_wall as f64),
            ("cold_prep_ns", cold.prep_ns as f64),
            ("warm_mean_ns", warm_mean_wall as f64),
            ("warm_mean_solve_ns", warm_mean_solve as f64),
            ("cache_hits", stats.cache.hits as f64),
        ],
        table,
        verdict: format!(
            "{}: {}/{WARM_REQUESTS} hits with prep_ns = 0 (daemon counted {}), \
             cold prep {:.1} µs",
            if pass { "PASS" } else { "FAIL" },
            warm_reports.iter().filter(|r| r.cached).count(),
            stats.cache.hits,
            cold.prep_ns as f64 / 1e3,
        ),
    }
}
