//! X8 (extension) — incremental re-solving: a chain of weight-edit
//! `patch` requests against a live `reclaimd`, versus cold solves of
//! the same evolving instance.
//!
//! The paper's premise is re-solving `MinEnergy(G, D)` as the instance
//! evolves. A daemon is started in-process; a 220-task series–parallel
//! Vdd-Hopping instance is solved once (cold: graph preparation plus a
//! cold two-phase LP, which also seeds the cache entry's retained LP
//! basis). Then `N_PATCH` weight edits are sent as protocol-v2
//! `patch` requests, each naming the previous instance by content key
//! and carrying only the delta. The structural pass condition:
//!
//! * every patch reports `prep_ns = 0` (selective invalidation carried
//!   every structural analysis over) and `warm_lp` (the solve
//!   re-optimized the retained basis instead of running cold);
//! * every patched energy matches an independent cold solve of the
//!   same edited graph to LP tolerance;
//! * the mean patched re-solve is **≥ 5× faster** than the mean cold
//!   re-solve — and the cold arm is measured *in-process* (no daemon
//!   round-trip), so the speedup is understated, not flattered.
//!
//! `BENCH_X8.json` records both arms (`cold_mean_ns`,
//! `patch_mean_ns`, `speedup_x`) for the perf trail.

use super::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::engine::content_key;
use reclaim_core::Engine;
use reclaim_service::client::Client;
use reclaim_service::daemon::{Daemon, DaemonConfig};
use reclaim_service::proto::{PatchReport, Request, Response};
use report::Table;
use taskgraph::edit::{apply_edits, GraphEdit};
use taskgraph::{generators, PreparedGraph};

/// Graph size (comfortably past the 200-task bar) and edit-chain
/// length.
const N_TASKS: usize = 220;
const N_PATCH: usize = 12;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut rng = StdRng::seed_from_u64(8888);
    let (g, _) = generators::random_sp(N_TASKS, 0.55, 1.0, 5.0, &mut rng);
    let modes = models::DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap();
    let model = models::EnergyModel::VddHopping(modes);
    let deadline = 1.4 * taskgraph::analysis::critical_path_weight(&g) / 2.4;

    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 2,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral daemon");
    let endpoint = daemon.endpoint();
    let daemon_thread = std::thread::spawn(move || daemon.run());
    let mut client = Client::connect(&endpoint).expect("connect to daemon");

    // Seed: one cold solve of the base instance (also retains the LP
    // basis in the cache entry's warm slot).
    let t0 = std::time::Instant::now();
    let seed = client
        .roundtrip(Request::Solve {
            graph: g.clone(),
            model: model.clone(),
            deadline,
        })
        .expect("seed solve");
    let seed_wall = t0.elapsed().as_nanos() as u64;
    let seed = match seed.response {
        Response::Solve(r) => r,
        other => panic!("unexpected response: {other:?}"),
    };

    // The edit chain: each step bumps one task's weight, patches the
    // daemon's cached instance in place, and cold-solves the same
    // edited graph in-process for the control arm.
    let engine = Engine::new(super::P).threads(1);
    let mut base_key = content_key(&g, &model);
    let mut current = g.clone();
    let mut patch_reports: Vec<(PatchReport, u64)> = Vec::with_capacity(N_PATCH);
    let mut cold_ns: Vec<u64> = Vec::with_capacity(N_PATCH);
    let mut max_drift = 0.0f64;
    for i in 0..N_PATCH {
        let task = (i * 37 + 11) % N_TASKS;
        let weight = 1.0 + ((i * 13 + 5) % 40) as f64 / 10.0;
        let edits = [GraphEdit::SetWeight { task, weight }];

        let t0 = std::time::Instant::now();
        let resp = client
            .patch(base_key, &edits, deadline)
            .expect("patch roundtrip");
        let wall = t0.elapsed().as_nanos() as u64;
        let p = match resp.response {
            Response::Patch(p) => p,
            other => panic!("unexpected response: {other:?}"),
        };

        (current, _) = apply_edits(&current, &edits).expect("valid edit");
        assert_eq!(p.key, content_key(&current, &model), "incremental re-key");
        base_key = p.key;

        let t0 = std::time::Instant::now();
        let cold = engine
            .solve(&PreparedGraph::new(&current), &model, deadline)
            .expect("cold control solve");
        cold_ns.push(t0.elapsed().as_nanos() as u64);
        let drift = (p.report.energy - cold.energy).abs() / (1.0 + cold.energy);
        max_drift = max_drift.max(drift);
        patch_reports.push((p, wall));
    }

    match client
        .roundtrip(Request::Shutdown)
        .expect("shutdown")
        .response
    {
        Response::Shutdown => {}
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    daemon_thread
        .join()
        .expect("daemon thread")
        .expect("daemon run");

    let all_prep_zero = patch_reports.iter().all(|(p, _)| p.report.prep_ns == 0);
    let all_warm = patch_reports.iter().all(|(p, _)| p.warm_lp);
    let equivalent = max_drift <= 1e-6;
    let patch_mean = patch_reports.iter().map(|&(_, w)| w).sum::<u64>() / N_PATCH as u64;
    let cold_mean = cold_ns.iter().sum::<u64>() / N_PATCH as u64;
    let speedup = cold_mean as f64 / patch_mean.max(1) as f64;
    let fast_enough = speedup >= 5.0;

    let mut table = Table::new(&["arm", "re-solves", "mean(µs)", "prep(µs)", "lp"]);
    table.row(&[
        "cold (in-process)".into(),
        format!("{N_PATCH}"),
        format!("{:.1}", cold_mean as f64 / 1e3),
        "prep + solve".into(),
        "two-phase".into(),
    ]);
    table.row(&[
        "patched (daemon RTT incl.)".into(),
        format!("{N_PATCH}"),
        format!("{:.1}", patch_mean as f64 / 1e3),
        "0.0".into(),
        "dual re-opt".into(),
    ]);
    table.row(&[
        "seed solve".into(),
        "1".into(),
        format!("{:.1}", seed_wall as f64 / 1e3),
        format!("{:.1}", seed.prep_ns as f64 / 1e3),
        "two-phase".into(),
    ]);

    let pass = all_prep_zero && all_warm && equivalent && fast_enough;
    Outcome {
        id: "X8",
        claim: "a weight-edit patch re-solves a cached 200+-task SP instance \
                ≥ 5× faster than a cold solve, with prep_ns = 0 and energies \
                matching the rebuilt instance",
        size: N_TASKS,
        metrics: vec![
            ("cold_mean_ns", cold_mean as f64),
            ("patch_mean_ns", patch_mean as f64),
            ("speedup_x", speedup),
            (
                "warm_lp_hits",
                patch_reports.iter().filter(|(p, _)| p.warm_lp).count() as f64,
            ),
            ("seed_ns", seed_wall as f64),
        ],
        table,
        verdict: format!(
            "{}: {N_PATCH}/{N_PATCH} patches, prep_ns = 0 {}, warm LP {}, \
             max energy drift {:.1e}, speedup {:.1}× (want ≥ 5×)",
            if pass { "PASS" } else { "FAIL" },
            if all_prep_zero { "✓" } else { "✗" },
            if all_warm { "✓" } else { "✗" },
            max_drift,
            speedup,
        ),
    }
}
