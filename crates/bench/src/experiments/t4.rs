//! T4 — Theorem 4: Discrete (and hence Incremental) is NP-complete.
//!
//! Evidence: the exact branch-and-bound explores a search tree that
//! grows exponentially with `n` on PARTITION-style chains (the
//! hardness gadget of `taskgraph::generators::partition_chain`), both
//! with and without the approximation warm start. A polynomial
//! algorithm would show polynomial node counts here.

use super::{time_it, Outcome, P};
use models::DiscreteModes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reclaim_core::discrete;
use report::Table;
use taskgraph::generators;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&["n", "nodes-cold", "nodes-warm", "t-cold(ms)", "growth-cold"]);
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    let mut rng = StdRng::seed_from_u64(404);
    let budget = 30_000_000;
    let mut prev_nodes = None::<f64>;
    let mut growths = Vec::new();

    for &n in &[8usize, 10, 12, 14, 16, 18, 20] {
        // Balanced values with an odd-ish total so no perfect
        // partition exists: the search must prove optimality.
        let values: Vec<f64> = (0..n)
            .map(|_| (rng.gen_range(20..40) as f64) + 0.5)
            .collect();
        let (g, d) = generators::partition_chain(&values);
        let (cold, t_cold) =
            time_it(|| discrete::exact_with_budget(&g, d, &modes, P, budget, false));
        let (warm, _) = time_it(|| discrete::exact_with_budget(&g, d, &modes, P, budget, true));
        let (nodes_cold, nodes_warm) = match (&cold, &warm) {
            (Ok(c), Ok(w)) => (c.stats.nodes as f64, w.stats.nodes as f64),
            _ => (budget as f64, budget as f64),
        };
        let growth = prev_nodes.map(|p| nodes_cold / p);
        if let Some(gr) = growth {
            growths.push(gr);
        }
        prev_nodes = Some(nodes_cold);
        table.row(&[
            n.to_string(),
            format!("{nodes_cold:.0}"),
            format!("{nodes_warm:.0}"),
            format!("{:.2}", t_cold * 1e3),
            growth.map_or("-".into(), |g| format!("x{g:.2}")),
        ]);
    }
    // Exponential growth: node count multiplies by a roughly constant
    // factor per +2 tasks.
    let geo = report::geo_mean(&growths);
    let pass = geo > 1.5;
    Outcome {
        size: 20,
        metrics: vec![],
        id: "T4",
        claim: "Discrete/Incremental MinEnergy is NP-complete (exact search is exponential)",
        table,
        verdict: format!(
            "{}: B&B nodes grow geometrically, mean ×{geo:.2} per +2 tasks on PARTITION chains",
            if pass { "PASS" } else { "FAIL" }
        ),
    }
}
