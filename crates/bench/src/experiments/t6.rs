//! T6 — Proposition 1(a): any Continuous instance is approximated
//! within `(1 + δ/s_min)²` in the Incremental model with increment δ.
//!
//! The Continuous reference is the box-restricted optimum over
//! `[s_min, s_max]` (the Incremental model cannot run slower than
//! `s_min`, so this is the honest common baseline; see DESIGN.md).

use super::{cont_energy_boxed, Outcome, P};
use crate::instances::{dmin, random_execution_graph};
use models::IncrementalModes;
use reclaim_core::{continuous, incremental};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "delta",
        "bound=(1+d/smin)^2",
        "geo-ratio",
        "max-ratio",
        "within",
    ]);
    let (s_min, s_max) = (0.5, 3.0);
    let mut all_ok = true;

    for &delta in &[1.0, 0.5, 0.25, 0.1, 0.05, 0.01] {
        let modes = IncrementalModes::new(s_min, s_max, delta).unwrap();
        let bound = modes.rounding_ratio(P.alpha());
        let mut ratios = Vec::new();
        for seed in 0..8u64 {
            let g = random_execution_graph(4, 3, 2, 600 + seed);
            let d = 1.4 * dmin(&g, modes.top_mode());
            let e_cont = cont_energy_boxed(&g, d, s_min, modes.top_mode());
            // Large K isolates the rounding loss from the numerical
            // precision term.
            let speeds = incremental::approx(&g, d, &modes, P, 10_000).unwrap();
            let e_inc = continuous::energy_of_speeds(&g, &speeds, P);
            ratios.push(e_inc / e_cont);
        }
        let geo = report::geo_mean(&ratios);
        let max = report::max(&ratios);
        let ok = max <= bound * (1.0 + 1e-4);
        all_ok &= ok;
        table.row(&[
            format!("{delta:.2}"),
            format!("{bound:.4}"),
            format!("{geo:.4}"),
            format!("{max:.4}"),
            if ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "T6",
        claim: "Continuous approximated within (1+δ/s_min)² by Incremental with increment δ",
        table,
        verdict: format!(
            "{}: max ratio ≤ bound at every δ, and → 1 as δ → 0 (the 'arbitrarily efficient' knob)",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
