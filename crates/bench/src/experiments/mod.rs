//! One module per experiment (see DESIGN.md §4 for the index).
//!
//! Every experiment returns a [`report::Table`] whose header row
//! matches the columns recorded in EXPERIMENTS.md, plus a one-line
//! verdict comparing the paper's claim with the measurement.

pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod x1;
pub mod x10;
pub mod x11;
pub mod x12;
pub mod x13;
pub mod x2;
pub mod x3;
pub mod x4;
pub mod x5;
pub mod x6;
pub mod x7;
pub mod x8;
pub mod x9;

use models::PowerLaw;
use reclaim_core::continuous;
use taskgraph::TaskGraph;

/// The paper's power law, used by every experiment.
pub const P: PowerLaw = PowerLaw::CUBIC;

/// Outcome of one experiment: the data table plus a verdict line.
pub struct Outcome {
    /// Experiment id (`"T1"`, …).
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
    /// The measurements.
    pub table: report::Table,
    /// One-line pass/fail summary of claim vs measurement.
    pub verdict: String,
    /// Task count of the experiment's largest instance — recorded in
    /// the machine-readable `BENCH_<id>.json` perf trail.
    pub size: usize,
    /// Extra machine-readable metrics (`name → value`) for
    /// `BENCH_<id>.json`; most experiments have none.
    pub metrics: Vec<(&'static str, f64)>,
}

impl Outcome {
    /// Render the outcome for the terminal.
    pub fn render(&self) -> String {
        format!(
            "== {} ==\nclaim: {}\n\n{}\nverdict: {}\n",
            self.id,
            self.claim,
            self.table.render(),
            self.verdict
        )
    }
}

/// Continuous-model optimal energy (shape-dispatched solver).
pub fn cont_energy(g: &TaskGraph, d: f64, s_max: Option<f64>) -> f64 {
    let speeds = continuous::solve(g, d, s_max, P, None).expect("feasible instance");
    continuous::energy_of_speeds(g, &speeds, P)
}

/// Continuous optimum restricted to the box `[s_min, s_max]` — the
/// provable lower bound on any Discrete/Incremental optimum over the
/// same speed range.
pub fn cont_energy_boxed(g: &TaskGraph, d: f64, s_min: f64, s_max: f64) -> f64 {
    let speeds = continuous::solve_general_boxed(g, d, Some(s_min), Some(s_max), P, None)
        .expect("feasible instance");
    continuous::energy_of_speeds(g, &speeds, P)
}

/// Wall-clock of a closure, in seconds.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// An experiment entry point.
type Runner = fn() -> Outcome;

/// The experiment registry: every id with its runner, in canonical
/// order — the single source of truth [`run_all`], [`all_ids`], and
/// [`run_one`] all derive from.
const EXPERIMENTS: &[(&str, Runner)] = &[
    ("t1", t1::run),
    ("t2", t2::run),
    ("t3", t3::run),
    ("t4", t4::run),
    ("t5", t5::run),
    ("t6", t6::run),
    ("t7", t7::run),
    ("f1", f1::run),
    ("f2", f2::run),
    ("f3", f3::run),
    ("f4", f4::run),
    ("x1", x1::run),
    ("x2", x2::run),
    ("x3", x3::run),
    ("x4", x4::run),
    ("x5", x5::run),
    ("x6", x6::run),
    ("x7", x7::run),
    ("x8", x8::run),
    ("x9", x9::run),
    ("x10", x10::run),
    ("x11", x11::run),
    ("x12", x12::run),
    ("x13", x13::run),
];

/// Run every experiment in order.
pub fn run_all() -> Vec<Outcome> {
    EXPERIMENTS.iter().map(|&(_, run)| run()).collect()
}

/// Every experiment id, in canonical order.
pub fn all_ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|&(id, _)| id).collect()
}

/// Run one experiment by id (case-insensitive), if it exists.
pub fn run_one(id: &str) -> Option<Outcome> {
    let id = id.to_ascii_lowercase();
    EXPERIMENTS
        .iter()
        .find(|&&(known, _)| known == id)
        .map(|&(_, run)| run())
}
