//! X2 (extension, beyond the paper) — practical Discrete heuristics
//! vs the exact optimum: the Proposition 1(b) rounding (with its
//! provable bound) against the classic greedy-slowdown DVFS heuristic
//! (no bound), both measured against branch-and-bound.

use super::{Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use reclaim_core::{continuous, discrete};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "m-modes",
        "tightness",
        "roundup/OPT",
        "greedy/OPT",
        "greedy-wins(%)",
    ]);
    let mut all_feasible = true;
    let mut worst_roundup = 1.0f64;
    let mut worst_greedy = 1.0f64;

    for &m in &[3usize, 5, 8] {
        let modes = spread_modes(m, 0.5, 3.0);
        for &tight in &[1.1, 1.5, 2.5] {
            let mut r_round = Vec::new();
            let mut r_greedy = Vec::new();
            let mut greedy_wins = 0usize;
            for seed in 0..8u64 {
                let g = random_execution_graph(4, 3, 2, 1300 + seed);
                let d = tight * dmin(&g, modes.s_max());
                let opt = discrete::exact(&g, d, &modes, P).unwrap().energy;
                let ru = discrete::round_up(&g, d, &modes, P, None).unwrap();
                let e_ru = continuous::energy_of_speeds(&g, &ru, P);
                let gs = discrete::greedy_slowdown(&g, d, &modes, P).unwrap();
                let e_gs = continuous::energy_of_speeds(&g, &gs, P);
                all_feasible &= e_ru >= opt * (1.0 - 1e-9) && e_gs >= opt * (1.0 - 1e-9);
                r_round.push(e_ru / opt);
                r_greedy.push(e_gs / opt);
                if e_gs < e_ru * (1.0 - 1e-9) {
                    greedy_wins += 1;
                }
            }
            worst_roundup = worst_roundup.max(report::max(&r_round));
            worst_greedy = worst_greedy.max(report::max(&r_greedy));
            table.row(&[
                m.to_string(),
                format!("{tight:.2}"),
                format!("{:.4}", report::geo_mean(&r_round)),
                format!("{:.4}", report::geo_mean(&r_greedy)),
                format!("{:.0}", 100.0 * greedy_wins as f64 / 8.0),
            ]);
        }
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "X2",
        claim: "(extension) the provable rounding and the classic greedy DVFS heuristic both track the exact optimum; neither dominates",
        table,
        verdict: format!(
            "{}: worst ratios — round-up ×{worst_roundup:.3} (bounded by Prop 1(b)), greedy ×{worst_greedy:.3} (no guarantee)",
            if all_feasible { "PASS" } else { "FAIL" }
        ),
    }
}
