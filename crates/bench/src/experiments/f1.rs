//! F1 — the comparative study of energy models ("this paper has laid
//! the theoretical foundations for a comparative study of energy
//! models"): energy of each model normalized to the Continuous
//! optimum, as the deadline loosens.
//!
//! Expected shape: Vdd-Hopping tracks Continuous closely at every
//! tightness (mixing emulates any average speed in `[s_1, s_m]`);
//! Discrete/Incremental pay a discretization premium near
//! `D ≈ D_min`. At very loose deadlines a second effect appears: all
//! bounded-speed models saturate at the slowest mode `s_1` while the
//! Continuous model keeps slowing down, so the ratios rise again —
//! the premium is U-shaped in the deadline (floor effect).

use super::{cont_energy, Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use models::IncrementalModes;
use reclaim_core::{discrete, incremental, vdd};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&["D/Dmin", "Vdd/Cont", "Disc/Cont", "Incr/Cont", "instances"]);
    let modes = spread_modes(5, 0.5, 3.0);
    let inc = IncrementalModes::new(0.5, 3.0, 0.625).unwrap();
    let seeds: Vec<u64> = (0..8).collect();
    let mut ordering_ok = true;
    let mut vdd_worst = 1.0f64;

    for &tight in &[1.05, 1.2, 1.5, 2.0, 3.0, 4.0] {
        let mut r_vdd = Vec::new();
        let mut r_disc = Vec::new();
        let mut r_inc = Vec::new();
        for &seed in &seeds {
            let g = random_execution_graph(4, 3, 2, 800 + seed); // 12 tasks
            let d = tight * dmin(&g, modes.s_max());
            let e_cont = cont_energy(&g, d, Some(modes.s_max()));
            let e_vdd = vdd::solve_lp(&g, d, &modes, P).unwrap().energy(&g, P);
            let e_disc = discrete::exact(&g, d, &modes, P).unwrap().energy;
            let e_inc = incremental::exact(&g, d, &inc, P).unwrap().energy;
            ordering_ok &= e_cont <= e_vdd * (1.0 + 1e-6) && e_vdd <= e_disc * (1.0 + 1e-6);
            r_vdd.push(e_vdd / e_cont);
            r_disc.push(e_disc / e_cont);
            r_inc.push(e_inc / e_cont);
        }
        let gv = report::geo_mean(&r_vdd);
        let gd = report::geo_mean(&r_disc);
        let gi = report::geo_mean(&r_inc);
        vdd_worst = vdd_worst.max(gv);
        table.row(&[
            format!("{tight:.2}"),
            format!("{gv:.4}"),
            format!("{gd:.4}"),
            format!("{gi:.4}"),
            seeds.len().to_string(),
        ]);
    }
    let pass = ordering_ok;
    Outcome {
        size: 12,
        metrics: vec![],
        id: "F1",
        claim: "Cont ≤ Vdd ≤ Disc at every deadline; discretization premium near D_min; speed-floor premium at loose D (U-shape)",
        table,
        verdict: format!(
            "{}: ordering holds on every instance; worst geo-mean Vdd/Cont = {vdd_worst:.3} — Vdd smooths the modes as the conclusion claims",
            if pass { "PASS" } else { "FAIL" }
        ),
    }
}
