//! X1 (extension, beyond the paper) — peak platform power across
//! models: speed scaling flattens the power curve, and Vdd-Hopping's
//! mode mixing momentarily spikes to the upper bracketing mode even
//! when its *energy* tracks Continuous.

use super::{Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use models::EnergyModel;
use reclaim_core::solve;
use report::Table;
use sim::simulate;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "D/Dmin",
        "peak-Cont(W)",
        "peak-Vdd(W)",
        "peak-Disc(W)",
        "energy-Vdd/Cont",
    ]);
    let modes = spread_modes(5, 0.5, 3.0);
    let mut flattening_ok = true;
    let mut prev_peak = f64::INFINITY;

    for &tight in &[1.05, 1.3, 1.8, 2.5, 4.0] {
        let mut peaks = [0.0f64; 3];
        let mut e_ratio = Vec::new();
        for seed in 0..6u64 {
            let g = random_execution_graph(4, 3, 2, 1200 + seed);
            let d = tight * dmin(&g, modes.s_max());
            let models = [
                EnergyModel::continuous(modes.s_max()),
                EnergyModel::VddHopping(modes.clone()),
                EnergyModel::Discrete(modes.clone()),
            ];
            let mut energies = [0.0f64; 3];
            for (k, model) in models.iter().enumerate() {
                let sol = solve(&g, d, model, P).unwrap();
                let res = simulate(&g, &sol.schedule, P).unwrap();
                peaks[k] = peaks[k].max(res.trace.peak_power());
                energies[k] = sol.energy;
            }
            e_ratio.push(energies[1] / energies[0]);
        }
        // Continuous peak power must fall as the deadline loosens.
        if peaks[0] > prev_peak * (1.0 + 1e-9) {
            flattening_ok = false;
        }
        prev_peak = peaks[0];
        table.row(&[
            format!("{tight:.2}"),
            format!("{:.3}", peaks[0]),
            format!("{:.3}", peaks[1]),
            format!("{:.3}", peaks[2]),
            format!("{:.4}", report::geo_mean(&e_ratio)),
        ]);
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "X1",
        claim: "(extension) speed scaling flattens peak power; Vdd matches Continuous energy but spikes to bracketing modes",
        table,
        verdict: format!(
            "{}: Continuous peak power decreases monotonically with the deadline; Vdd pays its energy parity with mode-level power spikes",
            if flattening_ok { "PASS" } else { "FAIL" }
        ),
    }
}
