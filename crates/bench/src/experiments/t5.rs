//! T5 — Theorem 5: the Incremental approximation achieves
//! `E_alg ≤ (1 + δ/s_min)² (1 + 1/K)² · OPT` in time polynomial in
//! the instance and in `K`.
//!
//! Measured ratio uses the exact Incremental optimum (branch-and-
//! bound) when the grid is coarse enough, and the continuous-boxed
//! lower bound otherwise — the latter *over*-estimates the true ratio,
//! so a PASS against it is conservative.

use super::{cont_energy_boxed, time_it, Outcome, P};
use crate::instances::random_execution_graph;
use models::IncrementalModes;
use reclaim_core::{continuous, incremental};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "delta",
        "K",
        "bound",
        "ratio-vs-exact",
        "ratio-vs-contLB",
        "t-alg(ms)",
        "within-bound",
    ]);
    let g = random_execution_graph(4, 3, 2, 505); // 12 tasks
    let (s_min, s_max) = (0.5, 3.0);
    let d = 1.5 * crate::instances::dmin(&g, s_max);
    let mut all_ok = true;

    for &delta in &[0.5, 0.25, 0.1, 0.05] {
        for &k in &[1u32, 3, 10, 100] {
            let modes = IncrementalModes::new(s_min, s_max, delta).unwrap();
            let bound = incremental::approx_bound(&modes, P, k);
            let (speeds, t_alg) = time_it(|| incremental::approx(&g, d, &modes, P, k).unwrap());
            let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
            // Exact optimum only for coarse grids (the search is
            // exponential — that is Theorem 4); fall back to the
            // continuous lower bound when the budget trips.
            let exact_ratio = if modes.m() <= 6 {
                incremental::exact(&g, d, &modes, P)
                    .ok()
                    .map(|sol| e_alg / sol.energy)
            } else {
                None
            };
            let lb = cont_energy_boxed(&g, d, s_min, modes.top_mode());
            let lb_ratio = e_alg / lb;
            let measured = exact_ratio.unwrap_or(lb_ratio);
            let ok = measured <= bound * (1.0 + 1e-6);
            all_ok &= ok;
            table.row(&[
                format!("{delta:.2}"),
                k.to_string(),
                format!("{bound:.4}"),
                exact_ratio.map_or("-".into(), |r| format!("{r:.4}")),
                format!("{lb_ratio:.4}"),
                format!("{:.2}", t_alg * 1e3),
                if ok { "ok".into() } else { "VIOLATED".into() },
            ]);
        }
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "T5",
        claim: "Incremental approximable within (1+δ/s_min)²(1+1/K)² in time poly(instance, K)",
        table,
        verdict: format!(
            "{}: measured ratio ≤ theoretical bound for every (δ, K); ratios shrink with δ and K as predicted",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
