//! X9 (extension) — exact parametric energy–deadline curves: the
//! breakpoint-walking dual simplex versus the sampled sweep, plus the
//! barrier warm-start evidence for the round-up paths.
//!
//! **Arm 1 (Vdd, exact vs sampled).** A 220-task series–parallel
//! Vdd-Hopping instance is solved once (the daemon steady state: the
//! instance is cached and its entry retains the optimal LP basis).
//! Then both curve paths run over the same deadline range:
//!
//! * *sampled*: `Engine::energy_curve` at 64 points — the pre-existing
//!   API; each point is a warm dual-simplex re-solve plus schedule
//!   extraction and validation, and the chain starts with its own cold
//!   two-phase LP;
//! * *exact*: `Engine::energy_curve_exact_warm` through the retained
//!   basis — one repositioning re-solve, then `O(breakpoints)` dual
//!   pivots for the **whole** curve, no per-sample work.
//!
//! Pass requires the exact walk to be **≥ 8× faster** and the exact
//! curve to be **pointwise equal** (≤ 1e-6 relative) to every sampled
//! energy at the sampled deadlines.
//!
//! **Arm 2 (barrier warm start).** The Discrete round-up path solves a
//! boxed continuous relaxation per sweep point. On a 60-task SP
//! instance, an ascending 8-point sweep through one
//! `continuous::SweepWarm` chain must spend fewer Newton steps than
//! the same sweep with a fresh (cold) chain per point. Both Newton
//! counts land in `BENCH_X9.json`.

use super::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::{continuous, discrete, Engine};
use report::Table;
use taskgraph::{generators, PreparedGraph};

/// Vdd instance size (past the 200-task bar) and sweep resolution.
const N_TASKS: usize = 220;
const POINTS: usize = 64;
const LO: f64 = 1.05;
const HI: f64 = 1.6;

/// Barrier-arm instance size and sweep length.
const N_BARRIER: usize = 60;
const BARRIER_POINTS: usize = 8;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut rng = StdRng::seed_from_u64(9999);
    let (g, _) = generators::random_sp(N_TASKS, 0.55, 1.0, 5.0, &mut rng);
    let modes = models::DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap();
    let model = models::EnergyModel::VddHopping(modes);
    let engine = Engine::new(super::P).threads(1);
    let prep = PreparedGraph::new(&g);

    // Steady state: the instance has been solved once at the tightest
    // deadline of interest, so a warm LP basis is retained there —
    // exactly what the daemon's cache entry holds after serving the
    // instance.
    let mut warm = None;
    let seed_deadline = LO * prep.critical_path_weight() / 2.4;
    engine
        .solve_warm(&prep, &model, seed_deadline, &mut warm)
        .expect("seed solve");

    // Sampled arm: the 64-point sweep (cold LP + warm chain inside).
    let t0 = std::time::Instant::now();
    let sampled = engine
        .energy_curve(&prep, &model, POINTS, LO, HI)
        .expect("sampled sweep");
    let sampled_ns = t0.elapsed().as_nanos() as u64;

    // Exact arm: one breakpoint walk through the retained basis.
    let t0 = std::time::Instant::now();
    let exact = engine
        .energy_curve_exact_warm(&prep, &model, LO, HI, &mut warm)
        .expect("exact walk");
    let exact_ns = t0.elapsed().as_nanos() as u64;
    assert!(exact.exact, "the Vdd curve must be exact closed forms");

    // Pointwise equality at every sampled deadline.
    let mut max_drift = 0.0f64;
    for pt in &sampled {
        let e = exact
            .energy_at(pt.deadline)
            .expect("sampled deadline inside the exact range");
        max_drift = max_drift.max((e - pt.energy).abs() / (1.0 + pt.energy));
    }
    let equivalent = max_drift <= 1e-6;
    let speedup = sampled_ns as f64 / exact_ns.max(1) as f64;
    let fast_enough = speedup >= 8.0;

    // Barrier arm: warm vs cold Newton steps on the Discrete round-up
    // relaxation, ascending sweep.
    let (gb, _) = generators::random_sp(N_BARRIER, 0.55, 1.0, 5.0, &mut rng);
    let prep_b = PreparedGraph::new(&gb);
    let modes_b = models::DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap();
    let dmin = prep_b.critical_path_weight() / modes_b.s_max();
    let deadlines: Vec<f64> = (0..BARRIER_POINTS)
        .map(|k| dmin * 1.1 * (3.0f64 / 1.1).powf(k as f64 / (BARRIER_POINTS - 1) as f64))
        .collect();
    let mut chain = continuous::SweepWarm::new();
    let mut cold_newton = 0u64;
    for &d in &deadlines {
        discrete::round_up_warm(&prep_b, d, &modes_b, super::P, Some(10_000), &mut chain)
            .expect("warm round-up");
        let mut one = continuous::SweepWarm::new();
        discrete::round_up_warm(&prep_b, d, &modes_b, super::P, Some(10_000), &mut one)
            .expect("cold round-up");
        cold_newton += one.stats.newton_steps;
    }
    let warm_newton = chain.stats.newton_steps;
    let newton_reduced = warm_newton < cold_newton;

    let mut table = Table::new(&["arm", "work", "wall(ms)", "per-point"]);
    table.row(&[
        "sampled (64 pts, warm LP chain)".into(),
        format!("{POINTS} dual re-solves + extract/validate"),
        format!("{:.2}", sampled_ns as f64 / 1e6),
        format!("{:.2} ms", sampled_ns as f64 / 1e6 / POINTS as f64),
    ]);
    table.row(&[
        "exact (breakpoint walk)".into(),
        format!("{} pivots for the whole curve", exact.stats.lp_breakpoints),
        format!("{:.2}", exact_ns as f64 / 1e6),
        "—".into(),
    ]);
    table.row(&[
        "barrier warm vs cold (Newton)".into(),
        format!("{warm_newton} vs {cold_newton} steps"),
        "—".into(),
        format!("{BARRIER_POINTS} pts, n = {N_BARRIER}"),
    ]);

    let pass = equivalent && fast_enough && newton_reduced;
    Outcome {
        id: "X9",
        claim: "the exact Vdd energy-deadline curve (breakpoint-walking dual \
                simplex) beats the 64-point sampled sweep by ≥ 8× with \
                pointwise-identical energies, and barrier warm-starts cut \
                Newton iterations on the round-up path",
        size: N_TASKS,
        metrics: vec![
            ("sampled_ns", sampled_ns as f64),
            ("exact_ns", exact_ns as f64),
            ("speedup", speedup),
            ("segments", exact.segments.len() as f64),
            ("lp_breakpoints", exact.stats.lp_breakpoints as f64),
            ("max_drift", max_drift),
            ("newton_warm", warm_newton as f64),
            ("newton_cold", cold_newton as f64),
        ],
        table,
        verdict: format!(
            "{}: {} segments over [{:.2}, {:.2}], speedup {:.1}× (want ≥ 8×), \
             max drift {:.1e} {}, Newton {} vs {} {}",
            if pass { "PASS" } else { "FAIL" },
            exact.segments.len(),
            exact.deadline_lo(),
            exact.deadline_hi(),
            speedup,
            max_drift,
            if equivalent { "✓" } else { "✗" },
            warm_newton,
            cold_newton,
            if newton_reduced { "✓" } else { "✗" },
        ),
    }
}
