//! X13 (extension) — structure-local re-analysis: cone-bounded cache
//! repair makes topology-changing patches nearly as cheap as weight
//! edits.
//!
//! **The instance.** One 1,000-task series–parallel graph: a series
//! chain of 250 triple-branch blocks (junction → {a, b, c} →
//! junction). Every structural patch converts one block's `a ∥ b`
//! pair into the chain `a → b` — three edge edits, one SP-preserving
//! topology change whose touched cone is a handful of tasks in a
//! graph a thousand tasks wide (branch `c` dominates the block's
//! span, so completion times outside the block are untouched).
//!
//! **Arms.**
//!
//! * *structural patch*: a chain of such single-edit patches through
//!   [`PreparedInstance::apply`] — the topological order is carried,
//!   the SP tree is spliced around the touched block, completion
//!   times relax inside the cone, and the transitive reduction is
//!   repaired edge-locally;
//! * *cold re-prepare*: the same edit chain, but every step rebuilds
//!   `PreparedInstance::new(...)` + `warm()` from scratch — the cost
//!   `apply` existed to avoid;
//! * *weight patch*: a chain of `SetWeight` patches of the same
//!   length — the cost floor "near weight-edit cost" is measured
//!   against.
//!
//! **Gates.** The structural-patch arm must (a) run ≥ 5× faster than
//! cold re-prepare, (b) perform **zero** full topological sorts, shape
//! classifications, SP recognitions, and transitive reductions — one
//! successful tree splice per patch, no misses — observable on the
//! profiling counters, and (c) land on the exact instance the cold
//! arm builds: same analyses, bit-identical continuous energy at full
//! scale, bit-identical energies under all four models at a smaller
//! scale (the Vdd LP is quartic-ish in task count; the equality is
//! scale-free). A daemon round finally asserts the splice counters
//! surface per worker in `stats` after a structural patch request.
//!
//! `X13_SMOKE=1` shrinks the instance for quick CI runs; every gate
//! holds at every scale.

use super::{Outcome, P};
use reclaim_core::engine::content_key;
use reclaim_core::Engine;
use reclaim_service::client::Client;
use reclaim_service::daemon::{Daemon, DaemonConfig};
use reclaim_service::proto::{Request, Response};
use report::Table;
use std::sync::Arc;
use taskgraph::edit::{apply_edits, GraphEdit};
use taskgraph::{analysis, profiling, PreparedInstance, TaskGraph};

/// The headline bar: cold re-prepare time ≥ this multiple of patch.
const GATE_RATIO: f64 = 5.0;

/// Full-scale vs `X13_SMOKE=1` dimensions: (blocks, patches).
/// 250 blocks = 1,001 tasks (`4k + 1`).
fn scale() -> (usize, usize) {
    if std::env::var("X13_SMOKE").is_ok() {
        (25, 8)
    } else {
        (250, 120)
    }
}

/// A series chain of `k` triple-branch blocks: junction `0`; block
/// `i` (1-based) runs `4(i−1) → {a=4i−3, b=4i−2, c=4i−1} → 4i`.
/// Branch `c` outweighs `a` and `b` combined, so converting `a ∥ b`
/// into the chain `a → b` never moves the block's makespan.
fn block_graph(k: usize) -> TaskGraph {
    let n = 4 * k + 1;
    let mut edges = Vec::with_capacity(6 * k);
    let mut weights = vec![1.0; n];
    for i in 1..=k {
        let (j0, a, b, c, j1) = (4 * (i - 1), 4 * i - 3, 4 * i - 2, 4 * i - 1, 4 * i);
        edges.extend([(j0, a), (j0, b), (j0, c), (a, j1), (b, j1), (c, j1)]);
        weights[a] = 0.75 + (i % 3) as f64 * 0.125;
        weights[b] = 1.0;
        weights[c] = 2.25; // ≥ w(a) + w(b): the dominant branch
        weights[j1] = 1.0 + (i % 5) as f64 * 0.25;
    }
    TaskGraph::new(weights, &edges).expect("block chain is a DAG")
}

/// The structural patch for block `i`: serialize `a ∥ b` into
/// `a → b` (drop `junction → b` and `a → junction`, insert `a → b`).
/// The block becomes `P(S(a, b), c)` — still series–parallel, with
/// the junctions intact, so the SP tree is repairable by splicing
/// only this block's segment.
fn block_conversion(i: usize) -> Vec<GraphEdit> {
    let (j0, a, b, j1) = (4 * (i - 1), 4 * i - 3, 4 * i - 2, 4 * i);
    vec![
        GraphEdit::RemoveEdge { from: j0, to: b },
        GraphEdit::RemoveEdge { from: a, to: j1 },
        GraphEdit::InsertEdge { from: a, to: b },
    ]
}

fn four_models() -> Vec<models::EnergyModel> {
    let modes = models::DiscreteModes::new(&[0.5, 1.0, 2.0]).unwrap();
    vec![
        models::EnergyModel::continuous_unbounded(),
        models::EnergyModel::VddHopping(modes.clone()),
        models::EnergyModel::Discrete(modes),
        models::EnergyModel::Incremental(models::IncrementalModes::new(1.0, 2.0, 0.5).unwrap()),
    ]
}

/// Walk the patch chain through `apply` + `warm`, one batch per
/// patch, timing the whole arm and capturing the profiling-counter
/// delta it caused.
fn patch_arm(
    base: &PreparedInstance,
    patches: &[Vec<GraphEdit>],
) -> (PreparedInstance, f64, profiling::Counts) {
    let before = profiling::counts();
    let t0 = std::time::Instant::now();
    let mut cur = base.apply(&patches[0]).expect("valid patch chain");
    cur.warm();
    for batch in &patches[1..] {
        cur = cur.apply(batch).expect("valid patch chain");
        cur.warm();
    }
    let secs = t0.elapsed().as_secs_f64();
    (cur, secs, profiling::counts() - before)
}

/// The same chain, re-prepared from scratch at every step.
fn cold_arm(g0: &TaskGraph, patches: &[Vec<GraphEdit>]) -> (PreparedInstance, f64) {
    let mut g = g0.clone();
    let mut secs = 0.0;
    let mut last = None;
    for batch in patches {
        let (next, _) = apply_edits(&g, batch).expect("valid patch chain");
        g = next;
        let t0 = std::time::Instant::now();
        let inst = PreparedInstance::new(Arc::new(g.clone()));
        inst.warm();
        secs += t0.elapsed().as_secs_f64();
        last = Some(inst);
    }
    (last.expect("at least one patch"), secs)
}

/// apply ≡ rebuild on the leaf of a patch chain, under `models`:
/// every energy must agree bit for bit.
fn energies_bit_identical(
    patched: &PreparedInstance,
    fresh: &PreparedInstance,
    models: &[models::EnergyModel],
) -> bool {
    let engine = Engine::new(P);
    let cp = analysis::critical_path_weight(patched.graph());
    models.iter().all(|model| {
        let d = match model.top_speed() {
            Some(s) => 1.5 * cp / s,
            None => cp,
        };
        let a = engine.solve(&patched.view(), model, d).expect("feasible");
        let b = engine.solve(&fresh.view(), model, d).expect("feasible");
        a.energy.to_bits() == b.energy.to_bits() && a.algorithm == b.algorithm
    })
}

/// Drive one solve + one structural patch through an in-process
/// daemon and return the summed per-worker `sp_splice` from `stats`.
fn daemon_splices(k: usize) -> u64 {
    let daemon = Daemon::bind(DaemonConfig {
        tcp: Some("127.0.0.1:0".into()),
        workers: 2,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral daemon");
    let ep = daemon.endpoint();
    let handle = std::thread::spawn(move || daemon.run());
    let mut client = Client::connect(&ep).expect("connect daemon client");

    let g = block_graph(k);
    let model = models::EnergyModel::continuous_unbounded();
    let deadline = 1.2 * analysis::critical_path_weight(&g);
    let resp = client
        .roundtrip(Request::Solve {
            graph: g.clone(),
            model: model.clone(),
            deadline,
        })
        .expect("daemon solve");
    assert!(matches!(resp.response, Response::Solve(_)), "{resp:?}");
    let resp = client
        .roundtrip(Request::Patch {
            base: content_key(&g, &model),
            edits: block_conversion(1),
            deadline,
        })
        .expect("daemon patch");
    assert!(matches!(resp.response, Response::Patch(_)), "{resp:?}");

    let splices = match client.roundtrip(Request::Stats).expect("stats").response {
        Response::Stats(s) => s.workers.iter().map(|w| w.sp_splice).sum(),
        other => panic!("unexpected response: {other:?}"),
    };
    match client
        .roundtrip(Request::Shutdown)
        .expect("shutdown")
        .response
    {
        Response::Shutdown => {}
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    handle.join().expect("daemon thread").expect("daemon run");
    splices
}

/// Run the experiment.
pub fn run() -> Outcome {
    let (k, patches) = scale();
    let g = block_graph(k);
    let n = g.n();
    // One conversion per distinct block: every patch's cone is that
    // block's handful of tasks, wherever it sits in the chain.
    let edits: Vec<Vec<GraphEdit>> = (1..=patches).map(block_conversion).collect();

    let base = PreparedInstance::new(Arc::new(g.clone()));
    base.warm();

    // Arm 1: structural patches, repaired in place.
    let (patched, patch_secs, delta) = patch_arm(&base, &edits);
    // Arm 2: cold re-prepare at every step.
    let (cold_leaf, cold_secs) = cold_arm(&g, &edits);
    // Arm 3: the weight-edit cost floor, same chain length.
    let weight_edits: Vec<Vec<GraphEdit>> = (0..patches)
        .map(|i| {
            vec![GraphEdit::SetWeight {
                task: (7 * i + 1) % n,
                weight: 1.25 + (i % 5) as f64 * 0.5,
            }]
        })
        .collect();
    let (_, weight_secs, _) = patch_arm(&base, &weight_edits);

    // Zero full recomputes on the splice path, one splice per patch.
    let zero_recomputes = delta.topo_order == 0
        && delta.classify == 0
        && delta.sp_from_graph == 0
        && delta.transitive_reduction == 0
        && delta.sp_splice == patches as u64
        && delta.sp_splice_miss == 0;

    // apply ≡ rebuild: same graph, same analyses, bit-identical
    // continuous energy at full scale…
    let continuous = &four_models()[..1];
    let equivalent = patched.graph() == cold_leaf.graph()
        && patched.view().topo() == cold_leaf.view().topo()
        && patched.view().shape() == cold_leaf.view().shape()
        && patched.view().reduced().edges() == cold_leaf.view().reduced().edges()
        && energies_bit_identical(&patched, &cold_leaf, continuous);

    // …and bit-identical under all four models at a scale the Vdd LP
    // solves quickly (the equality is scale-free; 15 blocks = 61
    // tasks).
    let (k4, p4) = (15, 4);
    let g4 = block_graph(k4);
    let base4 = PreparedInstance::new(Arc::new(g4.clone()));
    base4.warm();
    let edits4: Vec<Vec<GraphEdit>> = (1..=p4).map(block_conversion).collect();
    let (patched4, _, _) = patch_arm(&base4, &edits4);
    let (cold4, _) = cold_arm(&g4, &edits4);
    let four_model_identical = energies_bit_identical(&patched4, &cold4, &four_models());

    // Daemon round: the splice counters surface per worker in stats.
    let daemon_sp_splice = daemon_splices(k4);

    let speedup = cold_secs / patch_secs.max(1e-12);
    let structural_vs_weight = patch_secs / weight_secs.max(1e-12);
    let pass = speedup >= GATE_RATIO
        && zero_recomputes
        && equivalent
        && four_model_identical
        && daemon_sp_splice >= 1;

    let mut table = Table::new(&["arm", "patches", "total(ms)", "per patch(µs)"]);
    let mut row = |name: &str, secs: f64| {
        table.row(&[
            name.into(),
            format!("{patches}"),
            format!("{:.2}", secs * 1e3),
            format!("{:.1}", secs * 1e6 / patches as f64),
        ]);
    };
    row("structural patch (apply)", patch_secs);
    row("cold re-prepare", cold_secs);
    row("weight patch (floor)", weight_secs);

    Outcome {
        id: "X13",
        claim: "cone-bounded cache repair answers single-block structural \
                patches on a 1,000-task SP graph >= 5x faster than cold \
                re-preparation — zero full topological sorts, SP \
                recognitions, or transitive reductions, one local tree \
                splice per patch — while staying bit-identical to a \
                from-scratch rebuild under all four models",
        size: n,
        metrics: vec![
            ("tasks", n as f64),
            ("patches", patches as f64),
            ("patch_ms", patch_secs * 1e3),
            ("cold_ms", cold_secs * 1e3),
            ("weight_ms", weight_secs * 1e3),
            ("speedup_x", speedup),
            ("structural_vs_weight", structural_vs_weight),
            ("sp_splice", delta.sp_splice as f64),
            ("sp_splice_miss", delta.sp_splice_miss as f64),
            ("topo_order_recomputes", delta.topo_order as f64),
            ("classify_recomputes", delta.classify as f64),
            ("sp_from_graph_recomputes", delta.sp_from_graph as f64),
            (
                "transitive_reduction_recomputes",
                delta.transitive_reduction as f64,
            ),
            (
                "cone_nodes_per_patch",
                delta.cone_nodes as f64 / patches as f64,
            ),
            ("equivalent", f64::from(u8::from(equivalent))),
            (
                "four_model_identical",
                f64::from(u8::from(four_model_identical)),
            ),
            ("daemon_sp_splice", daemon_sp_splice as f64),
        ],
        table,
        verdict: format!(
            "{}: {patches} block-conversion patches on {n} tasks, {:.1} µs/patch vs \
             {:.1} µs cold ({speedup:.1}×, want ≥ {GATE_RATIO}×), {:.1}× the \
             weight-edit floor, {} splices / {} misses / {} full recomputes, \
             {} cone nodes per patch, energies {}, daemon reported {} splices",
            if pass { "PASS" } else { "FAIL" },
            patch_secs * 1e6 / patches as f64,
            cold_secs * 1e6 / patches as f64,
            structural_vs_weight,
            delta.sp_splice,
            delta.sp_splice_miss,
            delta.topo_order + delta.classify + delta.sp_from_graph + delta.transitive_reduction,
            delta.cone_nodes / patches as u64,
            if equivalent && four_model_identical {
                "bit-identical"
            } else {
                "DRIFTED"
            },
            daemon_sp_splice,
        ),
    }
}
