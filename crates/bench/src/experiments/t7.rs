//! T7 — Proposition 1(b): any Discrete instance is approximated
//! within `(1 + α/s_1)² (1 + 1/K)²`, `α = max_i (s_{i+1} − s_i)`,
//! by rounding the boxed Continuous optimum up to the next mode.

use super::{time_it, Outcome, P};
use crate::instances::{dmin, irregular_modes, random_execution_graph};
use reclaim_core::{continuous, discrete};
use report::Table;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "modes",
        "alpha-gap",
        "K",
        "bound",
        "ratio-vs-exact",
        "t-approx(ms)",
        "within",
    ]);
    let mut all_ok = true;

    for (mi, &m) in [3usize, 4, 6].iter().enumerate() {
        for &k in &[1u32, 10, 100] {
            let modes = irregular_modes(m, 0.6, 3.0, 700 + mi as u64);
            let alpha_gap = modes.max_gap();
            let bound = (1.0 + alpha_gap / modes.s_min()).powi(2) * (1.0 + 1.0 / k as f64).powi(2);
            let g = random_execution_graph(4, 3, 2, 710 + mi as u64); // 12 tasks
            let d = 1.5 * dmin(&g, modes.s_max());
            let (speeds, t_alg) =
                time_it(|| discrete::round_up(&g, d, &modes, P, Some(k)).unwrap());
            let e_alg = continuous::energy_of_speeds(&g, &speeds, P);
            let opt = discrete::exact(&g, d, &modes, P).unwrap().energy;
            let ratio = e_alg / opt;
            let ok = ratio <= bound * (1.0 + 1e-6);
            all_ok &= ok;
            table.row(&[
                format!(
                    "{:?}",
                    modes
                        .speeds()
                        .iter()
                        .map(|s| (s * 100.0).round() / 100.0)
                        .collect::<Vec<_>>()
                ),
                format!("{alpha_gap:.3}"),
                k.to_string(),
                format!("{bound:.4}"),
                format!("{ratio:.4}"),
                format!("{:.2}", t_alg * 1e3),
                if ok { "ok".into() } else { "VIOLATED".into() },
            ]);
        }
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "T7",
        claim: "Discrete approximated within (1+α/s_1)²(1+1/K)², α = max mode gap",
        table,
        verdict: format!(
            "{}: measured ratio vs the exact Discrete optimum ≤ bound on all irregular mode sets",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
