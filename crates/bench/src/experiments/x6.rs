//! X6 (extension) — sweep amortization: the prepared-instance
//! engine's [`Engine::energy_curve`] against N independent
//! `solve()` calls on the same 200-task series–parallel execution
//! graph (the "before" path re-derives the analysis and solves every
//! point cold; the "after" path prepares once, exploits the
//! unbounded-Continuous scaling law `E*(D) = E*(D₀)·(D₀/D)^{α−1}`,
//! and warm-starts the Vdd LP between points).
//!
//! The `BENCH_X6.json` metrics record both arms, so the perf trail
//! keeps a before/after entry for the sweep path from this PR onward.

use super::{time_it, Outcome, P};
use crate::instances::deadline_grid;
use models::{DiscreteModes, EnergyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::{solve, Engine, SolveError};
use report::Table;
use taskgraph::{generators, PreparedGraph};

/// Graph size, sweep resolution, and deadline range (the acceptance
/// configuration: 200-task SP graph, 32 points).
const N_TASKS: usize = 200;
const POINTS: usize = 32;
const LO: f64 = 1.05;
const HI: f64 = 4.0;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut rng = StdRng::seed_from_u64(4242);
    let (g, _) = generators::random_sp(N_TASKS, 0.55, 1.0, 5.0, &mut rng);
    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
    let engine = Engine::new(P);

    let mut table = Table::new(&["model", "naive(ms)", "engine(ms)", "speedup", "max |dE|/E"]);
    let mut metrics: Vec<(&'static str, f64)> = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut max_drift = 0.0f64;

    let cases: [(&str, EnergyModel, (&'static str, &'static str)); 2] = [
        (
            "Continuous",
            EnergyModel::continuous_unbounded(),
            ("continuous_naive_ns", "continuous_engine_ns"),
        ),
        (
            "Vdd-Hopping",
            EnergyModel::VddHopping(modes),
            ("vdd_naive_ns", "vdd_engine_ns"),
        ),
    ];
    for (name, model, (naive_key, engine_key)) in cases {
        // The same geometric deadline grid the engine samples.
        let deadlines = deadline_grid(&g, &model, POINTS, LO, HI);

        // Before: N cold solves, each re-deriving the graph analysis.
        let (naive, t_naive) = time_it(|| {
            deadlines
                .iter()
                .map(|&d| solve(&g, d, &model, P).map(|s| s.energy))
                .collect::<Vec<Result<f64, SolveError>>>()
        });
        // After: one prepared graph, one engine sweep.
        let (curve, t_engine) = time_it(|| {
            let prep = PreparedGraph::new(&g);
            engine
                .energy_curve(&prep, &model, POINTS, LO, HI)
                .expect("sweep is feasible")
        });

        let mut drift = 0.0f64;
        assert_eq!(curve.len(), POINTS, "no point of the sweep is infeasible");
        for (pt, naive_e) in curve.iter().zip(&naive) {
            let e = naive_e.as_ref().expect("cold solve feasible");
            drift = drift.max((pt.energy - e).abs() / (1.0 + e.abs()));
        }
        let speedup = t_naive / t_engine;
        min_speedup = min_speedup.min(speedup);
        max_drift = max_drift.max(drift);
        table.row(&[
            name.to_string(),
            format!("{:.1}", t_naive * 1e3),
            format!("{:.1}", t_engine * 1e3),
            format!("{speedup:.2}x"),
            format!("{drift:.2e}"),
        ]);
        metrics.push((naive_key, t_naive * 1e9));
        metrics.push((engine_key, t_engine * 1e9));
    }

    let pass = min_speedup >= 2.0 && max_drift <= 1e-6;
    Outcome {
        size: N_TASKS,
        metrics,
        id: "X6",
        claim: "prepared-engine sweeps are ≥ 2x faster than N independent solves, at identical energies",
        table,
        verdict: format!(
            "{}: min speedup {min_speedup:.2}x, max energy drift {max_drift:.2e}",
            if pass { "PASS" } else { "FAIL" }
        ),
    }
}
