//! F3 — energy by graph family: the model ordering and the
//! discretization premium across chains, forks, trees, SP graphs and
//! general layered DAGs (each family exercising a different exact
//! algorithm from the paper).

use super::{cont_energy, Outcome, P};
use crate::instances::{dmin, random_execution_graph, spread_modes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::{discrete, vdd};
use report::Table;
use taskgraph::{generators, TaskGraph};

fn family(name: &str, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    match name {
        "chain" => generators::chain(&generators::random_weights(12, 1.0, 5.0, &mut rng)),
        "fork" => {
            let ws = generators::random_weights(11, 1.0, 5.0, &mut rng);
            generators::fork(2.0, &ws)
        }
        "tree" => generators::random_out_tree(12, 1.0, 5.0, &mut rng),
        "sp" => generators::random_sp(12, 0.55, 1.0, 5.0, &mut rng).0,
        "layered" => random_execution_graph(4, 3, 2, seed),
        other => panic!("unknown family {other}"),
    }
}

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&["family", "algorithm", "Vdd/Cont", "Disc/Cont", "ordering"]);
    let modes = spread_modes(5, 0.5, 3.0);
    let mut all_ok = true;

    for name in ["chain", "fork", "tree", "sp", "layered"] {
        let mut r_vdd = Vec::new();
        let mut r_disc = Vec::new();
        for seed in 0..6u64 {
            let g = family(name, 1000 + seed);
            let d = 1.5 * dmin(&g, modes.s_max());
            let e_cont = cont_energy(&g, d, Some(modes.s_max()));
            let e_vdd = vdd::solve_lp(&g, d, &modes, P).unwrap().energy(&g, P);
            let e_disc = discrete::exact(&g, d, &modes, P).unwrap().energy;
            r_vdd.push(e_vdd / e_cont);
            r_disc.push(e_disc / e_cont);
        }
        let gv = report::geo_mean(&r_vdd);
        let gd = report::geo_mean(&r_disc);
        let ok = gv <= gd * (1.0 + 1e-6) && gv >= 1.0 - 1e-6;
        all_ok &= ok;
        let alg = match name {
            "chain" => "constant speed",
            "fork" => "Theorem 1 closed form",
            "tree" | "sp" => "Theorem 2 composition",
            _ => "geometric program",
        };
        table.row(&[
            name.into(),
            alg.into(),
            format!("{gv:.4}"),
            format!("{gd:.4}"),
            if ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "F3",
        claim: "the model ordering and premiums are structural, not an artifact of one graph family",
        table,
        verdict: format!(
            "{}: Cont ≤ Vdd ≤ Disc on every family; each family solved by its dedicated exact algorithm",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
