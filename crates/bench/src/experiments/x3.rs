//! X3 (extension) — robustness in the power exponent α: the paper
//! fixes `P(s) = s³` but every algorithm here is implemented for
//! general `α > 1` (series composition `Wₐ+W_b`, parallel composition
//! `(Wₐ^α + W_b^α)^{1/α}`, objective `Σ w^α/d^{α−1}`). The closed
//! forms must keep agreeing with the numerical solver, and the model
//! ordering must persist, at every α.

use super::Outcome;
use models::{DiscreteModes, PowerLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::{continuous, discrete, vdd};
use report::Table;
use taskgraph::generators;

/// Run the experiment.
pub fn run() -> Outcome {
    let mut table = Table::new(&[
        "alpha",
        "fork-rel-diff",
        "sp-rel-diff",
        "Vdd/Cont",
        "Disc/Cont",
        "ordering",
    ]);
    let mut rng = StdRng::seed_from_u64(1400);
    let mut all_ok = true;
    let mut worst_diff = 0.0f64;

    for &alpha in &[1.5, 2.0, 2.5, 3.0, 3.5] {
        let p = PowerLaw::new(alpha);
        // Closed forms vs numerical.
        let fork = generators::fork(2.0, &generators::random_weights(6, 1.0, 4.0, &mut rng));
        let d_fork = 3.0;
        let e_closed = continuous::energy_of_speeds(
            &fork,
            &continuous::solve_fork(&fork, d_fork, None, p).unwrap(),
            p,
        );
        let e_numer = continuous::energy_of_speeds(
            &fork,
            &continuous::solve_general(&fork, d_fork, None, p, None).unwrap(),
            p,
        );
        let fork_diff = (e_closed - e_numer).abs() / e_closed;

        let (sp, tree) = generators::random_sp(10, 0.5, 1.0, 4.0, &mut rng);
        let d_sp = taskgraph::analysis::critical_path_weight(&sp) * 0.8;
        let e_sp = continuous::energy_of_speeds(
            &sp,
            &continuous::solve_sp(&sp, &tree, d_sp, p).unwrap(),
            p,
        );
        let e_sp_num = continuous::energy_of_speeds(
            &sp,
            &continuous::solve_general(&sp, d_sp, None, p, None).unwrap(),
            p,
        );
        let sp_diff = (e_sp - e_sp_num).abs() / e_sp;
        worst_diff = worst_diff.max(fork_diff).max(sp_diff);

        // Model ordering on a mapped instance.
        let g = crate::instances::random_execution_graph(4, 3, 2, 1400);
        let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
        let d = 1.4 * crate::instances::dmin(&g, modes.s_max());
        let e_cont = continuous::energy_of_speeds(
            &g,
            &continuous::solve(&g, d, Some(modes.s_max()), p, None).unwrap(),
            p,
        );
        let e_vdd = vdd::solve_lp(&g, d, &modes, p).unwrap().energy(&g, p);
        let e_disc = discrete::exact(&g, d, &modes, p).unwrap().energy;
        let ok = e_cont <= e_vdd * (1.0 + 1e-6) && e_vdd <= e_disc * (1.0 + 1e-6);
        all_ok &= ok && fork_diff < 1e-4 && sp_diff < 1e-4;
        table.row(&[
            format!("{alpha:.1}"),
            format!("{fork_diff:.2e}"),
            format!("{sp_diff:.2e}"),
            format!("{:.4}", e_vdd / e_cont),
            format!("{:.4}", e_disc / e_cont),
            if ok { "ok".into() } else { "VIOLATED".into() },
        ]);
    }
    Outcome {
        size: 12,
        metrics: vec![],
        id: "X3",
        claim: "(extension) all algorithms generalize from s³ to any power law s^α, α > 1",
        table,
        verdict: format!(
            "{}: closed forms match the numerical solver (worst {worst_diff:.2e}) and the model ordering holds at every α",
            if all_ok { "PASS" } else { "FAIL" }
        ),
    }
}
