//! Sweep amortization bench (the engine-refactor acceptance
//! criterion): `Engine::energy_curve` on a 200-task series–parallel
//! graph — 32 points, Continuous (unbounded) and Vdd-Hopping —
//! against 32 independent `solve()` calls.
//!
//! The engine must win by ≥ 2× in aggregate: the Continuous sweep
//! collapses to one solve via `E*(D) = E*(D₀)·(D₀/D)^{α−1}`, and the
//! Vdd sweep re-optimizes the previous point's LP basis instead of
//! running the two-phase simplex cold at every deadline.

use bench::deadline_grid;
use criterion::{criterion_group, criterion_main, Criterion};
use models::{DiscreteModes, EnergyModel, PowerLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::{solve, Engine};
use taskgraph::{generators, PreparedGraph, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;
const POINTS: usize = 32;
const LO: f64 = 1.05;
const HI: f64 = 4.0;

fn sp_graph(n: usize) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(4242);
    generators::random_sp(n, 0.55, 1.0, 5.0, &mut rng).0
}

fn models() -> [(&'static str, EnergyModel); 2] {
    let modes = DiscreteModes::new(&[0.5, 1.125, 1.75, 2.375, 3.0]).unwrap();
    [
        ("continuous", EnergyModel::continuous_unbounded()),
        ("vdd", EnergyModel::VddHopping(modes)),
    ]
}

fn bench_sweep(c: &mut Criterion) {
    let g = sp_graph(200);
    let engine = Engine::new(P);
    let mut group = c.benchmark_group("sweep_200_sp_32pts");
    group.sample_size(10);
    for (name, model) in models() {
        let deadlines = deadline_grid(&g, &model, POINTS, LO, HI);
        group.bench_function(format!("naive_32_solves/{name}"), |b| {
            b.iter(|| {
                deadlines
                    .iter()
                    .map(|&d| solve(&g, d, &model, P).unwrap().energy)
                    .collect::<Vec<f64>>()
            })
        });
        group.bench_function(format!("engine_energy_curve/{name}"), |b| {
            b.iter(|| {
                let prep = PreparedGraph::new(&g);
                engine.energy_curve(&prep, &model, POINTS, LO, HI).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
