//! Criterion benches for the Discrete exact solver (Theorem 4:
//! exponential growth on PARTITION chains) and the warm-start
//! ablation (DESIGN.md decision 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::{DiscreteModes, PowerLaw};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reclaim_core::discrete;
use taskgraph::generators;

const P: PowerLaw = PowerLaw::CUBIC;

fn partition_instance(n: usize, seed: u64) -> (taskgraph::TaskGraph, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n)
        .map(|_| (rng.gen_range(20..40) as f64) + 0.5)
        .collect();
    generators::partition_chain(&values)
}

fn bench_bnb_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrete-bnb-partition");
    g.sample_size(10);
    let modes = DiscreteModes::new(&[1.0, 2.0]).unwrap();
    for n in [8usize, 12, 16] {
        let (graph, d) = partition_instance(n, 5);
        g.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| discrete::exact_with_budget(&graph, d, &modes, P, u64::MAX, false).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            b.iter(|| discrete::exact_with_budget(&graph, d, &modes, P, u64::MAX, true).unwrap())
        });
    }
    g.finish();
}

/// Ablation (DESIGN.md decision 4): the chain-cover lower bound vs the
/// static per-task bound, on a mapped execution graph where several
/// processor chains are serialized.
fn bench_chain_bound_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrete-bnb-chain-bound");
    g.sample_size(10);
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let eg = bench::instances::random_execution_graph(4, 3, 2, 904);
    let d = 1.5 * bench::instances::dmin(&eg, modes.s_max());
    for (label, chain_bound) in [("static-bound", false), ("chain-bound", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                discrete::exact_with_config(
                    &eg,
                    d,
                    &modes,
                    P,
                    discrete::BnbConfig {
                        chain_bound,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_chain_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrete-chain-dp");
    g.sample_size(10);
    let modes = DiscreteModes::new(&[1.0, 1.5, 2.0]).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let ws = generators::random_weights(24, 1.0, 4.0, &mut rng);
    let chain = generators::chain(&ws);
    let d = ws.iter().sum::<f64>() * 0.7;
    for res in [200usize, 1000, 5000] {
        g.bench_with_input(BenchmarkId::new("resolution", res), &res, |b, _| {
            b.iter(|| discrete::chain_dp(&chain, d, &modes, P, res).unwrap())
        });
    }
    g.finish();
}

fn bench_round_up(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrete-round-up");
    g.sample_size(10);
    let modes = DiscreteModes::new(&[0.5, 1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
    let eg = bench::instances::random_execution_graph(5, 4, 2, 11);
    let d = 1.5 * bench::instances::dmin(&eg, modes.s_max());
    g.bench_function("prop1b-n20", |b| {
        b.iter(|| discrete::round_up(&eg, d, &modes, P, Some(100)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bnb_growth,
    bench_chain_bound_ablation,
    bench_chain_dp,
    bench_round_up
);
criterion_main!(benches);
