//! Criterion benches for the Theorem 5 approximation: polynomial in
//! the instance and in `K` (runtime grows only logarithmically with
//! the requested precision, thanks to the barrier path-following).

use bench::instances::{dmin, random_execution_graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::{IncrementalModes, PowerLaw};
use reclaim_core::incremental;

const P: PowerLaw = PowerLaw::CUBIC;

fn bench_approx_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental-approx-K");
    g.sample_size(10);
    let eg = random_execution_graph(4, 3, 2, 21);
    let modes = IncrementalModes::new(0.5, 3.0, 0.1).unwrap();
    let d = 1.5 * dmin(&eg, modes.top_mode());
    for k in [1u32, 10, 100, 10_000] {
        g.bench_with_input(BenchmarkId::new("K", k), &k, |b, _| {
            b.iter(|| incremental::approx(&eg, d, &modes, P, k).unwrap())
        });
    }
    g.finish();
}

fn bench_approx_vs_delta(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental-approx-delta");
    g.sample_size(10);
    let eg = random_execution_graph(4, 3, 2, 22);
    for delta in [0.5, 0.1, 0.02] {
        let modes = IncrementalModes::new(0.5, 3.0, delta).unwrap();
        let d = 1.5 * dmin(&eg, modes.top_mode());
        g.bench_with_input(
            BenchmarkId::new("delta", format!("{delta}")),
            &delta,
            |b, _| b.iter(|| incremental::approx(&eg, d, &modes, P, 100).unwrap()),
        );
    }
    g.finish();
}

fn bench_exact_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental-exact");
    g.sample_size(10);
    let eg = random_execution_graph(4, 3, 2, 23);
    let modes = IncrementalModes::new(0.5, 3.0, 0.5).unwrap();
    let d = 1.5 * dmin(&eg, modes.top_mode());
    g.bench_function("bnb-grid-n12", |b| {
        b.iter(|| incremental::exact(&eg, d, &modes, P).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_approx_vs_k,
    bench_approx_vs_delta,
    bench_exact_grid
);
criterion_main!(benches);
