//! Criterion benches for the Continuous-model solvers (T1/T2 runtime
//! side: closed forms are near-free, the geometric program scales
//! polynomially).

use bench::instances::random_execution_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::PowerLaw;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::continuous;
use taskgraph::generators;

const P: PowerLaw = PowerLaw::CUBIC;

fn bench_closed_forms(c: &mut Criterion) {
    let mut g = c.benchmark_group("continuous-closed-form");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [16usize, 128, 1024] {
        let ws = generators::random_weights(n, 1.0, 5.0, &mut rng);
        let chain = generators::chain(&ws);
        g.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| continuous::solve_chain(&chain, ws.iter().sum::<f64>() / 2.0, None))
        });
        let fork = generators::fork(2.0, &ws);
        g.bench_with_input(BenchmarkId::new("fork-thm1", n), &n, |b, _| {
            b.iter(|| continuous::solve_fork(&fork, 6.0, None, P))
        });
        let tree = generators::random_out_tree(n, 1.0, 5.0, &mut rng);
        let d = taskgraph::analysis::critical_path_weight(&tree) * 0.8;
        g.bench_with_input(BenchmarkId::new("tree-thm2", n), &n, |b, _| {
            b.iter(|| continuous::solve_tree(&tree, d, P))
        });
    }
    g.finish();
}

fn bench_geometric_program(c: &mut Criterion) {
    let mut g = c.benchmark_group("continuous-geometric-program");
    g.sample_size(10);
    for (layers, width) in [(3usize, 3usize), (4, 4), (6, 6), (8, 8)] {
        let eg = random_execution_graph(layers, width, 3, 42);
        let d = taskgraph::analysis::critical_path_weight(&eg) * 0.8;
        g.bench_with_input(BenchmarkId::new("barrier", eg.n()), &eg.n(), |b, _| {
            b.iter(|| continuous::solve_general(&eg, d, None, P, None).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_closed_forms, bench_geometric_program);
criterion_main!(benches);
