//! Criterion benches for the Vdd-Hopping LP (Theorem 3: polynomial
//! time — measured here as simplex wall-clock vs instance size and
//! mode count) and the adjacent-mix heuristic.

use bench::instances::{dmin, random_execution_graph, spread_modes};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::PowerLaw;
use reclaim_core::vdd;

const P: PowerLaw = PowerLaw::CUBIC;

fn bench_lp_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("vdd-lp");
    g.sample_size(10);
    for (layers, width) in [(3usize, 3usize), (4, 4), (6, 5)] {
        let eg = random_execution_graph(layers, width, 2, 7);
        for m in [2usize, 5, 8] {
            let modes = spread_modes(m, 0.5, 3.0);
            let d = 1.5 * dmin(&eg, modes.s_max());
            g.bench_with_input(BenchmarkId::new(format!("n{}", eg.n()), m), &m, |b, _| {
                b.iter(|| vdd::solve_lp(&eg, d, &modes, P).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_adjacent_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("vdd-adjacent-mix");
    g.sample_size(10);
    let eg = random_execution_graph(4, 4, 2, 7);
    let modes = spread_modes(5, 0.5, 3.0);
    let d = 1.5 * dmin(&eg, modes.s_max());
    g.bench_function("heuristic-n16", |b| {
        b.iter(|| vdd::adjacent_mix(&eg, d, &modes, P).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_lp_scaling, bench_adjacent_mix);
criterion_main!(benches);
