//! Exact-curve bench: `Engine::energy_curve_exact` (breakpoint-walking
//! dual simplex) against the sampled `Engine::energy_curve`, on a
//! 200-task series–parallel Vdd-Hopping instance.
//!
//! The sampled sweep pays one cold two-phase LP plus a warm dual
//! re-solve (and schedule extraction + validation) per point; the
//! exact walk pays one dual pivot per breakpoint for the whole curve.
//! Bench X9 (`experiments x9`) enforces the ≥ 8× acceptance bar; this
//! harness tracks the same comparison under criterion for regressions,
//! and the Discrete arm exercises the adaptively-sampled fallback with
//! its barrier warm-start chain.

use criterion::{criterion_group, criterion_main, Criterion};
use models::{DiscreteModes, EnergyModel, PowerLaw};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reclaim_core::Engine;
use taskgraph::{generators, PreparedGraph, TaskGraph};

const P: PowerLaw = PowerLaw::CUBIC;
const POINTS: usize = 64;
const LO: f64 = 1.05;
const HI: f64 = 1.6;

fn sp_graph(n: usize) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(4242);
    generators::random_sp(n, 0.55, 1.0, 5.0, &mut rng).0
}

fn bench_curve(c: &mut Criterion) {
    let g = sp_graph(200);
    let engine = Engine::new(P).threads(1);
    let modes = DiscreteModes::new(&[0.6, 1.2, 1.8, 2.4]).unwrap();
    let vdd = EnergyModel::VddHopping(modes.clone());

    let mut group = c.benchmark_group("curve_200_sp");
    group.sample_size(10);
    group.bench_function("sampled_64pts/vdd", |b| {
        let prep = PreparedGraph::new(&g);
        b.iter(|| engine.energy_curve(&prep, &vdd, POINTS, LO, HI).unwrap())
    });
    group.bench_function("exact_walk/vdd", |b| {
        let prep = PreparedGraph::new(&g);
        // Steady state: warm basis retained from a previous solve.
        let mut warm = None;
        let d0 = LO * prep.critical_path_weight() / modes.s_max();
        engine.solve_warm(&prep, &vdd, d0, &mut warm).unwrap();
        b.iter(|| {
            engine
                .energy_curve_exact_warm(&prep, &vdd, LO, HI, &mut warm)
                .unwrap()
        })
    });
    // The adaptive fallback (Discrete round-up + barrier warm chain)
    // on a smaller instance — barrier solves dominate, so keep n low.
    let gd = sp_graph(48);
    let discrete = EnergyModel::Discrete(modes);
    group.bench_function("exact_adaptive/discrete_48", |b| {
        let prep = PreparedGraph::new(&gd);
        b.iter(|| engine.energy_curve_exact(&prep, &discrete, LO, HI).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_curve);
criterion_main!(benches);
