//! Criterion benches for the substrate crates: simplex pivoting,
//! barrier Newton steps, SP recognition, graph analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lp::{Problem, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taskgraph::{analysis, generators, SpTree};

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp-simplex");
    g.sample_size(10);
    for n in [20usize, 60, 120] {
        // A dense random feasible LP: min cᵀx, Ax ≤ b with b > 0.
        let mut rng = StdRng::seed_from_u64(n as u64);
        let rows = n;
        let mut p = Problem::new(n);
        let obj: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(0.1..1.0))).collect();
        p.set_objective(&obj);
        for _ in 0..rows {
            let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rng.gen_range(-0.5..1.0))).collect();
            p.add_constraint(&coeffs, Relation::Le, rng.gen_range(1.0..5.0));
            // Also a covering row to keep the optimum away from 0.
        }
        let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
        p.add_constraint(&cover, Relation::Ge, 1.0);
        g.bench_with_input(BenchmarkId::new("vars", n), &n, |b, _| {
            b.iter(|| p.solve().unwrap())
        });
    }
    g.finish();
}

fn bench_sp_recognition(c: &mut Criterion) {
    let mut g = c.benchmark_group("taskgraph-sp-recognition");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for n in [20usize, 60, 150] {
        let (sp, _) = generators::random_sp(n, 0.55, 1.0, 4.0, &mut rng);
        g.bench_with_input(BenchmarkId::new("recognize", n), &n, |b, _| {
            b.iter(|| SpTree::from_graph(&sp).unwrap())
        });
    }
    g.finish();
}

fn bench_graph_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("taskgraph-analysis");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let big = generators::layered_dag(40, 50, 0.1, 1.0, 5.0, &mut rng);
    g.bench_function("topo-n2000", |b| b.iter(|| analysis::topo_order(&big)));
    g.bench_function("critical-path-n2000", |b| {
        b.iter(|| analysis::critical_path_weight(&big))
    });
    g.bench_function("reachability-n2000", |b| {
        b.iter(|| analysis::reachability(&big))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_sp_recognition,
    bench_graph_analysis
);
criterion_main!(benches);
