//! The content-addressed cache of prepared instances.
//!
//! Keys are [`reclaim_core::engine::content_key`] hashes of the
//! `(graph, model)` content, so the *same instance arriving twice* —
//! from two connections, two files, or two runs of a client — maps to
//! one [`taskgraph::PreparedInstance`] whose analysis (topological
//! order, shape, SP tree, critical path, transitive reduction) is paid
//! for exactly once. Values are `Arc<PreparedInstance>` plus the model
//! the key was derived under and a shared Vdd warm-start slot: a hit
//! hands out a clone of the handle, so eviction never invalidates an
//! in-flight solve.
//!
//! # Patching
//!
//! Since protocol v2 an entry can be **edited in place**:
//! [`InstanceCache::patch`] looks up a base instance by key, applies a
//! [`GraphEdit`] batch through [`taskgraph::PreparedInstance::apply`]
//! (selective invalidation — weight-only batches recompute *no*
//! structural analysis), derives the edited content key incrementally
//! ([`reclaim_core::engine::patched_key`]), and **re-keys** the entry:
//! the base slot is replaced by the patched instance under its new
//! key, modelling "this cached instance just changed" rather than
//! growing a second copy per edit. The base's Vdd warm-start slot
//! travels with the patched entry across weight-only batches (the LP
//! matrix is unchanged — only its RHS moved) and is reset by
//! structural ones. Patch traffic is counted separately
//! (`patch_hits` / `patch_misses` / `rekeys`) so `stats` can tell a
//! patched-in-place instance from plain cache hits.
//!
//! Eviction is least-recently-used under a dual budget: a maximum
//! entry count and a maximum (estimated) byte footprint
//! ([`taskgraph::PreparedInstance::approx_bytes`]). The most recently
//! inserted entry is never evicted by its own insertion, so a single
//! over-budget instance still serves its request (and is dropped on
//! the next insertion instead).
//!
//! # The disk store (protocol v5)
//!
//! A cache built with [`InstanceCache::with_store`] is **backed by a
//! [`crate::store::Store`]**: every built or patched instance is
//! spilled to disk write-through, every patch is recorded in the
//! store's lineage log, an LRU victim is re-spilled with its retained
//! curve *before* it is dropped (so eviction downgrades the entry
//! from RAM to disk instead of destroying it — a re-request is a disk
//! hit, [`Prepared::StoreHit`], not a cold re-prepare), and a RAM
//! miss consults the store before building from scratch. Spills run
//! under the cache lock on the eviction path; records are small
//! (one JSON line) and the alternative — dropping the victim outside
//! the lock — would let a racing re-request rebuild cold mid-spill.
//!
//! The key deliberately covers graph **and** model, even though the
//! cached analysis is model-independent: one cache entry *is* one
//! addressable instance on the wire, so hit/miss/eviction counters
//! read in instance units and an entry's lifetime matches its
//! traffic. The cost — a graph solved under two models is analyzed
//! twice — is bounded by the model count (≤ 4 kinds); sharing the
//! analysis across models would need a graph-keyed second level and
//! is not worth the accounting ambiguity yet.

use models::EnergyModel;
use reclaim_core::engine::{content_key, patched_key, VddWarm};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use taskgraph::edit::{EditError, GraphEdit};
use taskgraph::PreparedInstance;

use crate::proto::CacheStatsReport;
use crate::store::Store;

/// Budgets for [`InstanceCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum live entries (≥ 1 enforced).
    pub max_entries: usize,
    /// Maximum estimated resident bytes across live entries.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 64,
            max_bytes: 256 << 20,
        }
    }
}

/// The per-entry Vdd warm-start slot: the retained LP basis of the
/// last Vdd-Hopping solve of this instance, if any. Shared (`Arc`) so
/// a re-keyed patch chain keeps one slot alive across entries.
pub type WarmSlot = Arc<Mutex<Option<VddWarm>>>;

/// A retained exact energy–deadline curve (protocol v3): the segments
/// of the last `energy_curve {exact}` request against this entry, with
/// the deadline factors they were computed for. A repeat request with
/// the same factors is answered from here without touching the LP.
#[derive(Debug, Clone)]
pub struct CachedCurve {
    /// The `lo` factor of the request that built the curve.
    pub lo: f64,
    /// The `hi` factor of the request that built the curve.
    pub hi: f64,
    /// The curve itself.
    pub curve: Arc<reclaim_core::ExactCurve>,
}

/// The per-entry retained-curve slot. Unlike [`WarmSlot`], this never
/// travels across patches — the curve's energies depend on the task
/// weights, so **any** edit invalidates it.
pub type CurveSlot = Arc<Mutex<Option<CachedCurve>>>;

struct Entry {
    inst: Arc<PreparedInstance>,
    model: EnergyModel,
    warm: WarmSlot,
    curve: CurveSlot,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<u128, Entry>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe content-addressed LRU of prepared instances.
pub struct InstanceCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
    /// Disk backing (protocol v5): spill on build/patch/evict, load
    /// on RAM miss, record patch lineage. `None` without `--store`.
    store: Option<Arc<Store>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    patch_hits: AtomicU64,
    patch_misses: AtomicU64,
    rekeys: AtomicU64,
}

/// Where [`InstanceCache::get_or_prepare`] found the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prepared {
    /// Live in RAM.
    Hit,
    /// RAM miss, re-materialized from the disk store's spilled entry
    /// (analyses restored from the snapshot — no re-preparation).
    StoreHit,
    /// Built and fully warmed from scratch.
    Built,
}

impl Prepared {
    /// Whether the daemon should report the instance as `cached`
    /// (preparation was not re-paid): everything but a cold build.
    pub fn cached(self) -> bool {
        !matches!(self, Prepared::Built)
    }
}

/// A successfully applied [`InstanceCache::patch`].
pub struct Patched {
    /// The edited, selectively re-prepared instance.
    pub inst: Arc<PreparedInstance>,
    /// The model of the (base and patched) entry.
    pub model: EnergyModel,
    /// Content key of the edited instance — its cache identity from
    /// now on.
    pub key: u128,
    /// The Vdd warm-start slot of the patched entry (the base's slot
    /// for weight-only batches, a fresh empty one after structural
    /// edits).
    pub warm: WarmSlot,
    /// Whether every edit in the batch was weight-only (nothing
    /// structural was recomputed).
    pub weight_only: bool,
    /// Nanoseconds spent re-warming analyses the edits dropped
    /// (`0` for weight-only batches — the carried caches *are* the
    /// preparation).
    pub prep_ns: u64,
}

/// Why a patch was refused.
#[derive(Debug)]
pub enum PatchError {
    /// The base key is not in the cache (never seen, or evicted).
    UnknownBase,
    /// The edit batch is invalid for the base graph.
    Edit(EditError),
}

impl InstanceCache {
    /// An empty cache with the given budgets (RAM only).
    pub fn new(cfg: CacheConfig) -> InstanceCache {
        InstanceCache::with_store(cfg, None)
    }

    /// An empty cache with the given budgets, optionally backed by a
    /// disk store (see the module docs for the spill/load policy).
    pub fn with_store(cfg: CacheConfig, store: Option<Arc<Store>>) -> InstanceCache {
        InstanceCache {
            cfg: CacheConfig {
                max_entries: cfg.max_entries.max(1),
                max_bytes: cfg.max_bytes,
            },
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            patch_hits: AtomicU64::new(0),
            patch_misses: AtomicU64::new(0),
            rekeys: AtomicU64::new(0),
        }
    }

    /// Look up the instance for `key`, re-materializing it from the
    /// disk store (when one is attached) or building (and fully
    /// warming) it on a miss. `model` must be the model `key` was
    /// derived under; it is stored with the entry so `patch` can
    /// re-key without the client resending it. Returns the shared
    /// handle and where it came from ([`Prepared`]). The builder and
    /// the store load run *outside* the lock: two racing misses on one
    /// key both build, and the first insertion wins — wasted work,
    /// never a wrong answer.
    pub fn get_or_prepare(
        &self,
        key: u128,
        model: &EnergyModel,
        build: impl FnOnce() -> PreparedInstance,
    ) -> (Arc<PreparedInstance>, Prepared) {
        if let Some((inst, _)) = self.lookup(key) {
            return (inst, Prepared::Hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A RAM miss consults the store first: a spilled (or
        // recovered-after-restart) entry comes back with its analyses
        // and retained curve, skipping preparation entirely.
        let (built, curve, outcome) = match self.store.as_ref().and_then(|s| s.load(key)) {
            Some(stored) => {
                // `restore` validated each snapshot field; warm() fills
                // anything a damaged field degraded to lazy.
                stored.inst.warm();
                (stored.inst, stored.curve, Prepared::StoreHit)
            }
            None => {
                let built = build();
                built.warm();
                (built, None, Prepared::Built)
            }
        };
        let bytes = built.approx_bytes();
        let built = Arc::new(built);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let inst = match inner.map.get_mut(&key) {
            // A racing worker inserted while we were building: use
            // (and refresh) the winner, drop our copy.
            Some(e) => {
                e.last_used = tick;
                Arc::clone(&e.inst)
            }
            None => {
                inner.bytes += bytes;
                inner.map.insert(
                    key,
                    Entry {
                        inst: Arc::clone(&built),
                        model: model.clone(),
                        warm: Arc::new(Mutex::new(None)),
                        curve: Arc::new(Mutex::new(curve)),
                        bytes,
                        last_used: tick,
                    },
                );
                self.enforce_budget(&mut inner, key);
                built
            }
        };
        drop(inner);
        if outcome == Prepared::Built {
            // Write-through: a freshly built instance is on disk
            // before its first response leaves the daemon, so a crash
            // right after never forgets it. Spill failures degrade to
            // a RAM-only entry, never to a wrong answer.
            if let Some(store) = &self.store {
                let _ = store.save(key, model, &inst, None);
            }
        }
        (inst, outcome)
    }

    /// Look up `key` without counting a hit and without building —
    /// the daemon's `as_of` time-travel path peeks for a live
    /// ancestor before going to the store.
    pub fn peek(&self, key: u128) -> Option<Arc<PreparedInstance>> {
        self.lookup_quiet(key).map(|(inst, _)| inst)
    }

    /// The Vdd warm-start slot of an entry, if the entry is live. Used
    /// by the daemon to retain the LP basis a solve produced so a
    /// later `patch` can re-optimize it.
    pub fn warm_slot(&self, key: u128) -> Option<WarmSlot> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.get(&key).map(|e| Arc::clone(&e.warm))
    }

    /// The retained-curve slot of an entry, if the entry is live. The
    /// daemon parks the last exact energy–deadline curve here so
    /// repeat requests are answered without re-walking the LP.
    pub fn curve_slot(&self, key: u128) -> Option<CurveSlot> {
        let inner = self.inner.lock().expect("cache lock poisoned");
        inner.map.get(&key).map(|e| Arc::clone(&e.curve))
    }

    /// Apply an edit batch to the cached instance `base`, re-keying
    /// the entry in place (see the module docs). A base missing from
    /// RAM but present in the attached store re-materializes from
    /// disk first (eviction and restarts don't break patch chains).
    /// On success the cache holds the patched instance under
    /// [`Patched::key`] and no longer holds `base`; in-flight solves
    /// against the base handle are unaffected (`Arc`).
    pub fn patch(&self, base: u128, edits: &[GraphEdit]) -> Result<Patched, PatchError> {
        // Patch traffic is accounted in its own counters, not in the
        // plain hit/miss pair — `stats` must be able to tell them
        // apart.
        let (base_inst, model, base_warm) = match self.lookup_quiet(base) {
            Some((inst, (model, warm))) => (inst, model, warm),
            // An attached store extends "held" to disk: a base that
            // was spilled on eviction (or recovered after a restart)
            // re-materializes and the patch proceeds as a hit — the
            // Vdd warm slot starts empty (live LP handles are never
            // persisted) and rebuilds lazily.
            None => match self.store.as_ref().and_then(|s| s.load(base)) {
                Some(stored) => {
                    stored.inst.warm();
                    (
                        Arc::new(stored.inst),
                        stored.model,
                        Arc::new(Mutex::new(None)),
                    )
                }
                None => {
                    self.patch_misses.fetch_add(1, Ordering::Relaxed);
                    return Err(PatchError::UnknownBase);
                }
            },
        };
        // Apply (and, for structural batches, re-warm) outside the
        // lock — the expensive part must not serialize other workers.
        let patched = base_inst.apply(edits).map_err(PatchError::Edit)?;
        let weight_only = edits.iter().all(GraphEdit::is_weight_only);
        let prep_ns = if weight_only {
            // Every structural cache was carried over: the patched
            // instance is as prepared as the base was.
            0
        } else {
            let t0 = std::time::Instant::now();
            patched.warm();
            t0.elapsed().as_nanos() as u64
        };
        let key = patched_key(base, base_inst.graph(), edits)
            .unwrap_or_else(|| content_key(patched.graph(), &model));
        // The retained Vdd basis travels whenever the patched LP is
        // the same matrix: weight-only batches only move the RHS, and
        // structural batches that leave the transitively reduced
        // precedence rows unchanged (same rule as
        // `Engine::solve_edited`) don't move anything else either.
        let same_lp = weight_only
            || (!edits.iter().any(|e| e.changes_task_set())
                && base_inst.view().reduced().edges() == patched.view().reduced().edges());
        let warm = if same_lp {
            base_warm
        } else {
            Arc::new(Mutex::new(None))
        };
        let bytes = patched.approx_bytes();
        let inst = Arc::new(patched);

        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&base) {
            inner.bytes -= old.bytes;
            self.rekeys.fetch_add(1, Ordering::Relaxed);
        }
        match inner.map.get_mut(&key) {
            // The edited content was already cached (e.g. an edit that
            // undoes a previous one): keep the existing entry.
            Some(e) => {
                e.last_used = tick;
                let existing = Arc::clone(&e.inst);
                let warm = Arc::clone(&e.warm);
                drop(inner);
                self.patch_hits.fetch_add(1, Ordering::Relaxed);
                // The content was already cached, but the *edit* is
                // new history: record it so `as_of` can walk through.
                if let Some(store) = &self.store {
                    let _ = store.record_patch(base, edits, key);
                }
                return Ok(Patched {
                    inst: existing,
                    model,
                    key,
                    warm,
                    weight_only,
                    prep_ns,
                });
            }
            None => {
                inner.bytes += bytes;
                inner.map.insert(
                    key,
                    Entry {
                        inst: Arc::clone(&inst),
                        model: model.clone(),
                        warm: Arc::clone(&warm),
                        // Never carried over: curve energies depend on
                        // the weights every patch may have changed.
                        curve: Arc::new(Mutex::new(None)),
                        bytes,
                        last_used: tick,
                    },
                );
                self.enforce_budget(&mut inner, key);
            }
        }
        drop(inner);
        self.patch_hits.fetch_add(1, Ordering::Relaxed);
        // Lineage before content: if the daemon dies between the two
        // writes, a recorded hop whose child file is missing still
        // re-materializes by replay; a child file with no hop would
        // strand the edit out of every `as_of` walk.
        if let Some(store) = &self.store {
            let _ = store.record_patch(base, edits, key);
            let _ = store.save(key, &model, &inst, None);
        }
        Ok(Patched {
            inst,
            model,
            key,
            warm,
            weight_only,
            prep_ns,
        })
    }

    /// The lookup half of [`Self::get_or_prepare`], counting a hit iff
    /// present.
    fn lookup(&self, key: u128) -> Option<(Arc<PreparedInstance>, (EnergyModel, WarmSlot))> {
        let found = self.lookup_quiet(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// [`Self::lookup`] without touching the hit counter (LRU recency
    /// is still refreshed) — the read half of `patch`.
    fn lookup_quiet(&self, key: u128) -> Option<(Arc<PreparedInstance>, (EnergyModel, WarmSlot))> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                Some((Arc::clone(&e.inst), (e.model.clone(), Arc::clone(&e.warm))))
            }
            None => None,
        }
    }

    /// Evict LRU entries until both budgets hold, never evicting
    /// `keep` (the entry whose insertion triggered enforcement).
    fn enforce_budget(&self, inner: &mut Inner, keep: u128) {
        while inner.map.len() > self.cfg.max_entries
            || (inner.bytes > self.cfg.max_bytes && inner.map.len() > 1)
        {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                // Eviction downgrades the entry from RAM to disk: the
                // latest analyses and the retained curve are
                // re-spilled before the drop, so a re-request is a
                // StoreHit (the Vdd warm slot holds a live LP handle
                // and cannot be serialized; it alone rebuilds lazily).
                if let Some(store) = &self.store {
                    let curve = match e.curve.lock() {
                        Ok(guard) => guard.clone(),
                        Err(poisoned) => poisoned.into_inner().clone(),
                    };
                    let _ = store.save(victim, &e.model, &e.inst, curve.as_ref());
                }
            }
        }
    }

    /// Spill every live entry (with its retained curve) to the store.
    /// The daemon calls this as its drain completes so a clean
    /// shutdown persists exactly the state a restart will recover.
    pub fn spill_all(&self) {
        let Some(store) = &self.store else { return };
        let inner = self.inner.lock().expect("cache lock poisoned");
        for (key, e) in &inner.map {
            let curve = match e.curve.lock() {
                Ok(guard) => guard.clone(),
                Err(poisoned) => poisoned.into_inner().clone(),
            };
            let _ = store.save(*key, &e.model, &e.inst, curve.as_ref());
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStatsReport {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStatsReport {
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            patch_hits: self.patch_hits.load(Ordering::Relaxed),
            patch_misses: self.patch_misses.load(Ordering::Relaxed),
            rekeys: self.rekeys.load(Ordering::Relaxed),
        }
    }
}

/// Convenience: the content key for a parsed instance (re-exported so
/// daemon/corpus call one function).
pub fn instance_key(g: &taskgraph::TaskGraph, model: &models::EnergyModel) -> u128 {
    content_key(g, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use taskgraph::generators;

    fn prep(seed: f64) -> PreparedInstance {
        PreparedInstance::new(StdArc::new(generators::diamond([1.0, 2.0, 3.0, seed])))
    }

    fn model() -> EnergyModel {
        EnergyModel::continuous_unbounded()
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
        });
        let (_, outcome) = cache.get_or_prepare(1, &model(), || prep(1.0));
        assert_eq!(outcome, Prepared::Built);
        assert!(!outcome.cached());
        let (_, outcome) = cache.get_or_prepare(1, &model(), || panic!("must not rebuild"));
        assert_eq!(outcome, Prepared::Hit);
        assert!(outcome.cached());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn entry_budget_evicts_lru() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        cache.get_or_prepare(1, &model(), || prep(1.0));
        cache.get_or_prepare(2, &model(), || prep(2.0));
        // Touch 1 so 2 becomes the LRU.
        cache.get_or_prepare(1, &model(), || panic!("hit expected"));
        cache.get_or_prepare(3, &model(), || prep(3.0));
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // 2 was evicted; 1 and 3 survive.
        let (_, outcome) = cache.get_or_prepare(1, &model(), || prep(1.0));
        assert_eq!(outcome, Prepared::Hit);
        let (_, outcome) = cache.get_or_prepare(3, &model(), || prep(3.0));
        assert_eq!(outcome, Prepared::Hit);
        let (_, outcome) = cache.get_or_prepare(2, &model(), || prep(2.0));
        assert_eq!(outcome, Prepared::Built, "2 must have been evicted");
    }

    #[test]
    fn byte_budget_keeps_at_least_the_newest() {
        // A budget smaller than any one instance: every insertion
        // evicts the previous entry but keeps itself.
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 10,
            max_bytes: 1,
        });
        cache.get_or_prepare(1, &model(), || prep(1.0));
        assert_eq!(cache.stats().entries, 1, "own insertion survives");
        cache.get_or_prepare(2, &model(), || prep(2.0));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn eviction_does_not_invalidate_live_handles() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 1,
            max_bytes: usize::MAX,
        });
        let (held, _) = cache.get_or_prepare(1, &model(), || prep(1.0));
        cache.get_or_prepare(2, &model(), || prep(2.0)); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        // The handle still works: analysis remains usable.
        assert!(held.view().critical_path_weight() > 0.0);
    }

    #[test]
    fn concurrent_same_key_converges_to_one_entry() {
        let cache = StdArc::new(InstanceCache::new(CacheConfig::default()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = StdArc::clone(&cache);
                s.spawn(move || {
                    let (inst, _) = cache.get_or_prepare(42, &model(), || prep(5.0));
                    assert_eq!(inst.graph().n(), 4);
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits + s.misses, 8);
        assert!(s.misses >= 1);
    }

    #[test]
    fn patch_rekeys_in_place() {
        let cache = InstanceCache::new(CacheConfig::default());
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let m = model();
        let base_key = instance_key(&g, &m);
        cache.get_or_prepare(base_key, &m, || {
            PreparedInstance::new(StdArc::new(g.clone()))
        });
        let edits = [GraphEdit::SetWeight {
            task: 1,
            weight: 5.0,
        }];
        let patched = cache.patch(base_key, &edits).unwrap();
        assert!(patched.weight_only);
        assert_eq!(patched.prep_ns, 0);
        assert_eq!(patched.inst.graph().weights()[1], 5.0);
        // The new key is what a full rehash of the edited graph gives.
        let (rebuilt, _) = taskgraph::edit::apply_edits(&g, &edits).unwrap();
        assert_eq!(patched.key, instance_key(&rebuilt, &m));
        // Re-key: one entry, reachable under the new key only.
        let s = cache.stats();
        assert_eq!((s.entries, s.patch_hits, s.rekeys), (1, 1, 1));
        let (_, outcome) = cache.get_or_prepare(patched.key, &m, || panic!("must be live"));
        assert_eq!(outcome, Prepared::Hit);
        assert!(matches!(
            cache.patch(base_key, &edits),
            Err(PatchError::UnknownBase)
        ));
        assert_eq!(cache.stats().patch_misses, 1);
    }

    #[test]
    fn patch_chain_and_structural_warm_reset() {
        let cache = InstanceCache::new(CacheConfig::default());
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let m = model();
        let k0 = instance_key(&g, &m);
        cache.get_or_prepare(k0, &m, || PreparedInstance::new(StdArc::new(g.clone())));
        let w0 = cache.warm_slot(k0).unwrap();
        // Weight-only patch: the warm slot travels.
        let p1 = cache
            .patch(
                k0,
                &[GraphEdit::SetWeight {
                    task: 0,
                    weight: 2.0,
                }],
            )
            .unwrap();
        assert!(StdArc::ptr_eq(&w0, &p1.warm), "slot carried over");
        // Structural patch: fresh slot, measured re-warm.
        let p2 = cache
            .patch(p1.key, &[GraphEdit::RemoveEdge { from: 0, to: 2 }])
            .unwrap();
        assert!(!p2.weight_only);
        assert!(!StdArc::ptr_eq(&w0, &p2.warm), "slot reset");
        let s = cache.stats();
        assert_eq!((s.entries, s.patch_hits, s.rekeys), (1, 2, 2));
    }

    #[test]
    fn patch_with_invalid_edits_keeps_base() {
        let cache = InstanceCache::new(CacheConfig::default());
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let m = model();
        let k0 = instance_key(&g, &m);
        cache.get_or_prepare(k0, &m, || PreparedInstance::new(StdArc::new(g)));
        match cache.patch(k0, &[GraphEdit::InsertEdge { from: 3, to: 0 }]) {
            Err(PatchError::Edit(_)) => {}
            Err(other) => panic!("expected edit error, got {other:?}"),
            Ok(_) => panic!("cycle-introducing edit must fail"),
        }
        // Base entry is untouched.
        let (_, outcome) = cache.get_or_prepare(k0, &m, || panic!("base must survive"));
        assert_eq!(outcome, Prepared::Hit);
        assert_eq!(cache.stats().rekeys, 0);
    }

    #[test]
    fn eviction_spills_to_store_and_reloads_with_curve() {
        let dir = std::env::temp_dir().join(format!("reclaim-cache-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StdArc::new(crate::store::Store::open(&dir, false).unwrap());
        let cache = InstanceCache::with_store(
            CacheConfig {
                max_entries: 1,
                max_bytes: usize::MAX,
            },
            Some(StdArc::clone(&store)),
        );
        let m = model();
        let g1 = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let k1 = instance_key(&g1, &m);
        let (held, outcome) =
            cache.get_or_prepare(k1, &m, || PreparedInstance::new(StdArc::new(g1)));
        assert_eq!(outcome, Prepared::Built);
        // Park a retained curve in the entry's slot, as the daemon's
        // exact-curve path does.
        let slot = cache.curve_slot(k1).unwrap();
        *slot.lock().unwrap() = Some(CachedCurve {
            lo: 1.05,
            hi: 4.0,
            curve: StdArc::new(reclaim_core::ExactCurve {
                segments: vec![reclaim_core::CurveSegment {
                    deadline_lo: 2.0,
                    deadline_hi: 8.0,
                    energy: reclaim_core::CurveEnergy::Power { c: 96.0, p: 2.0 },
                }],
                exact: true,
                stats: Default::default(),
            }),
        });
        drop(slot);
        // Evict k1 (entry budget 1) — the bugfix: the entry spills
        // with its curve instead of being destroyed.
        cache.get_or_prepare(2, &m, || prep(9.0));
        assert_eq!(cache.stats().evictions, 1);
        // A re-request is a disk hit, not a cold rebuild…
        let (reloaded, outcome) =
            cache.get_or_prepare(k1, &m, || panic!("must reload from the store, not rebuild"));
        assert_eq!(outcome, Prepared::StoreHit);
        assert!(outcome.cached());
        assert_eq!(reloaded.graph(), held.graph());
        // …and the retained curve came back with it.
        let slot = cache.curve_slot(k1).unwrap();
        let curve = slot.lock().unwrap().clone().expect("curve restored");
        assert_eq!((curve.lo, curve.hi), (1.05, 4.0));
        assert_eq!(curve.curve.segments.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn patch_miss_falls_back_to_store() {
        let dir = std::env::temp_dir().join(format!("reclaim-cache-pfb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StdArc::new(crate::store::Store::open(&dir, false).unwrap());
        let cache = InstanceCache::with_store(
            CacheConfig {
                max_entries: 1,
                max_bytes: usize::MAX,
            },
            Some(StdArc::clone(&store)),
        );
        let m = model();
        let g = generators::diamond([1.0, 2.0, 3.0, 4.0]);
        let base_key = instance_key(&g, &m);
        cache.get_or_prepare(base_key, &m, || {
            PreparedInstance::new(StdArc::new(g.clone()))
        });
        // Evict the base (entry budget 1): it spills to disk only.
        cache.get_or_prepare(2, &m, || prep(9.0));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.peek(base_key).is_none());
        // Patching the evicted base re-materializes it from the store
        // instead of erroring UnknownBase.
        let edits = [GraphEdit::SetWeight {
            task: 1,
            weight: 6.0,
        }];
        let patched = cache.patch(base_key, &edits).unwrap();
        assert_eq!(patched.inst.graph().weights()[1], 6.0);
        let (rebuilt, _) = taskgraph::edit::apply_edits(&g, &edits).unwrap();
        assert_eq!(patched.key, instance_key(&rebuilt, &m));
        let s = cache.stats();
        assert_eq!((s.patch_hits, s.patch_misses), (1, 0));
        // The patched child is cached and the lineage hop was recorded.
        assert!(cache.peek(patched.key).is_some());
        let (parent, hop_edits) = store.parent_of(patched.key).expect("lineage hop recorded");
        assert_eq!(parent, base_key);
        assert_eq!(hop_edits.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
