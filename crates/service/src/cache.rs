//! The content-addressed cache of prepared instances.
//!
//! Keys are [`reclaim_core::engine::content_key`] hashes of the
//! serialized `(graph, model)` content, so the *same instance arriving
//! twice* — from two connections, two files, or two runs of a client —
//! maps to one [`taskgraph::PreparedInstance`] whose analysis
//! (topological order, shape, SP tree, critical path, transitive
//! reduction) is paid for exactly once. Values are
//! `Arc<PreparedInstance>`: a hit hands out a clone of the handle, so
//! eviction never invalidates an in-flight solve.
//!
//! Eviction is least-recently-used under a dual budget: a maximum
//! entry count and a maximum (estimated) byte footprint
//! ([`taskgraph::PreparedInstance::approx_bytes`]). The most recently
//! inserted entry is never evicted by its own insertion, so a single
//! over-budget instance still serves its request (and is dropped on
//! the next insertion instead).
//!
//! The key deliberately covers graph **and** model, even though the
//! cached analysis is model-independent: one cache entry *is* one
//! addressable instance on the wire, so hit/miss/eviction counters
//! read in instance units and an entry's lifetime matches its
//! traffic. The cost — a graph solved under two models is analyzed
//! twice — is bounded by the model count (≤ 4 kinds); sharing the
//! analysis across models would need a graph-keyed second level and
//! is not worth the accounting ambiguity yet.

use reclaim_core::engine::content_key;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use taskgraph::PreparedInstance;

use crate::proto::CacheStatsReport;

/// Budgets for [`InstanceCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum live entries (≥ 1 enforced).
    pub max_entries: usize,
    /// Maximum estimated resident bytes across live entries.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 64,
            max_bytes: 256 << 20,
        }
    }
}

struct Entry {
    inst: Arc<PreparedInstance>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<u128, Entry>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe content-addressed LRU of prepared instances.
pub struct InstanceCache {
    cfg: CacheConfig,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl InstanceCache {
    /// An empty cache with the given budgets.
    pub fn new(cfg: CacheConfig) -> InstanceCache {
        InstanceCache {
            cfg: CacheConfig {
                max_entries: cfg.max_entries.max(1),
                max_bytes: cfg.max_bytes,
            },
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up the instance for `key`, building (and fully warming)
    /// it on a miss. Returns the shared handle and whether it was a
    /// hit. The builder runs *outside* the lock: two racing misses on
    /// one key both build, and the first insertion wins — wasted work,
    /// never a wrong answer.
    pub fn get_or_prepare(
        &self,
        key: u128,
        build: impl FnOnce() -> PreparedInstance,
    ) -> (Arc<PreparedInstance>, bool) {
        if let Some(inst) = self.lookup(key) {
            return (inst, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = build();
        built.warm();
        let bytes = built.approx_bytes();
        let built = Arc::new(built);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let inst = match inner.map.get_mut(&key) {
            // A racing worker inserted while we were building: use
            // (and refresh) the winner, drop our copy.
            Some(e) => {
                e.last_used = tick;
                Arc::clone(&e.inst)
            }
            None => {
                inner.bytes += bytes;
                inner.map.insert(
                    key,
                    Entry {
                        inst: Arc::clone(&built),
                        bytes,
                        last_used: tick,
                    },
                );
                self.enforce_budget(&mut inner, key);
                built
            }
        };
        (inst, false)
    }

    /// The lookup half of [`Self::get_or_prepare`], counting a hit iff
    /// present.
    fn lookup(&self, key: u128) -> Option<Arc<PreparedInstance>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.inst))
            }
            None => None,
        }
    }

    /// Evict LRU entries until both budgets hold, never evicting
    /// `keep` (the entry whose insertion triggered enforcement).
    fn enforce_budget(&self, inner: &mut Inner, keep: u128) {
        while inner.map.len() > self.cfg.max_entries
            || (inner.bytes > self.cfg.max_bytes && inner.map.len() > 1)
        {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStatsReport {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStatsReport {
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Convenience: the content key for a parsed instance (re-exported so
/// daemon/corpus call one function).
pub fn instance_key(g: &taskgraph::TaskGraph, model: &models::EnergyModel) -> u128 {
    content_key(g, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use taskgraph::generators;

    fn prep(seed: f64) -> PreparedInstance {
        PreparedInstance::new(StdArc::new(generators::diamond([1.0, 2.0, 3.0, seed])))
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 4,
            max_bytes: usize::MAX,
        });
        let (_, hit) = cache.get_or_prepare(1, || prep(1.0));
        assert!(!hit);
        let (_, hit) = cache.get_or_prepare(1, || panic!("must not rebuild"));
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn entry_budget_evicts_lru() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        cache.get_or_prepare(1, || prep(1.0));
        cache.get_or_prepare(2, || prep(2.0));
        // Touch 1 so 2 becomes the LRU.
        cache.get_or_prepare(1, || panic!("hit expected"));
        cache.get_or_prepare(3, || prep(3.0));
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // 2 was evicted; 1 and 3 survive.
        let (_, hit) = cache.get_or_prepare(1, || prep(1.0));
        assert!(hit);
        let (_, hit) = cache.get_or_prepare(3, || prep(3.0));
        assert!(hit);
        let (_, hit) = cache.get_or_prepare(2, || prep(2.0));
        assert!(!hit, "2 must have been evicted");
    }

    #[test]
    fn byte_budget_keeps_at_least_the_newest() {
        // A budget smaller than any one instance: every insertion
        // evicts the previous entry but keeps itself.
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 10,
            max_bytes: 1,
        });
        cache.get_or_prepare(1, || prep(1.0));
        assert_eq!(cache.stats().entries, 1, "own insertion survives");
        cache.get_or_prepare(2, || prep(2.0));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn eviction_does_not_invalidate_live_handles() {
        let cache = InstanceCache::new(CacheConfig {
            max_entries: 1,
            max_bytes: usize::MAX,
        });
        let (held, _) = cache.get_or_prepare(1, || prep(1.0));
        cache.get_or_prepare(2, || prep(2.0)); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        // The handle still works: analysis remains usable.
        assert!(held.view().critical_path_weight() > 0.0);
    }

    #[test]
    fn concurrent_same_key_converges_to_one_entry() {
        let cache = StdArc::new(InstanceCache::new(CacheConfig::default()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = StdArc::clone(&cache);
                s.spawn(move || {
                    let (inst, _) = cache.get_or_prepare(42, || prep(5.0));
                    assert_eq!(inst.graph().n(), 4);
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits + s.misses, 8);
        assert!(s.misses >= 1);
    }
}
