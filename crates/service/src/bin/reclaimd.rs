//! `reclaimd` — the content-addressed solve daemon.
//!
//! ```text
//! reclaimd [--socket PATH] [--tcp ADDR] [--workers N]
//!          [--cache-entries N] [--cache-bytes B] [--alpha A]
//!          [--max-connections N] [--max-inflight N]
//!          [--store DIR] [--store-fsync]
//! ```
//!
//! Serves the length-prefixed JSON-line protocol (see
//! `reclaim_service::proto`) until a `shutdown` request arrives.
//! `reclaim ask` is the matching client.

use reclaim_service::daemon::{config_from_args, Daemon};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: reclaimd [--socket PATH] [--tcp ADDR] [--workers N]\n\
             \x20               [--cache-entries N] [--cache-bytes B] [--alpha A]\n\
             \x20               [--max-connections N] [--max-inflight N]\n\
             \x20               [--store DIR] [--store-fsync]\n\
             default socket: reclaimd.sock (unix domain); --tcp overrides.\n\
             --max-inflight bounds admitted-but-unanswered requests per\n\
             connection (backpressure); --max-connections bounds accepted\n\
             sockets.\n\
             --store DIR persists instances, curves, and patch lineage to\n\
             disk (crash-safe, checksummed); a restarted daemon scans it\n\
             and boots warm. --store-fsync trades write latency for\n\
             power-failure durability.\n\
             Stop it with: reclaim ask --shutdown --socket PATH"
        );
        std::process::exit(2);
    }
    let cfg = config_from_args(&args).unwrap_or_else(|e| {
        eprintln!("reclaimd: {e}");
        std::process::exit(2);
    });
    let workers = cfg.workers;
    let daemon = Daemon::bind(cfg).unwrap_or_else(|e| {
        eprintln!("reclaimd: bind failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "reclaimd: listening on {} ({} workers)",
        daemon.endpoint(),
        workers
    );
    if let Err(e) = daemon.run() {
        eprintln!("reclaimd: {e}");
        std::process::exit(1);
    }
}
