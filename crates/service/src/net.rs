//! Readiness polling for the event-driven daemon: a thin, safe
//! wrapper over Linux `epoll`, declared directly against the system C
//! library — the workspace vendors no FFI crates, and the five
//! syscalls the poll loop needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `pipe2`, plus `read`/`write`/`close` on the wake
//! pipe) have had stable signatures since Linux 2.6.27.
//!
//! One [`Poller`] instance is owned by the daemon's poll loop. Every
//! registered file descriptor carries a caller-chosen `u64` token;
//! [`Poller::wait`] reports which tokens are readable / writable.
//! Worker threads never touch the epoll fd — they call
//! [`Poller::notify`], which writes one byte into a nonblocking
//! self-pipe registered with the poller, waking `epoll_wait` so the
//! loop can drain the completion queue. `notify` is safe from any
//! thread and any signal-free context; the pipe is drained inside
//! `wait`, and a full pipe (`EAGAIN`) means a wakeup is already
//! pending, which is exactly the semantics we want.
//!
//! Level-triggered mode only: the daemon re-arms interest explicitly
//! via [`Poller::modify`] as connection state changes, and
//! level-triggered readiness means a frame left half-read in a kernel
//! buffer re-surfaces on the next `wait` without edge bookkeeping.

use std::io;
use std::os::fd::RawFd;

pub(crate) const EPOLLIN: u32 = 0x1;
pub(crate) const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
/// Peer shut down its write side; surfaces as readable (read → EOF).
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the one ABI
/// where the kernel defines it unaligned); naturally aligned
/// elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Token reserved for the internal wake pipe; user registrations must
/// stay below it.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Reading will not block (data, EOF, or a pending error —
    /// `EPOLLHUP`/`EPOLLERR` are folded in so the next `read` call
    /// surfaces the condition).
    pub readable: bool,
    /// Writing will not block (or the peer is gone and the write will
    /// fail fast).
    pub writable: bool,
}

/// A level-triggered epoll instance plus a self-pipe waker.
///
/// All registration and waiting happens on the owning (poll loop)
/// thread; [`Poller::notify`] is the one cross-thread entry point.
/// Shared via `Arc` so worker threads can hold the waker side without
/// lifetimes tying them to the loop.
pub(crate) struct Poller {
    epfd: RawFd,
    wake_read: RawFd,
    wake_write: RawFd,
}

// The struct only carries raw fds; every operation on them is
// thread-safe at the kernel level (epoll_ctl/epoll_wait may race by
// design, and the waker write is atomic for 1-byte payloads).
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Poller {
    /// Create the epoll instance and its wake pipe, and register the
    /// pipe's read end under [`WAKE_TOKEN`].
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        let mut fds = [0i32; 2];
        if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller {
            epfd,
            wake_read: fds[0],
            wake_write: fds[1],
        };
        poller.ctl(EPOLL_CTL_ADD, poller.wake_read, WAKE_TOKEN, EPOLLIN)?;
        Ok(poller)
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// Start watching `fd` under `token`.
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        debug_assert!(token < WAKE_TOKEN);
        self.ctl(EPOLL_CTL_ADD, fd, token, Self::interest(readable, writable))
    }

    /// Change what `fd` is watched for.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, Self::interest(readable, writable))
    }

    /// Stop watching `fd`. Callers close the fd themselves (closing
    /// also deregisters, but only once every duplicate is gone —
    /// explicit is safer).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready, the waker
    /// fires, or `timeout_ms` elapses (negative = no timeout). Returns
    /// the ready events (wake-pipe readiness is drained and reported
    /// as an empty-interest event under [`WAKE_TOKEN`]); an empty
    /// vector means the timeout elapsed. `EINTR` is retried.
    pub fn wait(&self, timeout_ms: i32) -> io::Result<Vec<Event>> {
        const MAX_EVENTS: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() != Some(EINTR) {
                return Err(err);
            }
        };
        let mut out = Vec::with_capacity(n);
        for ev in &buf[..n] {
            let (events, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                self.drain_wake();
                out.push(Event {
                    token,
                    readable: false,
                    writable: false,
                });
                continue;
            }
            out.push(Event {
                token,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
            });
        }
        Ok(out)
    }

    /// Wake a blocked [`Poller::wait`] from any thread. Best-effort by
    /// design: a full pipe means a wakeup is already pending.
    pub fn notify(&self) {
        let byte = 1u8;
        unsafe { write(self.wake_write, &byte, 1) };
    }

    /// Empty the wake pipe so level-triggered readiness subsides.
    fn drain_wake(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.wake_read, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wake_write);
            close(self.wake_read);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn readiness_tracks_interest() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 7, true, false).unwrap();

        // Nothing to read yet: the wait times out empty.
        assert!(poller.wait(0).unwrap().is_empty());

        a.write_all(b"x").unwrap();
        let events = poller.wait(1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Ask for writability too: an idle socket is writable at once.
        poller.modify(b.as_raw_fd(), 7, true, true).unwrap();
        let events = poller.wait(1000).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(b.as_raw_fd()).unwrap();
        // Deregistered: pending data no longer surfaces.
        assert!(poller.wait(0).unwrap().is_empty());
    }

    #[test]
    fn peer_close_is_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(b.as_raw_fd(), 3, true, false).unwrap();
        drop(a);
        let events = poller.wait(1000).unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.readable),
            "EOF must surface as readability"
        );
    }

    #[test]
    fn notify_wakes_a_blocked_wait_across_threads() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify();
            waker.notify(); // coalesces, must not break anything
        });
        let events = poller.wait(10_000).unwrap();
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        t.join().unwrap();
        // A second notify racing the first wait's drain may leave one
        // byte behind; the next wait drains it, and after that the
        // pipe is quiet.
        let _ = poller.wait(0).unwrap();
        assert!(poller.wait(0).unwrap().is_empty());
    }
}
