//! A minimal JSON value, parser, and writer.
//!
//! The build environment is offline (no serde), so the wire protocol
//! carries a small hand-rolled JSON implementation: enough of RFC 8259
//! for the request/response types — objects, arrays, strings with
//! escapes, finite numbers, booleans, null. Two deliberate
//! restrictions keep the service deterministic:
//!
//! * objects preserve **insertion order** (they are association lists,
//!   not hash maps), so encoding is byte-stable run to run;
//! * non-finite numbers are unrepresentable — [`Json::num`] panics on
//!   NaN/∞ rather than emitting invalid JSON.

use std::fmt;

/// A JSON value. Objects are ordered association lists.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite IEEE-754 double.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value. Panics on non-finite input (invalid JSON).
    pub fn num(v: f64) -> Json {
        assert!(v.is_finite(), "JSON cannot represent {v}");
        Json::Num(v)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact one-line encoding (the framing layer forbids interior
    /// newlines, which this never produces).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(v: f64, out: &mut String) {
    debug_assert!(v.is_finite());
    if v == v.trunc() && v.abs() < 9.0e15 {
        // Integral doubles print without a fraction ("5", not "5.0"),
        // matching how lengths/counters read on the wire.
        out.push_str(&format!("{}", v as i64));
    } else {
        // Rust's f64 Display is the shortest round-trip representation.
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        let k = self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        self.skip_ws();
                        let v = self.value()?;
                        pairs.push((k, v));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for BMP-external
                            // characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first 'u' escape's last digit
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // '\'
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len.min(s.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u`, leaving `pos` on the final
    /// digit (the caller's shared `pos += 1` steps past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..start + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(digits)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number {text:?}")))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(v))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::num(5.0), "5"),
            (Json::num(-1.25), "-1.25"),
            (Json::str("a\"b\\c\nd"), r#""a\"b\\c\nd""#),
        ] {
            assert_eq!(v.encode(), s);
            assert_eq!(parse(s).unwrap(), v);
        }
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Arr(vec![Json::num(1.0), Json::Null])),
            ("a".into(), Json::Obj(vec![("k".into(), Json::str("v"))])),
        ]);
        let s = v.encode();
        assert_eq!(s, r#"{"z":[1,null],"a":{"k":"v"}}"#);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1 + 0.2; // 0.30000000000000004
        let v = Json::num(x);
        let back = parse(&v.encode()).unwrap();
        assert_eq!(back.as_f64(), Some(x));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::num(1.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::str("A"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
        // Raw multi-byte characters pass through both directions.
        let v = Json::str("énergie ≤ ∞");
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1,}",
            "tru",
            "nul",
            "01x",
            "1e999",
            "[1 2]",
            "{\"a\" 1}",
            "\"\\q\"",
            "\u{1}",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb stops at the cap instead of overflowing the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn non_finite_numbers_rejected_at_construction() {
        let _ = Json::num(f64::NAN);
    }
}
