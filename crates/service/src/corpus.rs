//! The sharded corpus front-end.
//!
//! `reclaim corpus <dir> --shards N` partitions every `.inst` file in
//! a directory across `N` engine shards and solves each shard on its
//! own thread. Following the deterministic-partitioning discipline of
//! parallel B&B frameworks (Bobpp: identical job streams must yield
//! identical work distribution and identical output), the shard of a
//! job is a **pure function of its content**:
//!
//! ```text
//! shard(job) = content_key(graph, model) mod N
//! ```
//!
//! — not of enumeration order, thread timing, or path. Two runs over
//! the same corpus therefore produce *byte-identical* shard manifests
//! (`corpus_shard_<k>.json`: the assignment plus every energy), while
//! wall-clock lands separately in `BENCH_corpus_<k>.json` so the perf
//! trail can track throughput without breaking determinism.
//!
//! This module is parser-agnostic: callers (the CLI) hand it parsed
//! [`CorpusJob`]s, so the crate does not depend on the instance
//! format.

use models::{EnergyModel, PowerLaw};
use reclaim_core::engine::content_key;
use reclaim_core::{Engine, SolveError};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::proto::ErrorBody;

/// One corpus entry: a named, parsed instance. Also the job unit of
/// the protocol-v4 `corpus` request ([`crate::proto::Request::Corpus`]),
/// where the daemon runs the same sharded loop through its
/// content-addressed cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusJob {
    /// Display name (file name relative to the corpus root).
    pub name: String,
    /// The execution graph.
    pub graph: taskgraph::TaskGraph,
    /// The energy model.
    pub model: EnergyModel,
    /// The deadline `D`.
    pub deadline: f64,
}

/// The solved result of one corpus entry, as it lands in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Display name.
    pub name: String,
    /// Content key (shard assignment derives from this).
    pub key: u128,
    /// Task count.
    pub tasks: usize,
    /// The deadline.
    pub deadline: f64,
    /// Model name (owned so entries can cross the wire in a v4
    /// `corpus` response).
    pub model: String,
    /// Energy + algorithm, or the structured error.
    pub result: Result<(f64, String), ErrorBody>,
}

/// One shard's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// This shard's index (`0..shards`).
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// Solved entries, sorted by name.
    pub entries: Vec<CorpusEntry>,
    /// Wall-clock of this shard's solve loop, in nanoseconds
    /// (non-deterministic; kept out of the manifest).
    pub elapsed_ns: u128,
}

impl ShardOutcome {
    /// Number of successfully solved entries.
    pub fn solved(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_ok()).count()
    }

    /// Task count of the shard's largest instance (0 when empty).
    pub fn max_tasks(&self) -> usize {
        self.entries.iter().map(|e| e.tasks).max().unwrap_or(0)
    }

    /// Sum of task counts across the shard.
    pub fn total_tasks(&self) -> usize {
        self.entries.iter().map(|e| e.tasks).sum()
    }

    /// The deterministic shard manifest (see the module docs).
    pub fn manifest_json(&self) -> String {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("file".into(), Json::str(e.name.clone())),
                    ("key".into(), Json::str(format!("{:032x}", e.key))),
                    ("tasks".into(), Json::num(e.tasks as f64)),
                    ("deadline".into(), Json::num(e.deadline)),
                    ("model".into(), Json::str(e.model.clone())),
                ];
                match &e.result {
                    Ok((energy, algorithm)) => {
                        pairs.push(("energy".into(), Json::num(*energy)));
                        pairs.push(("algorithm".into(), Json::str(algorithm.clone())));
                    }
                    Err(err) => pairs.push((
                        "error".into(),
                        Json::Obj(vec![
                            ("kind".into(), Json::str(format!("{:?}", err.kind))),
                            ("message".into(), Json::str(err.message.clone())),
                        ]),
                    )),
                }
                Json::Obj(pairs)
            })
            .collect();
        let doc = Json::Obj(vec![
            ("shard".into(), Json::num(self.shard as f64)),
            ("shards".into(), Json::num(self.shards as f64)),
            ("files".into(), Json::num(self.entries.len() as f64)),
            ("entries".into(), Json::Arr(entries)),
        ]);
        let mut s = doc.encode();
        s.push('\n');
        s
    }

    /// The `BENCH_corpus_<k>.json` record, matching the experiment
    /// harness schema (`experiment` / `mean_ns` / `instance_size` /
    /// `metrics`).
    pub fn bench_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"corpus_{}\",\n  \"mean_ns\": {},\n  \"instance_size\": {},\n  \"metrics\": {{\"files\": {}, \"solved\": {}, \"errors\": {}, \"total_tasks\": {}}}\n}}\n",
            self.shard,
            self.elapsed_ns,
            self.max_tasks(),
            self.entries.len(),
            self.solved(),
            self.entries.len() - self.solved(),
            self.total_tasks(),
        )
    }
}

/// The shard a job lands on: a pure function of content.
pub fn shard_of(job: &CorpusJob, shards: usize) -> usize {
    (content_key(&job.graph, &job.model) % shards as u128) as usize
}

/// Partition `jobs` across `shards` engine shards and solve each shard
/// on its own (single-engine-threaded) worker. Every shard appears in
/// the output, including empty ones, in shard order; entries within a
/// shard are sorted by name.
pub fn run_corpus(jobs: Vec<CorpusJob>, shards: usize, power: PowerLaw) -> Vec<ShardOutcome> {
    let shards = shards.max(1);
    // One hash per job: the key that picks the shard is the key the
    // manifest records (they cannot diverge).
    let mut buckets: Vec<Vec<(u128, CorpusJob)>> = (0..shards).map(|_| Vec::new()).collect();
    for job in jobs {
        let key = content_key(&job.graph, &job.model);
        buckets[(key % shards as u128) as usize].push((key, job));
    }
    for bucket in &mut buckets {
        bucket.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .enumerate()
            .map(|(shard, bucket)| {
                s.spawn(move || {
                    let engine = Engine::new(power).threads(1);
                    let start = std::time::Instant::now();
                    let entries: Vec<CorpusEntry> = bucket
                        .into_iter()
                        .map(|(key, job)| {
                            let result = engine
                                .solve_graph(&job.graph, &job.model, job.deadline)
                                .map(|sol| (sol.energy, sol.algorithm.to_string()))
                                .map_err(|e: SolveError| ErrorBody::from(&e));
                            CorpusEntry {
                                name: job.name,
                                key,
                                tasks: job.graph.n(),
                                deadline: job.deadline,
                                model: job.model.name().to_string(),
                                result,
                            }
                        })
                        .collect();
                    ShardOutcome {
                        shard,
                        shards,
                        entries,
                        elapsed_ns: start.elapsed().as_nanos(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("corpus shard worker panicked"))
            .collect()
    })
}

/// Write every shard's manifest and BENCH record into `dir`, creating
/// it if needed. Returns the written paths.
pub fn write_outputs(dir: &Path, outcomes: &[ShardOutcome]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for o in outcomes {
        let manifest = dir.join(format!("corpus_shard_{}.json", o.shard));
        std::fs::write(&manifest, o.manifest_json())?;
        written.push(manifest);
        let bench = dir.join(format!("BENCH_corpus_{}.json", o.shard));
        std::fs::write(&bench, o.bench_json())?;
        written.push(bench);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::generators;

    fn jobs() -> Vec<CorpusJob> {
        (0..6)
            .map(|i| CorpusJob {
                name: format!("inst_{i}.inst"),
                graph: generators::chain(&[1.0 + i as f64, 2.0, 0.5]),
                model: EnergyModel::continuous_unbounded(),
                deadline: 8.0,
            })
            .collect()
    }

    #[test]
    fn sharding_is_content_addressed_not_order_addressed() {
        let a = jobs();
        let mut b = jobs();
        b.reverse();
        for (x, y) in a.iter().zip(b.iter().rev()) {
            assert_eq!(shard_of(x, 4), shard_of(y, 4));
        }
    }

    #[test]
    fn every_shard_is_reported_and_entries_are_solved() {
        let outcomes = run_corpus(jobs(), 4, PowerLaw::CUBIC);
        assert_eq!(outcomes.len(), 4);
        let total: usize = outcomes.iter().map(|o| o.entries.len()).sum();
        assert_eq!(total, 6);
        for o in &outcomes {
            assert_eq!(o.shards, 4);
            for e in &o.entries {
                let (energy, _) = e.result.as_ref().expect("feasible corpus");
                assert!(*energy > 0.0);
            }
            // Manifest parses back as JSON and holds every entry.
            let doc = crate::json::parse(o.manifest_json().trim()).unwrap();
            assert_eq!(
                doc.get("files").and_then(crate::json::Json::as_u64),
                Some(o.entries.len() as u64)
            );
            assert!(o.bench_json().contains("\"mean_ns\""));
        }
    }

    #[test]
    fn infeasible_entries_carry_structured_errors() {
        let job = CorpusJob {
            name: "tight.inst".into(),
            graph: generators::chain(&[4.0]),
            model: EnergyModel::continuous(1.0),
            deadline: 1.0, // needs 4 time units at top speed
        };
        let outcomes = run_corpus(vec![job], 1, PowerLaw::CUBIC);
        let entry = &outcomes[0].entries[0];
        let err = entry.result.as_ref().unwrap_err();
        assert_eq!(err.kind, crate::proto::ErrorKind::Infeasible);
        assert!(outcomes[0].manifest_json().contains("Infeasible"));
    }
}
