//! The disk-backed, content-addressed instance store (protocol v5).
//!
//! A daemon started with `--store DIR` persists every prepared
//! instance it builds — graph, model, the analysis caches
//! ([`taskgraph::AnalysisSnapshot`]), and the retained exact curve —
//! under its FNV-128 content key, one file per key:
//!
//! ```text
//! DIR/instances/<32-hex-digit key>.inst    one record per file
//! DIR/lineage.log                          append-only patch records
//! ```
//!
//! Because keys are content hashes, files are **immutable facts**: a
//! patch never rewrites its base's file, it appends a lineage record
//! `(parent_key, edits, child_key)` and writes the child under its own
//! key. Old versions therefore accumulate, and any historical version
//! re-materializes in O(edits) by replaying its edit chain forward
//! from the nearest stored ancestor ([`Store::materialize`]) — the
//! substrate of the v5 `as_of` time-travel requests and the `lineage`
//! query.
//!
//! # Record format and crash safety
//!
//! One record is three lines:
//!
//! ```text
//! <decimal byte length of payload> '\n'
//! <16 hex digits: FNV-1a-64 of the payload bytes> '\n'
//! <payload JSON, one line> '\n'
//! ```
//!
//! Instance files are written to a temp name and atomically renamed,
//! so a reader (or a recovery scan) never observes a half-written
//! file under a real key. The lineage log is append-only; a crash can
//! leave a **torn tail** (the last record cut mid-write), and a
//! damaged disk can flip bytes anywhere. Recovery
//! ([`Store::open`]) is therefore strict and structured:
//!
//! * a record whose framing is intact but whose checksum mismatches is
//!   **skipped exactly** — the scan resumes at the next record;
//! * a record whose framing itself is broken ends the scan (there is
//!   no resynchronization point);
//! * every skip bumps the structured `corrupt_skipped` counter
//!   surfaced in the `stats` response — damage is never silent;
//! * after a damaged-log scan the surviving records are rewritten
//!   canonically (temp file + rename), and corrupt instance files are
//!   removed, so **two recovery runs produce byte-identical stores** —
//!   the property the crash-recovery battery `cmp`-checks.
//!
//! Durability is a policy flag: `--store-fsync` fsyncs data and
//! directory on every write; the default leaves flushing to the OS
//! (a kill -9 is survived either way — the checksummed records make
//! torn writes detectable — but a power failure may lose the tail).

use crate::cache::CachedCurve;
use crate::json::{self, Json};
use crate::proto::{
    edit_from_json, edit_to_json, graph_from_json, graph_to_json, key_from_hex, key_to_hex,
    model_from_json, model_to_json, segment_from_json, segment_to_json, LineageHop,
    StoreStatsReport,
};
use models::EnergyModel;
use reclaim_core::engine::content_key;
use reclaim_core::{CurveStats, ExactCurve};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use taskgraph::edit::GraphEdit;
use taskgraph::{AnalysisSnapshot, PreparedInstance, Shape, SpTree, TaskId};

/// FNV-1a 64-bit — the record checksum (the content keys themselves
/// are the engine's FNV-128; the store only needs to detect damage,
/// not address content, so 64 bits and a fast scan suffice).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode one record (see the module docs for the grammar).
fn encode_record(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "payload must be one line");
    format!(
        "{}\n{:016x}\n{}\n",
        payload.len(),
        fnv1a64(payload.as_bytes()),
        payload
    )
}

/// How a record read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordDamage {
    /// Framing intact, checksum mismatch: skip exactly this record.
    Corrupt,
    /// Framing broken (torn tail, flipped header): the scan cannot
    /// resynchronize past this point.
    Torn,
}

/// Parse the record starting at `*pos`. `Ok(Some(payload))` advances
/// `*pos` past the record; `Ok(None)` is a clean end of data;
/// `Err(Corrupt)` advances past the damaged record, `Err(Torn)` does
/// not advance (nothing past it is readable).
fn parse_record(data: &[u8], pos: &mut usize) -> Result<Option<String>, RecordDamage> {
    let avail = &data[*pos..];
    if avail.is_empty() {
        return Ok(None);
    }
    // Length header: decimal digits up to '\n', at most 20 digits.
    let header_end = match avail.iter().take(21).position(|&b| b == b'\n') {
        Some(i) => i,
        None => return Err(RecordDamage::Torn),
    };
    let len: usize = match std::str::from_utf8(&avail[..header_end])
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(n) => n,
        None => return Err(RecordDamage::Torn),
    };
    // Checksum line: exactly 16 hex digits plus '\n'.
    let sum_start = header_end + 1;
    let body_start = sum_start + 17;
    if avail.len() < body_start + len + 1 {
        return Err(RecordDamage::Torn);
    }
    if avail[sum_start + 16] != b'\n' || avail[body_start + len] != b'\n' {
        return Err(RecordDamage::Torn);
    }
    let want = match std::str::from_utf8(&avail[sum_start..sum_start + 16])
        .ok()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    {
        Some(w) => w,
        None => return Err(RecordDamage::Torn),
    };
    let body = &avail[body_start..body_start + len];
    // Framing is intact from here on: damage advances past the record.
    *pos += body_start + len + 1;
    if fnv1a64(body) != want {
        return Err(RecordDamage::Corrupt);
    }
    match std::str::from_utf8(body) {
        Ok(s) => Ok(Some(s.to_string())),
        Err(_) => Err(RecordDamage::Corrupt),
    }
}

// ---------------------------------------------------------------
// Payload codecs (deterministic: insertion-ordered objects)
// ---------------------------------------------------------------

fn shape_wire(s: Shape) -> &'static str {
    match s {
        Shape::Single => "single",
        Shape::Chain => "chain",
        Shape::Fork => "fork",
        Shape::Join => "join",
        Shape::OutTree => "out_tree",
        Shape::InTree => "in_tree",
        Shape::SeriesParallel => "series_parallel",
        Shape::General => "general",
    }
}

fn shape_from_wire(s: &str) -> Option<Shape> {
    Some(match s {
        "single" => Shape::Single,
        "chain" => Shape::Chain,
        "fork" => Shape::Fork,
        "join" => Shape::Join,
        "out_tree" => Shape::OutTree,
        "in_tree" => Shape::InTree,
        "series_parallel" => Shape::SeriesParallel,
        "general" => Shape::General,
        _ => return None,
    })
}

/// SP trees encode compactly: a leaf is its task id, a series node is
/// `{"s":[…]}`, a parallel node `{"p":[…]}`.
fn sp_to_json(t: &SpTree) -> Json {
    match t {
        SpTree::Leaf(id) => Json::num(id.index() as f64),
        SpTree::Series(cs) => Json::Obj(vec![(
            "s".into(),
            Json::Arr(cs.iter().map(sp_to_json).collect()),
        )]),
        SpTree::Parallel(cs) => Json::Obj(vec![(
            "p".into(),
            Json::Arr(cs.iter().map(sp_to_json).collect()),
        )]),
    }
}

fn sp_from_json(v: &Json) -> Option<SpTree> {
    if let Some(id) = v.as_u64() {
        return Some(SpTree::Leaf(TaskId(id as usize)));
    }
    let (children, series) = match (v.get("s"), v.get("p")) {
        (Some(cs), None) => (cs.as_arr()?, true),
        (None, Some(cs)) => (cs.as_arr()?, false),
        _ => return None,
    };
    let cs: Vec<SpTree> = children.iter().map(sp_from_json).collect::<Option<_>>()?;
    Some(if series {
        SpTree::Series(cs)
    } else {
        SpTree::Parallel(cs)
    })
}

fn snapshot_to_json(s: &AnalysisSnapshot) -> Json {
    let mut pairs = Vec::new();
    if let Some(topo) = &s.topo {
        pairs.push((
            "topo".into(),
            Json::Arr(topo.iter().map(|&i| Json::num(i as f64)).collect()),
        ));
    }
    if let Some((shape, tree)) = &s.class {
        pairs.push(("shape".into(), Json::str(shape_wire(*shape))));
        if let Some(tree) = tree {
            pairs.push(("sp".into(), sp_to_json(tree)));
        }
    }
    if let Some(cp) = s.cp_weight {
        pairs.push(("cp_weight".into(), Json::num(cp)));
    }
    if let Some(redges) = &s.reduced_edges {
        pairs.push((
            "reduced".into(),
            Json::Arr(
                redges
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::num(u as f64), Json::num(v as f64)]))
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

fn snapshot_from_json(v: &Json) -> AnalysisSnapshot {
    // Field-level damage degrades to lazy recomputation (restore()
    // re-validates everything against the graph anyway).
    let topo = v.get("topo").and_then(Json::as_arr).map(|a| {
        a.iter()
            .filter_map(|i| i.as_u64().map(|i| i as usize))
            .collect()
    });
    let class = v
        .get("shape")
        .and_then(Json::as_str)
        .and_then(shape_from_wire)
        .map(|shape| (shape, v.get("sp").and_then(sp_from_json)));
    AnalysisSnapshot {
        topo,
        class,
        cp_weight: v.get("cp_weight").and_then(Json::as_f64),
        reduced_edges: v.get("reduced").and_then(Json::as_arr).map(|a| {
            a.iter()
                .filter_map(|e| {
                    let pair = e.as_arr().filter(|p| p.len() == 2)?;
                    Some((pair[0].as_u64()? as usize, pair[1].as_u64()? as usize))
                })
                .collect()
        }),
    }
}

fn curve_to_json(c: &CachedCurve) -> Json {
    Json::Obj(vec![
        ("lo".into(), Json::num(c.lo)),
        ("hi".into(), Json::num(c.hi)),
        ("exact".into(), Json::Bool(c.curve.exact)),
        (
            "segments".into(),
            Json::Arr(c.curve.segments.iter().map(segment_to_json).collect()),
        ),
    ])
}

fn curve_from_json(v: &Json) -> Option<CachedCurve> {
    let segments = v
        .get("segments")?
        .as_arr()?
        .iter()
        .map(|s| segment_from_json(s).ok())
        .collect::<Option<Vec<_>>>()?;
    Some(CachedCurve {
        lo: v.get("lo")?.as_f64()?,
        hi: v.get("hi")?.as_f64()?,
        curve: Arc::new(ExactCurve {
            segments,
            exact: v.get("exact")?.as_bool()?,
            // Build-cost counters are observability, not content: a
            // recovered curve cost nothing to rebuild.
            stats: CurveStats::default(),
        }),
    })
}

// ---------------------------------------------------------------
// The store
// ---------------------------------------------------------------

/// One instance as recovered from disk.
pub struct StoredEntry {
    /// The instance, with every persisted analysis cache pre-filled.
    pub inst: PreparedInstance,
    /// The model its key was derived under.
    pub model: EnergyModel,
    /// The retained exact curve, if one was persisted.
    pub curve: Option<CachedCurve>,
}

/// The disk-backed content-addressed store (see the module docs).
pub struct Store {
    dir: PathBuf,
    fsync: bool,
    /// Patch lineage index: child key → (parent key, edit batch). The
    /// first recorded parent of a child wins (re-recording the same
    /// patch is a no-op), so replay is deterministic.
    lineage: Mutex<HashMap<u128, (u128, Vec<GraphEdit>)>>,
    /// Byte size of each live instance file, for the `stats` block.
    sizes: Mutex<HashMap<u128, u64>>,
    /// Serializes lineage-log appends.
    log: Mutex<()>,
    recovered: AtomicU64,
    corrupt_skipped: AtomicU64,
    replays: AtomicU64,
    /// Uniquifies temp-file names across racing writers.
    tmp_seq: AtomicU64,
}

impl Store {
    /// Open (creating if needed) the store at `dir` and run the
    /// recovery scan: validate every instance file's record, rebuild
    /// the lineage index from the log, skip (and account) damage, and
    /// rewrite the log canonically when damage was found — after
    /// `open` returns, a second `open` of the same directory performs
    /// byte-identical recovery with zero skips.
    pub fn open(dir: impl Into<PathBuf>, fsync: bool) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("instances"))?;
        let store = Store {
            dir,
            fsync,
            lineage: Mutex::new(HashMap::new()),
            sizes: Mutex::new(HashMap::new()),
            log: Mutex::new(()),
            recovered: AtomicU64::new(0),
            corrupt_skipped: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        };
        store.scan_instances()?;
        store.scan_lineage()?;
        Ok(store)
    }

    fn instances_dir(&self) -> PathBuf {
        self.dir.join("instances")
    }

    fn instance_path(&self, key: u128) -> PathBuf {
        self.instances_dir()
            .join(format!("{}.inst", key_to_hex(key)))
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("lineage.log")
    }

    /// Validate every instance file (framing + checksum); corrupt
    /// files are deleted after being accounted in `corrupt_skipped`.
    /// Files are visited in sorted name order so recovery is
    /// deterministic.
    fn scan_instances(&self) -> io::Result<()> {
        let mut names: Vec<PathBuf> = fs::read_dir(self.instances_dir())?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        names.sort();
        let mut sizes = self.sizes.lock().expect("store lock poisoned");
        for path in names {
            let Some(key) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".inst"))
                .and_then(key_from_hex)
            else {
                // Leftover temp file from a crash mid-write: the
                // rename never happened, so no key ever pointed here.
                // Not a record loss — remove without accounting.
                let _ = fs::remove_file(&path);
                continue;
            };
            let data = fs::read(&path)?;
            let mut pos = 0;
            match parse_record(&data, &mut pos) {
                Ok(Some(_)) if pos == data.len() => {
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                    sizes.insert(key, data.len() as u64);
                }
                _ => {
                    self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                    fs::remove_file(&path)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuild the lineage index from the log, skipping damaged
    /// records; rewrite the log canonically iff anything was skipped.
    fn scan_lineage(&self) -> io::Result<()> {
        let data = match fs::read(self.log_path()) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut pos = 0;
        let mut valid: Vec<String> = Vec::new();
        let mut damaged = false;
        loop {
            match parse_record(&data, &mut pos) {
                Ok(Some(payload)) => valid.push(payload),
                Ok(None) => break,
                Err(RecordDamage::Corrupt) => {
                    damaged = true;
                    self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                }
                Err(RecordDamage::Torn) => {
                    damaged = true;
                    self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let mut index = self.lineage.lock().expect("store lock poisoned");
        let mut kept: Vec<&String> = Vec::new();
        for payload in &valid {
            let Some((parent, edits, child)) = decode_lineage_payload(payload) else {
                // Checksum-valid but semantically unreadable: account
                // it like any other damaged record.
                damaged = true;
                self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            // First recorded parent wins (mirrors record_patch).
            if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(child) {
                slot.insert((parent, edits));
                kept.push(payload);
            } else {
                kept.push(payload);
            }
        }
        drop(index);
        if damaged {
            // Canonical rewrite: the surviving records, re-encoded, via
            // temp + rename — a second recovery run sees a clean log.
            let mut out = String::new();
            for payload in kept {
                out.push_str(&encode_record(payload));
            }
            self.write_atomic(&self.log_path(), out.as_bytes())?;
        }
        Ok(())
    }

    /// Write `bytes` to `path` atomically (temp file in the same
    /// directory, then rename), honoring the fsync policy.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{seq}"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            if self.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, path)?;
        if self.fsync {
            if let Some(parent) = path.parent() {
                if let Ok(d) = fs::File::open(parent) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Whether `key` has an instance file on disk.
    pub fn contains(&self, key: u128) -> bool {
        self.sizes
            .lock()
            .expect("store lock poisoned")
            .contains_key(&key)
    }

    /// Spill one instance (and optionally its retained curve) to disk
    /// under its content key. Content-addressed writes are idempotent;
    /// re-saving an existing key refreshes the persisted analyses and
    /// curve (e.g. a curve computed after the first spill).
    pub fn save(
        &self,
        key: u128,
        model: &EnergyModel,
        inst: &PreparedInstance,
        curve: Option<&CachedCurve>,
    ) -> io::Result<()> {
        let mut pairs = vec![
            ("key".into(), Json::str(key_to_hex(key))),
            ("model".into(), model_to_json(model)),
            ("graph".into(), graph_to_json(inst.graph())),
            ("analysis".into(), snapshot_to_json(&inst.snapshot())),
        ];
        if let Some(c) = curve {
            pairs.push(("curve".into(), curve_to_json(c)));
        }
        let record = encode_record(&Json::Obj(pairs).encode());
        self.write_atomic(&self.instance_path(key), record.as_bytes())?;
        self.sizes
            .lock()
            .expect("store lock poisoned")
            .insert(key, record.len() as u64);
        Ok(())
    }

    /// Load the instance stored under `key`, if any. A damaged or
    /// inconsistent file (bad record, or content that no longer hashes
    /// to `key`) is accounted in `corrupt_skipped`, removed, and
    /// reported as absent — never a panic, never a silent wrong
    /// answer.
    pub fn load(&self, key: u128) -> Option<StoredEntry> {
        let path = self.instance_path(key);
        let data = fs::read(&path).ok()?;
        let mut pos = 0;
        let payload = match parse_record(&data, &mut pos) {
            Ok(Some(p)) if pos == data.len() => p,
            _ => {
                self.discard_damaged(key, &path);
                return None;
            }
        };
        let Some(entry) = decode_instance_payload(&payload, key) else {
            self.discard_damaged(key, &path);
            return None;
        };
        Some(entry)
    }

    fn discard_damaged(&self, key: u128, path: &Path) {
        self.corrupt_skipped.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
        self.sizes.lock().expect("store lock poisoned").remove(&key);
    }

    /// Record one applied patch in the lineage log: `parent` was
    /// edited with `edits` to produce `child`. The first recorded
    /// parent of a child wins; re-recording is a no-op (idempotent
    /// under repeated identical patch traffic).
    pub fn record_patch(&self, parent: u128, edits: &[GraphEdit], child: u128) -> io::Result<()> {
        if parent == child {
            return Ok(()); // an identity patch carries no history
        }
        {
            let mut index = self.lineage.lock().expect("store lock poisoned");
            match index.entry(child) {
                std::collections::hash_map::Entry::Occupied(_) => return Ok(()),
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((parent, edits.to_vec()));
                }
            }
        }
        let payload = Json::Obj(vec![
            ("parent".into(), Json::str(key_to_hex(parent))),
            (
                "edits".into(),
                Json::Arr(edits.iter().map(edit_to_json).collect()),
            ),
            ("child".into(), Json::str(key_to_hex(child))),
        ])
        .encode();
        let record = encode_record(&payload);
        let _guard = self.log.lock().expect("store lock poisoned");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.log_path())?;
        f.write_all(record.as_bytes())?;
        if self.fsync {
            f.sync_all()?;
        }
        Ok(())
    }

    /// The recorded parent of `key`, with the edit batch that
    /// produced `key` from it.
    pub fn parent_of(&self, key: u128) -> Option<(u128, Vec<GraphEdit>)> {
        self.lineage
            .lock()
            .expect("store lock poisoned")
            .get(&key)
            .cloned()
    }

    /// Walk `depth` recorded patches up from `key`. `Some(key)` at
    /// depth 0; `None` when the chain is shorter than `depth`.
    pub fn ancestor_at(&self, key: u128, depth: u64) -> Option<u128> {
        let index = self.lineage.lock().expect("store lock poisoned");
        let mut cur = key;
        for _ in 0..depth {
            cur = index.get(&cur)?.0;
        }
        Some(cur)
    }

    /// The full recorded lineage of `key`, oldest hop first (the shape
    /// of the v5 `lineage` response). Empty when nothing was recorded.
    pub fn lineage_of(&self, key: u128) -> Vec<LineageHop> {
        let index = self.lineage.lock().expect("store lock poisoned");
        let mut hops = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = key;
        while seen.insert(cur) {
            let Some((parent, edits)) = index.get(&cur) else {
                break;
            };
            hops.push(LineageHop {
                parent: *parent,
                edits: edits.clone(),
                child: cur,
            });
            cur = *parent;
        }
        hops.reverse();
        hops
    }

    /// Materialize the instance stored under `key`: directly from its
    /// file when present, otherwise by loading the nearest stored
    /// ancestor and replaying the recorded edit chain forward —
    /// O(edits), one `replays` bump per hop. The result is verified to
    /// hash back to `key` before being returned (a lineage chain that
    /// no longer reproduces its child reads as absent, not wrong).
    pub fn materialize(&self, key: u128) -> Option<StoredEntry> {
        if let Some(entry) = self.load(key) {
            return Some(entry);
        }
        // Walk up to the nearest stored ancestor, collecting the edit
        // batches needed to come back down.
        let mut batches: Vec<Vec<GraphEdit>> = Vec::new();
        let mut seen = HashSet::new();
        let mut cur = key;
        loop {
            if !seen.insert(cur) {
                return None; // cycle in a damaged lineage index
            }
            let (parent, edits) = self.parent_of(cur)?;
            batches.push(edits);
            if let Some(base) = self.load(parent) {
                let mut inst = base.inst;
                for batch in batches.iter().rev() {
                    inst = inst.apply(batch).ok()?;
                    self.replays.fetch_add(1, Ordering::Relaxed);
                }
                inst.warm();
                if content_key(inst.graph(), &base.model) != key {
                    return None;
                }
                return Some(StoredEntry {
                    inst,
                    model: base.model,
                    // Curves never survive edits (weight-dependent).
                    curve: None,
                });
            }
            cur = parent;
        }
    }

    /// Current counters, in the shape of the v5 `stats` store block.
    pub fn stats(&self) -> StoreStatsReport {
        let sizes = self.sizes.lock().expect("store lock poisoned");
        StoreStatsReport {
            entries: sizes.len() as u64,
            bytes: sizes.values().sum(),
            recovered: self.recovered.load(Ordering::Relaxed),
            corrupt_skipped: self.corrupt_skipped.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
        }
    }
}

fn decode_lineage_payload(payload: &str) -> Option<(u128, Vec<GraphEdit>, u128)> {
    let v = json::parse(payload).ok()?;
    let key = |name: &str| v.get(name).and_then(Json::as_str).and_then(key_from_hex);
    let edits: Vec<GraphEdit> = v
        .get("edits")?
        .as_arr()?
        .iter()
        .map(|e| edit_from_json(e).ok())
        .collect::<Option<_>>()?;
    Some((key("parent")?, edits, key("child")?))
}

fn decode_instance_payload(payload: &str, want_key: u128) -> Option<StoredEntry> {
    let v = json::parse(payload).ok()?;
    let key = v.get("key").and_then(Json::as_str).and_then(key_from_hex)?;
    if key != want_key {
        return None;
    }
    let model = model_from_json(v.get("model")?).ok()?;
    let graph = graph_from_json(v.get("graph")?).ok()?;
    // The content-addressing invariant: the payload must still hash to
    // the key it is filed under.
    if content_key(&graph, &model) != want_key {
        return None;
    }
    let snap = v
        .get("analysis")
        .map(snapshot_from_json)
        .unwrap_or(AnalysisSnapshot {
            topo: None,
            class: None,
            cp_weight: None,
            reduced_edges: None,
        });
    let inst = PreparedInstance::restore(Arc::new(graph), &snap);
    let curve = v.get("curve").and_then(curve_from_json);
    Some(StoredEntry { inst, model, curve })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::instance_key;
    use taskgraph::generators;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reclaim-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn inst(seed: f64) -> (PreparedInstance, EnergyModel, u128) {
        let g = generators::diamond([1.0, 2.0, 3.0, seed]);
        let m = EnergyModel::continuous_unbounded();
        let key = instance_key(&g, &m);
        let inst = PreparedInstance::new(Arc::new(g));
        inst.warm();
        (inst, m, key)
    }

    #[test]
    fn record_grammar_round_trips_and_flags_damage() {
        let payload = r#"{"k":"v"}"#;
        let rec = encode_record(payload);
        let bytes = rec.as_bytes();
        let mut pos = 0;
        assert_eq!(
            parse_record(bytes, &mut pos).unwrap().as_deref(),
            Some(payload)
        );
        assert_eq!(pos, bytes.len());
        // A flip in the payload region is Corrupt (skippable)…
        let mut flipped = bytes.to_vec();
        let payload_at = rec.len() - payload.len() - 1;
        flipped[payload_at] ^= 0x01;
        let mut pos = 0;
        assert_eq!(parse_record(&flipped, &mut pos), Err(RecordDamage::Corrupt));
        assert_eq!(pos, bytes.len(), "corrupt records are stepped over");
        // …while truncation is Torn (scan stops).
        for cut in 0..bytes.len() - 1 {
            let mut pos = 0;
            match parse_record(&bytes[..=cut], &mut pos) {
                Err(_) => {}
                ok => panic!("prefix of {} bytes parsed as {ok:?}", cut + 1),
            }
        }
    }

    #[test]
    fn save_load_round_trips_instance_and_curve() {
        let dir = tmpdir("roundtrip");
        let store = Store::open(&dir, false).unwrap();
        let (i, m, key) = inst(4.0);
        store.save(key, &m, &i, None).unwrap();
        assert!(store.contains(key));
        let loaded = store.load(key).unwrap();
        assert_eq!(loaded.inst.graph(), i.graph());
        assert_eq!(loaded.inst.snapshot(), i.snapshot());
        assert!(loaded.curve.is_none());
        // Re-save with a curve: the entry refreshes in place.
        let curve = CachedCurve {
            lo: 1.05,
            hi: 4.0,
            curve: Arc::new(ExactCurve {
                segments: vec![reclaim_core::CurveSegment {
                    deadline_lo: 2.0,
                    deadline_hi: 8.0,
                    energy: reclaim_core::CurveEnergy::Power { c: 96.0, p: 2.0 },
                }],
                exact: true,
                stats: CurveStats::default(),
            }),
        };
        store.save(key, &m, &i, Some(&curve)).unwrap();
        let loaded = store.load(key).unwrap();
        let got = loaded.curve.expect("curve persisted");
        assert_eq!((got.lo, got.hi), (1.05, 4.0));
        assert_eq!(got.curve.segments, curve.curve.segments);
        assert_eq!(store.stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_and_is_deterministic() {
        let dir = tmpdir("reopen");
        {
            let store = Store::open(&dir, false).unwrap();
            let (i, m, key) = inst(4.0);
            store.save(key, &m, &i, None).unwrap();
            let (i2, _, key2) = inst(5.0);
            store.save(key2, &m, &i2, None).unwrap();
        }
        let store = Store::open(&dir, false).unwrap();
        let s = store.stats();
        assert_eq!(s.recovered, 2);
        assert_eq!(s.entries, 2);
        assert_eq!(s.corrupt_skipped, 0);
        let (_, m, key) = inst(4.0);
        let loaded = store.load(key).unwrap();
        assert_eq!(instance_key(loaded.inst.graph(), &m), key);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lineage_replay_materializes_missing_children() {
        let dir = tmpdir("lineage");
        let store = Store::open(&dir, false).unwrap();
        let (i, m, k0) = inst(4.0);
        store.save(k0, &m, &i, None).unwrap();
        // Two patches recorded, but only the ROOT instance stored —
        // the children must re-materialize by replay.
        let e1 = vec![GraphEdit::SetWeight {
            task: 1,
            weight: 5.0,
        }];
        let p1 = i.apply(&e1).unwrap();
        let k1 = instance_key(p1.graph(), &m);
        store.record_patch(k0, &e1, k1).unwrap();
        let e2 = vec![GraphEdit::RemoveEdge { from: 0, to: 2 }];
        let p2 = p1.apply(&e2).unwrap();
        let k2 = instance_key(p2.graph(), &m);
        store.record_patch(k1, &e2, k2).unwrap();

        let got = store.materialize(k2).expect("replay succeeds");
        assert_eq!(got.inst.graph(), p2.graph());
        assert_eq!(store.stats().replays, 2);

        let hops = store.lineage_of(k2);
        assert_eq!(hops.len(), 2);
        assert_eq!((hops[0].parent, hops[0].child), (k0, k1));
        assert_eq!((hops[1].parent, hops[1].child), (k1, k2));
        assert_eq!(hops[0].edits, e1);
        assert_eq!(store.ancestor_at(k2, 2), Some(k0));
        assert_eq!(store.ancestor_at(k2, 3), None);

        // The lineage survives a reopen.
        drop(store);
        let store = Store::open(&dir, false).unwrap();
        assert_eq!(store.lineage_of(k2).len(), 2);
        assert!(store.materialize(k1).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_is_skipped_and_rewritten_canonically() {
        let dir = tmpdir("tail");
        let (i, m, k0) = inst(4.0);
        let e1 = vec![GraphEdit::SetWeight {
            task: 1,
            weight: 5.0,
        }];
        let k1 = instance_key(i.apply(&e1).unwrap().graph(), &m);
        {
            let store = Store::open(&dir, false).unwrap();
            store.save(k0, &m, &i, None).unwrap();
            store.record_patch(k0, &e1, k1).unwrap();
        }
        // Tear the log mid-record, as a crash during append would.
        let log = dir.join("lineage.log");
        let mut bytes = fs::read(&log).unwrap();
        let keep = bytes.len() / 2;
        bytes.truncate(keep);
        // Append a second, torn copy after the (intact) first record?
        // No — the first record itself is torn now; the scan must
        // account it and produce an empty canonical log.
        fs::write(&log, &bytes).unwrap();
        let store = Store::open(&dir, false).unwrap();
        assert_eq!(store.stats().corrupt_skipped, 1);
        assert!(store.lineage_of(k1).is_empty());
        drop(store);
        // Second recovery run: clean, and byte-identical log.
        let first = fs::read(&log).unwrap();
        let store = Store::open(&dir, false).unwrap();
        assert_eq!(store.stats().corrupt_skipped, 0);
        assert_eq!(fs::read(&log).unwrap(), first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_instance_file_reads_as_accounted_absence() {
        let dir = tmpdir("damage");
        let store = Store::open(&dir, false).unwrap();
        let (i, m, key) = inst(4.0);
        store.save(key, &m, &i, None).unwrap();
        let path = dir
            .join("instances")
            .join(format!("{}.inst", key_to_hex(key)));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(key).is_none(), "damage is not served");
        assert_eq!(store.stats().corrupt_skipped, 1);
        assert!(!path.exists(), "damaged file removed after accounting");
        assert!(!store.contains(key));
        let _ = fs::remove_dir_all(&dir);
    }
}
