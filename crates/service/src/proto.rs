//! The `reclaimd` wire protocol: length-prefixed JSON lines,
//! versioned request/response envelopes, and the structured error
//! mapping from [`SolveError`] / [`lp::LpError`].
//!
//! # Framing
//!
//! One message = one frame:
//!
//! ```text
//! <decimal byte length of payload> '\n' <payload JSON, one line> '\n'
//! ```
//!
//! The payload is compact JSON (no interior newlines). Frames above
//! [`MAX_FRAME`] bytes are rejected before allocation; a stream that
//! ends mid-frame is a [`FrameError::Truncated`], while a stream that
//! ends cleanly *between* frames reads as end-of-session.
//!
//! # Envelopes and versions
//!
//! Every request carries `"v"` (the protocol version), an optional
//! client-chosen `"id"` (echoed verbatim in the response so pipelined
//! requests can be matched even when the worker pool completes them
//! out of order), and a `"type"` tag. Responses carry `"ok"` plus
//! either a typed `"result"` or an `"error"` object.
//!
//! This build speaks versions **1 through 5** ([`MIN_PROTOCOL_VERSION`]
//! ..= [`PROTOCOL_VERSION`]). Negotiation is per request: the server
//! accepts any version in that range, answers with the version the
//! request used, and rejects anything else with an
//! [`ErrorKind::Protocol`] error naming the supported range. The only
//! v2 request is `patch`; the only v3 feature is the `"exact": true`
//! flag on `energy_curve` (closed-form segments instead of samples);
//! v4 adds the `corpus` request (a sharded job bundle solved through
//! the daemon cache) and the optional `"timeout_ms"` envelope field
//! (a queue-time bound answered with [`ErrorKind::Timeout`]); v5 adds
//! the `lineage` query and the optional `"as_of"` envelope field
//! (time travel: answer `solve`/`energy_curve` against the instance as
//! it stood `as_of` patches ago, re-materialized from the disk store's
//! lineage log) — sending any of them under an older `"v"` is a
//! protocol error, so an old-only intermediary never sees
//! half-understood traffic.
//!
//! A worked request/response pair (docs/PROTOCOL.md walks the same
//! exchange byte by byte):
//!
//! ```text
//! → {"v":1,"id":7,"type":"solve","graph":{"weights":[2,4],"edges":[[0,1]]},
//!    "model":{"kind":"continuous"},"deadline":3}
//! ← {"v":1,"id":7,"ok":true,"type":"solve","result":{"energy":24,...}}
//! ```
//!
//! and the v2 `patch` — edits against a cached instance named by its
//! content key, instead of resending the graph:
//!
//! ```text
//! → {"v":2,"id":8,"type":"patch","base":"0x36bd06bca277317937d02054da46d064",
//!    "edits":[{"op":"set_weight","task":1,"weight":3.5}],"deadline":3}
//! ← {"v":2,"id":8,"ok":true,"type":"patch","result":{"energy":27.8,…,
//!    "prep_ns":0,"key":"0x…","warm_lp":false}}
//! ```

use crate::json::{self, Json};
use models::{DiscreteModes, EnergyModel, IncrementalModes};
use reclaim_core::SolveError;
use std::fmt;
use std::io::{self, Read, Write};
use taskgraph::edit::GraphEdit;
use taskgraph::TaskGraph;

/// The newest protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 5;

/// The oldest protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Hard cap on one frame's payload, in bytes.
pub const MAX_FRAME: usize = 64 << 20;

// ---------------------------------------------------------------
// Framing
// ---------------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The declared length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The stream ended mid-frame, or the header/terminator was not
    /// where the length said it would be.
    Truncated(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            FrameError::Truncated(what) => write!(f, "truncated frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame as a single transport write (three small writes
/// would interact badly with Nagle's algorithm on TCP endpoints).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    debug_assert!(!payload.contains('\n'), "payload must be one line");
    let mut buf = Vec::with_capacity(payload.len() + 24);
    buf.extend_from_slice(format!("{}\n", payload.len()).as_bytes());
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the stream cleanly
/// at a frame boundary; ending anywhere else is [`FrameError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    // Length header: decimal digits up to '\n'.
    let mut header = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if header.is_empty() {
                    return Ok(None); // clean end-of-session
                }
                return Err(FrameError::Truncated("EOF inside length header".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if header.len() >= 20 {
                    return Err(FrameError::Truncated("length header too long".into()));
                }
                header.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len: usize = std::str::from_utf8(&header)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            FrameError::Truncated(format!(
                "bad length header {:?}",
                String::from_utf8_lossy(&header)
            ))
        })?;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload)
        .map_err(|_| FrameError::Truncated(format!("EOF inside {len}-byte payload")))?;
    if payload.pop() != Some(b'\n') {
        return Err(FrameError::Truncated("missing frame terminator".into()));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Truncated("payload is not UTF-8".into()))
}

/// An incremental frame decoder for nonblocking transports: bytes go
/// in as they arrive (in chunks of any size, split or coalesced at
/// arbitrary boundaries), complete frames come out. The event-driven
/// daemon keeps one per connection; [`FrameBuffer::next_frame`]
/// applies exactly the [`read_frame`] grammar — decimal length header
/// (at most 20 digits), `'\n'`, payload, `'\n'` — and reports the
/// same violations as [`FrameError`]s. A framing error is not
/// recoverable: the stream has no resynchronization point, so the
/// caller should answer once and drop the connection.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before `pos` are consumed; compacted opportunistically so
    /// a long-lived connection doesn't grow its buffer forever.
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes remain (a nonempty buffer at EOF
    /// means the peer died mid-frame).
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Extract the next complete frame, if the buffered bytes hold
    /// one. `Ok(None)` means "need more bytes"; errors mirror
    /// [`read_frame`] and poison the stream.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        let avail = &self.buf[self.pos..];
        // Length header: decimal digits up to '\n', at most 20 digits.
        let header_end = match avail.iter().take(21).position(|&b| b == b'\n') {
            Some(i) => i,
            None if avail.len() > 20 => {
                return Err(FrameError::Truncated("length header too long".into()))
            }
            None => return Ok(None),
        };
        let len: usize = std::str::from_utf8(&avail[..header_end])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                FrameError::Truncated(format!(
                    "bad length header {:?}",
                    String::from_utf8_lossy(&avail[..header_end])
                ))
            })?;
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        let body = header_end + 1;
        if avail.len() < body + len + 1 {
            return Ok(None);
        }
        if avail[body + len] != b'\n' {
            return Err(FrameError::Truncated("missing frame terminator".into()));
        }
        let payload = std::str::from_utf8(&avail[body..body + len])
            .map_err(|_| FrameError::Truncated("payload is not UTF-8".into()))?
            .to_string();
        self.pos += body + len + 1;
        if self.pos == self.buf.len() || self.pos >= 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------
// Errors
// ---------------------------------------------------------------

/// Structured error categories on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The instance admits no schedule meeting the deadline
    /// ([`SolveError::Infeasible`] — carries `deadline`/`min_makespan`).
    Infeasible,
    /// A numerical substrate failed ([`SolveError::Numerical`], or any
    /// [`lp::LpError`] that is not an infeasibility).
    Numerical,
    /// The model/graph/parameter combination is not supported
    /// ([`SolveError::Unsupported`]).
    Unsupported,
    /// An exact search exhausted its node budget with no incumbent in
    /// hand ([`SolveError::BudgetExhausted`]); the solve produced
    /// nothing usable but the instance is not known infeasible.
    BudgetExhausted,
    /// The request decoded as JSON but its content is invalid
    /// (unknown type, malformed graph, bad field).
    BadRequest,
    /// A `patch` request named a `base` content key the daemon's cache
    /// does not hold (never cached, or since evicted). The client
    /// should fall back to sending the full edited instance.
    UnknownBase,
    /// The envelope itself is unusable: not JSON, wrong version,
    /// framing violation.
    Protocol,
    /// **v4.** The request's `timeout_ms` budget elapsed before a
    /// worker reached it (the daemon answers without solving). The
    /// work was *not* performed; retry, raise the bound, or shed load.
    Timeout,
}

impl ErrorKind {
    fn wire(self) -> &'static str {
        match self {
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Numerical => "numerical",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::BudgetExhausted => "budget_exhausted",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownBase => "unknown_base",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Timeout => "timeout",
        }
    }

    fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "infeasible" => ErrorKind::Infeasible,
            "numerical" => ErrorKind::Numerical,
            "unsupported" => ErrorKind::Unsupported,
            "budget_exhausted" => ErrorKind::BudgetExhausted,
            "bad_request" => ErrorKind::BadRequest,
            "unknown_base" => ErrorKind::UnknownBase,
            "protocol" => ErrorKind::Protocol,
            "timeout" => ErrorKind::Timeout,
            _ => return None,
        })
    }
}

/// A structured wire error.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// The category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorKind::Infeasible`]: the requested deadline.
    pub deadline: Option<f64>,
    /// For [`ErrorKind::Infeasible`]: the minimum achievable makespan.
    pub min_makespan: Option<f64>,
}

impl ErrorBody {
    /// A plain error with no infeasibility numbers.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            kind,
            message: message.into(),
            deadline: None,
            min_makespan: None,
        }
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.wire(), self.message)
    }
}

impl From<&SolveError> for ErrorBody {
    fn from(e: &SolveError) -> ErrorBody {
        match e {
            SolveError::Infeasible {
                deadline,
                min_makespan,
            } => ErrorBody {
                kind: ErrorKind::Infeasible,
                message: e.to_string(),
                deadline: Some(*deadline),
                min_makespan: Some(*min_makespan),
            },
            SolveError::Numerical(_) => ErrorBody::new(ErrorKind::Numerical, e.to_string()),
            SolveError::Unsupported(_) => ErrorBody::new(ErrorKind::Unsupported, e.to_string()),
            SolveError::BudgetExhausted { .. } => {
                ErrorBody::new(ErrorKind::BudgetExhausted, e.to_string())
            }
        }
    }
}

impl From<&lp::LpError> for ErrorBody {
    fn from(e: &lp::LpError) -> ErrorBody {
        // LP infeasibility at this level means the *instance* is
        // infeasible only when the caller says so; as a raw substrate
        // failure it is reported in the numerical category with the
        // variant name preserved in the message.
        ErrorBody::new(ErrorKind::Numerical, format!("LP substrate: {e}"))
    }
}

// ---------------------------------------------------------------
// Requests
// ---------------------------------------------------------------

/// One request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve one instance.
    Solve {
        /// The execution graph.
        graph: TaskGraph,
        /// The energy model.
        model: EnergyModel,
        /// The deadline `D`.
        deadline: f64,
    },
    /// Solve one graph at many deadlines (shares one preparation).
    SolveDeadlines {
        /// The execution graph.
        graph: TaskGraph,
        /// The energy model.
        model: EnergyModel,
        /// The deadlines, solved in order.
        deadlines: Vec<f64>,
    },
    /// Sample the energy–deadline curve (see `Engine::energy_curve`),
    /// or — with `exact` set, **v3** — return it as closed-form
    /// segments (`Engine::energy_curve_exact`): the daemon keeps the
    /// computed ray with the cached instance, so repeat exact-curve
    /// requests are near-free.
    EnergyCurve {
        /// The execution graph.
        graph: TaskGraph,
        /// The energy model.
        model: EnergyModel,
        /// Number of geometrically spaced sample points (≥ 2).
        /// Ignored when `exact` is set (the breakpoint walk picks its
        /// own resolution).
        points: usize,
        /// Low deadline factor.
        lo: f64,
        /// High deadline factor.
        hi: f64,
        /// Request exact closed-form segments instead of samples
        /// (protocol v3).
        exact: bool,
    },
    /// Solve many `(graph, deadline)` jobs under one model.
    Batch {
        /// The shared energy model.
        model: EnergyModel,
        /// The jobs, answered in order.
        jobs: Vec<(TaskGraph, f64)>,
    },
    /// **v2.** Edit an instance the daemon already holds: apply
    /// `edits` to the cached instance whose content key is `base` and
    /// solve the result, re-keying the cache entry in place. The
    /// client never resends the graph; on a weight-only batch the
    /// daemon also skips every structural re-analysis *and* (for
    /// Vdd-Hopping) the cold LP.
    Patch {
        /// Content key of the cached base instance
        /// ([`reclaim_core::engine::content_key`]).
        base: u128,
        /// The edit batch, applied in order.
        edits: Vec<GraphEdit>,
        /// The deadline to solve the edited instance at.
        deadline: f64,
    },
    /// **v4.** Solve a sharded corpus bundle through the daemon's
    /// content-addressed cache: jobs are partitioned by
    /// `content_key mod shards` (the same pure-content discipline as
    /// the local [`crate::corpus::run_corpus`]), solved shard by
    /// shard, and answered as one [`Response::Corpus`] whose manifests
    /// are byte-identical to a local run — but instances the daemon
    /// has seen before skip preparation entirely.
    Corpus {
        /// Shard count (clamped to ≥ 1).
        shards: usize,
        /// The corpus jobs.
        jobs: Vec<crate::corpus::CorpusJob>,
    },
    /// **v5.** Read the patch lineage of a stored instance: the chain
    /// of `(parent_key, edits, child_key)` records leading from the
    /// oldest stored ancestor down to `key`. Requires a daemon running
    /// with `--store`.
    Lineage {
        /// Content key of the instance whose history is wanted.
        key: u128,
    },
    /// Read cache and worker counters.
    Stats,
    /// Stop accepting connections and exit once drained.
    Shutdown,
}

impl Request {
    /// The lowest protocol version that can carry this request.
    pub fn min_version(&self) -> u64 {
        match self {
            Request::Patch { .. } => 2,
            Request::EnergyCurve { exact: true, .. } => 3,
            Request::Corpus { .. } => 4,
            Request::Lineage { .. } => 5,
            _ => MIN_PROTOCOL_VERSION,
        }
    }
}

/// A request plus its envelope metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// The protocol version of this exchange (the response echoes it).
    pub version: u64,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// **v4.** Optional queue-time bound, in milliseconds: if the
    /// request waits longer than this before a worker picks it up, the
    /// daemon answers [`ErrorKind::Timeout`] without solving.
    pub timeout_ms: Option<u64>,
    /// **v5.** Optional time-travel depth: answer a `solve` or
    /// `energy_curve` against the instance as it stood this many
    /// patches ago, re-materialized in O(edits) from the disk store's
    /// lineage log. `Some(0)` means "current" (same as `None`); any
    /// other request type rejects the field with
    /// [`ErrorKind::BadRequest`].
    pub as_of: Option<u64>,
    /// The request body.
    pub request: Request,
}

impl RequestEnvelope {
    /// An envelope at the lowest version able to carry `request` —
    /// what the bundled client sends, so v1 servers keep understanding
    /// everything but `patch`.
    pub fn new(id: u64, request: Request) -> RequestEnvelope {
        RequestEnvelope {
            version: request.min_version(),
            id,
            timeout_ms: None,
            as_of: None,
            request,
        }
    }

    /// Attach a v4 queue-time bound (bumping the envelope to v4 —
    /// the field does not exist in older versions). `None` leaves the
    /// envelope untouched.
    pub fn with_timeout_ms(mut self, timeout_ms: Option<u64>) -> RequestEnvelope {
        if timeout_ms.is_some() {
            self.timeout_ms = timeout_ms;
            self.version = self.version.max(4);
        }
        self
    }

    /// Attach a v5 time-travel depth (bumping the envelope to v5 —
    /// the field does not exist in older versions). `None` and
    /// `Some(0)` leave the envelope untouched: depth 0 is the current
    /// instance, which every version already answers.
    pub fn with_as_of(mut self, as_of: Option<u64>) -> RequestEnvelope {
        if let Some(depth) = as_of {
            if depth > 0 {
                self.as_of = Some(depth);
                self.version = self.version.max(5);
            }
        }
        self
    }
}

/// Render a content key the way the wire carries it (128 bits exceed
/// JSON's interoperable integer range, so keys travel as fixed-width
/// hex strings).
pub fn key_to_hex(key: u128) -> String {
    format!("0x{key:032x}")
}

/// Parse a [`key_to_hex`]-formatted content key (the `0x` prefix is
/// optional, case is ignored).
pub fn key_from_hex(s: &str) -> Option<u128> {
    let digits = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u128::from_str_radix(digits, 16).ok()
}

pub(crate) fn graph_to_json(g: &TaskGraph) -> Json {
    Json::Obj(vec![
        (
            "weights".into(),
            Json::Arr(g.weights().iter().map(|&w| Json::num(w)).collect()),
        ),
        (
            "edges".into(),
            Json::Arr(
                g.edges()
                    .iter()
                    .map(|&(u, v)| {
                        Json::Arr(vec![
                            Json::num(u.index() as f64),
                            Json::num(v.index() as f64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn model_to_json(m: &EnergyModel) -> Json {
    let speeds = |m: &DiscreteModes| Json::Arr(m.speeds().iter().map(|&s| Json::num(s)).collect());
    Json::Obj(match m {
        EnergyModel::Continuous { s_max: None } => {
            vec![("kind".into(), Json::str("continuous"))]
        }
        EnergyModel::Continuous { s_max: Some(s) } => vec![
            ("kind".into(), Json::str("continuous")),
            ("s_max".into(), Json::num(*s)),
        ],
        EnergyModel::Discrete(m) => vec![
            ("kind".into(), Json::str("discrete")),
            ("speeds".into(), speeds(m)),
        ],
        EnergyModel::VddHopping(m) => vec![
            ("kind".into(), Json::str("vdd")),
            ("speeds".into(), speeds(m)),
        ],
        EnergyModel::Incremental(m) => vec![
            ("kind".into(), Json::str("incremental")),
            ("s_min".into(), Json::num(m.s_min())),
            ("s_max".into(), Json::num(m.s_max())),
            ("delta".into(), Json::num(m.delta())),
        ],
    })
}

pub(crate) fn bad(msg: impl Into<String>) -> ErrorBody {
    ErrorBody::new(ErrorKind::BadRequest, msg)
}

pub(crate) fn edit_to_json(e: &GraphEdit) -> Json {
    let ids = |v: &[usize]| Json::Arr(v.iter().map(|&i| Json::num(i as f64)).collect());
    Json::Obj(match e {
        GraphEdit::SetWeight { task, weight } => vec![
            ("op".into(), Json::str("set_weight")),
            ("task".into(), Json::num(*task as f64)),
            ("weight".into(), Json::num(*weight)),
        ],
        GraphEdit::InsertEdge { from, to } => vec![
            ("op".into(), Json::str("insert_edge")),
            ("from".into(), Json::num(*from as f64)),
            ("to".into(), Json::num(*to as f64)),
        ],
        GraphEdit::RemoveEdge { from, to } => vec![
            ("op".into(), Json::str("remove_edge")),
            ("from".into(), Json::num(*from as f64)),
            ("to".into(), Json::num(*to as f64)),
        ],
        GraphEdit::AddTask {
            weight,
            preds,
            succs,
        } => vec![
            ("op".into(), Json::str("add_task")),
            ("weight".into(), Json::num(*weight)),
            ("preds".into(), ids(preds)),
            ("succs".into(), ids(succs)),
        ],
        GraphEdit::RemoveTask { task } => vec![
            ("op".into(), Json::str("remove_task")),
            ("task".into(), Json::num(*task as f64)),
        ],
    })
}

pub(crate) fn edit_from_json(v: &Json) -> Result<GraphEdit, ErrorBody> {
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("edit needs an \"op\""))?;
    let task_field = |name: &str| -> Result<usize, ErrorBody> {
        v.get(name)
            .and_then(Json::as_u64)
            .map(|t| t as usize)
            .ok_or_else(|| bad(format!("edit {op:?} needs integer \"{name}\"")))
    };
    let weight_field = || -> Result<f64, ErrorBody> {
        v.get("weight")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("edit {op:?} needs numeric \"weight\"")))
    };
    let id_list = |name: &str| -> Result<Vec<usize>, ErrorBody> {
        v.get(name)
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("edit {op:?} needs a \"{name}\" array")))?
            .iter()
            .map(|i| {
                i.as_u64()
                    .map(|i| i as usize)
                    .ok_or_else(|| bad(format!("\"{name}\" entries must be task ids")))
            })
            .collect()
    };
    Ok(match op {
        "set_weight" => GraphEdit::SetWeight {
            task: task_field("task")?,
            weight: weight_field()?,
        },
        "insert_edge" => GraphEdit::InsertEdge {
            from: task_field("from")?,
            to: task_field("to")?,
        },
        "remove_edge" => GraphEdit::RemoveEdge {
            from: task_field("from")?,
            to: task_field("to")?,
        },
        "add_task" => GraphEdit::AddTask {
            weight: weight_field()?,
            preds: id_list("preds")?,
            succs: id_list("succs")?,
        },
        "remove_task" => GraphEdit::RemoveTask {
            task: task_field("task")?,
        },
        other => return Err(bad(format!("unknown edit op {other:?}"))),
    })
}

pub(crate) fn graph_from_json(v: &Json) -> Result<TaskGraph, ErrorBody> {
    let weights: Vec<f64> = v
        .get("weights")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("graph needs a \"weights\" array"))?
        .iter()
        .map(|w| w.as_f64().ok_or_else(|| bad("weights must be numbers")))
        .collect::<Result<_, _>>()?;
    let edges: Vec<(usize, usize)> = v
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("graph needs an \"edges\" array"))?
        .iter()
        .map(|e| {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let (u, v) = match pair {
                Some([u, v]) => (u.as_u64(), v.as_u64()),
                _ => (None, None),
            };
            match (u, v) {
                (Some(u), Some(v)) => Ok((u as usize, v as usize)),
                _ => Err(bad("each edge must be a [u, v] pair of task ids")),
            }
        })
        .collect::<Result<_, _>>()?;
    TaskGraph::new(weights, &edges).map_err(|e| bad(format!("invalid graph: {e}")))
}

pub(crate) fn model_from_json(v: &Json) -> Result<EnergyModel, ErrorBody> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("model needs a \"kind\""))?;
    let speeds = || -> Result<Vec<f64>, ErrorBody> {
        v.get("speeds")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("model needs a \"speeds\" array"))?
            .iter()
            .map(|s| s.as_f64().ok_or_else(|| bad("speeds must be numbers")))
            .collect()
    };
    let field = |name: &str| -> Result<f64, ErrorBody> {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("model needs numeric \"{name}\"")))
    };
    match kind {
        "continuous" => match v.get("s_max") {
            None => Ok(EnergyModel::continuous_unbounded()),
            Some(s) => {
                let s = s.as_f64().filter(|s| *s > 0.0);
                s.map(EnergyModel::continuous)
                    .ok_or_else(|| bad("\"s_max\" must be a positive number"))
            }
        },
        "discrete" | "vdd" => {
            let modes = DiscreteModes::new(&speeds()?)
                .map_err(|e| bad(format!("invalid mode ladder: {e}")))?;
            Ok(if kind == "discrete" {
                EnergyModel::Discrete(modes)
            } else {
                EnergyModel::VddHopping(modes)
            })
        }
        "incremental" => {
            let modes = IncrementalModes::new(field("s_min")?, field("s_max")?, field("delta")?)
                .map_err(|e| bad(format!("invalid incremental grid: {e}")))?;
            Ok(EnergyModel::Incremental(modes))
        }
        other => Err(bad(format!("unknown model kind {other:?}"))),
    }
}

impl RequestEnvelope {
    /// Encode to the one-line JSON payload (framing is separate).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("v".into(), Json::num(self.version as f64)),
            ("id".into(), Json::num(self.id as f64)),
        ];
        if let Some(t) = self.timeout_ms {
            // Omitted when unset so v1–v3 wire bytes are unchanged.
            pairs.push(("timeout_ms".into(), Json::num(t as f64)));
        }
        if let Some(d) = self.as_of {
            // Omitted when unset so v1–v4 wire bytes are unchanged.
            pairs.push(("as_of".into(), Json::num(d as f64)));
        }
        match &self.request {
            Request::Solve {
                graph,
                model,
                deadline,
            } => {
                pairs.push(("type".into(), Json::str("solve")));
                pairs.push(("graph".into(), graph_to_json(graph)));
                pairs.push(("model".into(), model_to_json(model)));
                pairs.push(("deadline".into(), Json::num(*deadline)));
            }
            Request::SolveDeadlines {
                graph,
                model,
                deadlines,
            } => {
                pairs.push(("type".into(), Json::str("solve_deadlines")));
                pairs.push(("graph".into(), graph_to_json(graph)));
                pairs.push(("model".into(), model_to_json(model)));
                pairs.push((
                    "deadlines".into(),
                    Json::Arr(deadlines.iter().map(|&d| Json::num(d)).collect()),
                ));
            }
            Request::EnergyCurve {
                graph,
                model,
                points,
                lo,
                hi,
                exact,
            } => {
                pairs.push(("type".into(), Json::str("energy_curve")));
                pairs.push(("graph".into(), graph_to_json(graph)));
                pairs.push(("model".into(), model_to_json(model)));
                pairs.push(("points".into(), Json::num(*points as f64)));
                pairs.push(("lo".into(), Json::num(*lo)));
                pairs.push(("hi".into(), Json::num(*hi)));
                if *exact {
                    // Omitted when false so v1/v2 wire bytes are
                    // unchanged.
                    pairs.push(("exact".into(), Json::Bool(true)));
                }
            }
            Request::Batch { model, jobs } => {
                pairs.push(("type".into(), Json::str("batch")));
                pairs.push(("model".into(), model_to_json(model)));
                pairs.push((
                    "jobs".into(),
                    Json::Arr(
                        jobs.iter()
                            .map(|(g, d)| {
                                Json::Obj(vec![
                                    ("graph".into(), graph_to_json(g)),
                                    ("deadline".into(), Json::num(*d)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Request::Patch {
                base,
                edits,
                deadline,
            } => {
                pairs.push(("type".into(), Json::str("patch")));
                pairs.push(("base".into(), Json::str(key_to_hex(*base))));
                pairs.push((
                    "edits".into(),
                    Json::Arr(edits.iter().map(edit_to_json).collect()),
                ));
                pairs.push(("deadline".into(), Json::num(*deadline)));
            }
            Request::Corpus { shards, jobs } => {
                pairs.push(("type".into(), Json::str("corpus")));
                pairs.push(("shards".into(), Json::num(*shards as f64)));
                pairs.push((
                    "jobs".into(),
                    Json::Arr(
                        jobs.iter()
                            .map(|j| {
                                Json::Obj(vec![
                                    ("name".into(), Json::str(j.name.clone())),
                                    ("graph".into(), graph_to_json(&j.graph)),
                                    ("model".into(), model_to_json(&j.model)),
                                    ("deadline".into(), Json::num(j.deadline)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Request::Lineage { key } => {
                pairs.push(("type".into(), Json::str("lineage")));
                pairs.push(("key".into(), Json::str(key_to_hex(*key))));
            }
            Request::Stats => pairs.push(("type".into(), Json::str("stats"))),
            Request::Shutdown => pairs.push(("type".into(), Json::str("shutdown"))),
        }
        Json::Obj(pairs).encode()
    }

    /// Decode a payload. Version/JSON failures come back as
    /// [`ErrorKind::Protocol`], content failures as
    /// [`ErrorKind::BadRequest`].
    pub fn decode(payload: &str) -> Result<RequestEnvelope, ErrorBody> {
        let v =
            json::parse(payload).map_err(|e| ErrorBody::new(ErrorKind::Protocol, e.to_string()))?;
        let version = v.get("v").and_then(Json::as_u64);
        let version = match version {
            Some(n) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&n) => n,
            Some(n) => {
                return Err(ErrorBody::new(
                    ErrorKind::Protocol,
                    format!(
                        "unsupported protocol version {n} (this build speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    ),
                ))
            }
            None => {
                return Err(ErrorBody::new(
                    ErrorKind::Protocol,
                    "missing protocol version \"v\"",
                ))
            }
        };
        let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        let typ = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing request \"type\""))?;
        let num = |name: &str| -> Result<f64, ErrorBody> {
            v.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("missing numeric \"{name}\"")))
        };
        let graph = || -> Result<TaskGraph, ErrorBody> {
            graph_from_json(v.get("graph").ok_or_else(|| bad("missing \"graph\""))?)
        };
        let model = || -> Result<EnergyModel, ErrorBody> {
            model_from_json(v.get("model").ok_or_else(|| bad("missing \"model\""))?)
        };
        let request = match typ {
            "solve" => Request::Solve {
                graph: graph()?,
                model: model()?,
                deadline: num("deadline")?,
            },
            "solve_deadlines" => Request::SolveDeadlines {
                graph: graph()?,
                model: model()?,
                deadlines: v
                    .get("deadlines")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"deadlines\" array"))?
                    .iter()
                    .map(|d| d.as_f64().ok_or_else(|| bad("deadlines must be numbers")))
                    .collect::<Result<_, _>>()?,
            },
            "energy_curve" => Request::EnergyCurve {
                graph: graph()?,
                model: model()?,
                points: v
                    .get("points")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing integer \"points\""))?
                    as usize,
                lo: num("lo")?,
                hi: num("hi")?,
                exact: v.get("exact").and_then(Json::as_bool).unwrap_or(false),
            },
            "batch" => Request::Batch {
                model: model()?,
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"jobs\" array"))?
                    .iter()
                    .map(|j| {
                        let g = graph_from_json(
                            j.get("graph").ok_or_else(|| bad("job missing \"graph\""))?,
                        )?;
                        let d = j
                            .get("deadline")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("job missing \"deadline\""))?;
                        Ok((g, d))
                    })
                    .collect::<Result<_, ErrorBody>>()?,
            },
            "patch" => Request::Patch {
                base: v
                    .get("base")
                    .and_then(Json::as_str)
                    .and_then(key_from_hex)
                    .ok_or_else(|| bad("missing or malformed \"base\" content key"))?,
                edits: v
                    .get("edits")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"edits\" array"))?
                    .iter()
                    .map(edit_from_json)
                    .collect::<Result<_, _>>()?,
                deadline: num("deadline")?,
            },
            "corpus" => Request::Corpus {
                shards: v
                    .get("shards")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing integer \"shards\""))?
                    as usize,
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"jobs\" array"))?
                    .iter()
                    .map(|j| {
                        Ok(crate::corpus::CorpusJob {
                            name: j
                                .get("name")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("corpus job missing \"name\""))?
                                .to_string(),
                            graph: graph_from_json(
                                j.get("graph").ok_or_else(|| bad("job missing \"graph\""))?,
                            )?,
                            model: model_from_json(
                                j.get("model").ok_or_else(|| bad("job missing \"model\""))?,
                            )?,
                            deadline: j
                                .get("deadline")
                                .and_then(Json::as_f64)
                                .ok_or_else(|| bad("job missing \"deadline\""))?,
                        })
                    })
                    .collect::<Result<_, ErrorBody>>()?,
            },
            "lineage" => Request::Lineage {
                key: v
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(key_from_hex)
                    .ok_or_else(|| bad("missing or malformed \"key\" content key"))?,
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => return Err(bad(format!("unknown request type {other:?}"))),
        };
        if version < request.min_version() {
            return Err(ErrorBody::new(
                ErrorKind::Protocol,
                format!(
                    "request type {typ:?} requires protocol version \
                     {} (request used {version})",
                    request.min_version()
                ),
            ));
        }
        let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64);
        if timeout_ms.is_some() && version < 4 {
            return Err(ErrorBody::new(
                ErrorKind::Protocol,
                format!("\"timeout_ms\" requires protocol version 4 (request used {version})"),
            ));
        }
        let as_of = v.get("as_of").and_then(Json::as_u64);
        if as_of.is_some() && version < 5 {
            return Err(ErrorBody::new(
                ErrorKind::Protocol,
                format!("\"as_of\" requires protocol version 5 (request used {version})"),
            ));
        }
        Ok(RequestEnvelope {
            version,
            id,
            timeout_ms,
            as_of,
            request,
        })
    }
}

// ---------------------------------------------------------------
// Responses
// ---------------------------------------------------------------

/// The result of one solve, as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Optimal (or model-approximated) energy.
    pub energy: f64,
    /// Which registry algorithm produced it.
    pub algorithm: String,
    /// Makespan of the returned schedule.
    pub makespan: f64,
    /// Nanoseconds spent solving — preparation excluded.
    pub solve_ns: u64,
    /// Nanoseconds spent preparing the graph analysis; `0` on a cache
    /// hit (the point of the content-addressed cache).
    pub prep_ns: u64,
    /// Whether the prepared instance came from the cache.
    pub cached: bool,
    /// Index of the worker that served the request.
    pub worker: u64,
}

/// An exact energy–deadline curve, as reported on the wire (v3).
#[derive(Debug, Clone, PartialEq)]
pub struct CurveExactReport {
    /// Contiguous closed-form segments in increasing deadline order
    /// ([`reclaim_core::CurveSegment`]).
    pub segments: Vec<reclaim_core::CurveSegment>,
    /// Whether every segment is an exact closed form (Vdd, unbounded
    /// Continuous) as opposed to adaptively refined interpolation.
    pub exact: bool,
    /// Whether the daemon served the curve from the cached instance's
    /// retained ray (a repeat request — near-free).
    pub cached_curve: bool,
}

/// The result of one `patch`, as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchReport {
    /// The solve of the edited instance. `prep_ns` is `0` when every
    /// structural analysis was carried over (weight-only batches);
    /// otherwise it is the time spent re-warming what the edits
    /// dropped. `cached` reports whether the *base* was a cache hit
    /// (always true — a miss is an [`ErrorKind::UnknownBase`] error).
    pub report: SolveReport,
    /// Content key of the edited instance — the `base` for the next
    /// patch in a chain.
    pub key: u128,
    /// Whether the Vdd-Hopping solve reused the retained LP basis
    /// (`vdd-lp-warm`) instead of a cold two-phase run.
    pub warm_lp: bool,
}

/// Cache counters, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheStatsReport {
    /// Live entries.
    pub entries: u64,
    /// Estimated resident bytes of live entries.
    pub bytes: u64,
    /// Lookup hits since start (plain requests resolving to a cached
    /// instance — patch traffic is counted separately below).
    pub hits: u64,
    /// Lookup misses since start.
    pub misses: u64,
    /// Evictions since start.
    pub evictions: u64,
    /// `patch` requests whose base key was held (served in place).
    pub patch_hits: u64,
    /// `patch` requests whose base key was absent
    /// ([`ErrorKind::UnknownBase`] answers).
    pub patch_misses: u64,
    /// In-place re-keys: patched entries that replaced their base
    /// entry under the edited content key.
    pub rekeys: u64,
}

/// One worker's counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerStatsReport {
    /// Requests served.
    pub requests: u64,
    /// Individual solves performed (a batch counts each job).
    pub solves: u64,
    /// Total nanoseconds in `Engine::solve`-family calls.
    pub solve_ns: u64,
    /// Warm-start states (Vdd LP bases) this worker lost to cold
    /// retries ([`reclaim_core::engine::profiling`]): non-zero means
    /// sweeps or patches silently paid for cold re-solves.
    pub warm_lost: u64,
    /// Branch-and-bound nodes expanded by exact Discrete/Incremental
    /// solves (parallel subtree workers fold into the issuing
    /// worker's total).
    pub bnb_nodes: u64,
    /// Parallel-search subtree pickups beyond each worker's first —
    /// how much the atomic work-queue rebalanced past the static
    /// split.
    pub bnb_steals: u64,
    /// Subtrees cancelled mid-search by a portfolio race's stop flag.
    pub bnb_cancelled: u64,
    /// Structural patches whose SP decomposition was locally spliced
    /// instead of re-recognized ([`taskgraph::profiling`]).
    pub sp_splice: u64,
    /// Splice attempts that failed and fell back to lazy full
    /// recognition: non-zero means structural patches paid cold
    /// re-analyses.
    pub sp_splice_miss: u64,
    /// Total tasks visited by cone-bounded cache repairs (topo-order
    /// shifts, completion-time relaxations, reduction repairs, SP
    /// splices) — how local the locality actually was.
    pub cone_nodes: u64,
}

/// One edge of a patch lineage chain (v5): `parent` was patched with
/// `edits` to produce `child`.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageHop {
    /// Content key of the pre-patch instance.
    pub parent: u128,
    /// The edit batch that was applied.
    pub edits: Vec<GraphEdit>,
    /// Content key of the post-patch instance.
    pub child: u128,
}

/// Answer to a v5 [`Request::Lineage`]: the recorded patch history of
/// one instance, oldest hop first.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageReport {
    /// The queried content key.
    pub key: u128,
    /// Number of recorded hops above `key` (== `hops.len()`).
    pub depth: u64,
    /// The chain from the oldest recorded ancestor down to `key`.
    pub hops: Vec<LineageHop>,
}

/// Disk-store counters (v5; daemons without `--store`, and older
/// daemons, report zeros).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreStatsReport {
    /// Instance entries on disk.
    pub entries: u64,
    /// Total bytes of instance entries on disk.
    pub bytes: u64,
    /// Valid instance records recovered by the boot scan.
    pub recovered: u64,
    /// Corrupt or torn records skipped (boot scan plus later loads) —
    /// every damaged record is accounted here, never lost silently.
    pub corrupt_skipped: u64,
    /// Lineage replay steps performed to materialize historical
    /// versions (`as_of` traffic).
    pub replays: u64,
}

/// Event-loop admission counters (v4; older daemons report zeros).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetStatsReport {
    /// Currently open connections.
    pub connections: u64,
    /// Admitted requests sitting in the worker queue right now.
    pub queue_depth: u64,
    /// Admitted requests not yet answered (queued + solving +
    /// completion not yet written back).
    pub inflight: u64,
    /// Connections refused at accept because `--max-connections` was
    /// reached.
    pub rejected: u64,
    /// Requests answered with [`ErrorKind::Timeout`] because their
    /// `timeout_ms` budget elapsed in the queue.
    pub timeouts: u64,
}

/// The `stats` response body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Cache counters.
    pub cache: CacheStatsReport,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStatsReport>,
    /// Event-loop admission counters (v4).
    pub net: NetStatsReport,
    /// Disk-store counters (v5; zeros without `--store`).
    pub store: StoreStatsReport,
}

/// One response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Solve`].
    Solve(SolveReport),
    /// Answer to [`Request::SolveDeadlines`]: one entry per deadline,
    /// in request order.
    Deadlines(Vec<Result<SolveReport, ErrorBody>>),
    /// Answer to [`Request::EnergyCurve`]: `(deadline, energy)`
    /// samples (infeasible points are skipped, as in the engine).
    Curve(Vec<(f64, f64)>),
    /// Answer to a v3 [`Request::EnergyCurve`] with `exact` set:
    /// closed-form segments.
    CurveExact(CurveExactReport),
    /// Answer to [`Request::Batch`]: one entry per job, in order.
    Batch(Vec<Result<SolveReport, ErrorBody>>),
    /// Answer to [`Request::Patch`] (v2).
    Patch(PatchReport),
    /// Answer to [`Request::Corpus`] (v4): one outcome per shard, in
    /// shard order, manifest-compatible with a local corpus run.
    Corpus(Vec<crate::corpus::ShardOutcome>),
    /// Answer to [`Request::Lineage`] (v5).
    Lineage(LineageReport),
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to [`Request::Shutdown`].
    Shutdown,
    /// The request failed as a whole.
    Error(ErrorBody),
}

/// A response plus its envelope metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The protocol version, echoing the request's.
    pub version: u64,
    /// The correlation id echoed from the request.
    pub id: u64,
    /// The response body.
    pub response: Response,
}

fn report_to_json(r: &SolveReport) -> Json {
    Json::Obj(vec![
        ("energy".into(), Json::num(r.energy)),
        ("algorithm".into(), Json::str(r.algorithm.clone())),
        ("makespan".into(), Json::num(r.makespan)),
        ("solve_ns".into(), Json::num(r.solve_ns as f64)),
        ("prep_ns".into(), Json::num(r.prep_ns as f64)),
        ("cached".into(), Json::Bool(r.cached)),
        ("worker".into(), Json::num(r.worker as f64)),
    ])
}

fn report_from_json(v: &Json) -> Result<SolveReport, ErrorBody> {
    let f = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("solve report missing \"{name}\"")))
    };
    let u = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("solve report missing \"{name}\"")))
    };
    Ok(SolveReport {
        energy: f("energy")?,
        algorithm: v
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("solve report missing \"algorithm\""))?
            .to_string(),
        makespan: f("makespan")?,
        solve_ns: u("solve_ns")?,
        prep_ns: u("prep_ns")?,
        cached: v
            .get("cached")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("solve report missing \"cached\""))?,
        worker: u("worker")?,
    })
}

pub(crate) fn segment_to_json(s: &reclaim_core::CurveSegment) -> Json {
    use reclaim_core::CurveEnergy;
    let mut pairs = vec![
        ("lo".into(), Json::num(s.deadline_lo)),
        ("hi".into(), Json::num(s.deadline_hi)),
    ];
    match s.energy {
        CurveEnergy::Affine { a, b } => {
            pairs.push(("form".into(), Json::str("affine")));
            pairs.push(("a".into(), Json::num(a)));
            pairs.push(("b".into(), Json::num(b)));
        }
        CurveEnergy::Power { c, p } => {
            pairs.push(("form".into(), Json::str("power")));
            pairs.push(("c".into(), Json::num(c)));
            pairs.push(("p".into(), Json::num(p)));
        }
    }
    Json::Obj(pairs)
}

pub(crate) fn segment_from_json(v: &Json) -> Result<reclaim_core::CurveSegment, ErrorBody> {
    use reclaim_core::CurveEnergy;
    let f = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("curve segment missing \"{name}\"")))
    };
    let energy = match v.get("form").and_then(Json::as_str) {
        Some("affine") => CurveEnergy::Affine {
            a: f("a")?,
            b: f("b")?,
        },
        Some("power") => CurveEnergy::Power {
            c: f("c")?,
            p: f("p")?,
        },
        other => return Err(bad(format!("unknown segment form {other:?}"))),
    };
    Ok(reclaim_core::CurveSegment {
        deadline_lo: f("lo")?,
        deadline_hi: f("hi")?,
        energy,
    })
}

fn curve_exact_to_json(c: &CurveExactReport) -> Json {
    Json::Obj(vec![
        ("exact".into(), Json::Bool(c.exact)),
        ("cached_curve".into(), Json::Bool(c.cached_curve)),
        (
            "segments".into(),
            Json::Arr(c.segments.iter().map(segment_to_json).collect()),
        ),
    ])
}

fn curve_exact_from_json(v: &Json) -> Result<CurveExactReport, ErrorBody> {
    Ok(CurveExactReport {
        segments: v
            .get("segments")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("exact curve missing \"segments\""))?
            .iter()
            .map(segment_from_json)
            .collect::<Result<_, _>>()?,
        exact: v
            .get("exact")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("exact curve missing \"exact\""))?,
        cached_curve: v
            .get("cached_curve")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

fn error_to_json(e: &ErrorBody) -> Json {
    let mut pairs = vec![
        ("kind".into(), Json::str(e.kind.wire())),
        ("message".into(), Json::str(e.message.clone())),
    ];
    if let Some(d) = e.deadline {
        pairs.push(("deadline".into(), Json::num(d)));
    }
    if let Some(m) = e.min_makespan {
        pairs.push(("min_makespan".into(), Json::num(m)));
    }
    Json::Obj(pairs)
}

fn error_from_json(v: &Json) -> Result<ErrorBody, ErrorBody> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .and_then(ErrorKind::from_wire)
        .ok_or_else(|| bad("error body missing a known \"kind\""))?;
    Ok(ErrorBody {
        kind,
        message: v
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        deadline: v.get("deadline").and_then(Json::as_f64),
        min_makespan: v.get("min_makespan").and_then(Json::as_f64),
    })
}

fn item_to_json(item: &Result<SolveReport, ErrorBody>) -> Json {
    match item {
        Ok(r) => {
            let mut pairs = vec![("ok".into(), Json::Bool(true))];
            pairs.push(("result".into(), report_to_json(r)));
            Json::Obj(pairs)
        }
        Err(e) => Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            ("error".into(), error_to_json(e)),
        ]),
    }
}

fn item_from_json(v: &Json) -> Result<Result<SolveReport, ErrorBody>, ErrorBody> {
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(Ok(report_from_json(
            v.get("result").ok_or_else(|| bad("item missing result"))?,
        )?)),
        Some(false) => Ok(Err(error_from_json(
            v.get("error").ok_or_else(|| bad("item missing error"))?,
        )?)),
        None => Err(bad("item missing \"ok\"")),
    }
}

fn shard_to_json(o: &crate::corpus::ShardOutcome) -> Json {
    let entries = o
        .entries
        .iter()
        .map(|e| {
            let mut pairs = vec![
                ("file".into(), Json::str(e.name.clone())),
                ("key".into(), Json::str(key_to_hex(e.key))),
                ("tasks".into(), Json::num(e.tasks as f64)),
                ("deadline".into(), Json::num(e.deadline)),
                ("model".into(), Json::str(e.model.clone())),
            ];
            match &e.result {
                Ok((energy, algorithm)) => {
                    pairs.push(("energy".into(), Json::num(*energy)));
                    pairs.push(("algorithm".into(), Json::str(algorithm.clone())));
                }
                Err(err) => pairs.push(("error".into(), error_to_json(err))),
            }
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("shard".into(), Json::num(o.shard as f64)),
        ("shards".into(), Json::num(o.shards as f64)),
        ("elapsed_ns".into(), Json::num(o.elapsed_ns as f64)),
        ("entries".into(), Json::Arr(entries)),
    ])
}

fn shard_from_json(v: &Json) -> Result<crate::corpus::ShardOutcome, ErrorBody> {
    let u = |name: &str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("corpus shard missing \"{name}\"")))
    };
    Ok(crate::corpus::ShardOutcome {
        shard: u("shard")? as usize,
        shards: u("shards")? as usize,
        // Wall-clock survives the wire at f64 resolution — plenty for
        // a throughput figure, and `Json::as_u64` would reject totals
        // past 2^53 ns (~104 days) anyway.
        elapsed_ns: v
            .get("elapsed_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("corpus shard missing \"elapsed_ns\""))? as u128,
        entries: v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("corpus shard missing \"entries\""))?
            .iter()
            .map(|e| {
                let result = match e.get("error") {
                    Some(err) => Err(error_from_json(err)?),
                    None => Ok((
                        e.get("energy")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| bad("corpus entry missing \"energy\""))?,
                        e.get("algorithm")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("corpus entry missing \"algorithm\""))?
                            .to_string(),
                    )),
                };
                Ok(crate::corpus::CorpusEntry {
                    name: e
                        .get("file")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("corpus entry missing \"file\""))?
                        .to_string(),
                    key: e
                        .get("key")
                        .and_then(Json::as_str)
                        .and_then(key_from_hex)
                        .ok_or_else(|| bad("corpus entry missing \"key\""))?,
                    tasks: e
                        .get("tasks")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("corpus entry missing \"tasks\""))?
                        as usize,
                    deadline: e
                        .get("deadline")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("corpus entry missing \"deadline\""))?,
                    model: e
                        .get("model")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("corpus entry missing \"model\""))?
                        .to_string(),
                    result,
                })
            })
            .collect::<Result<_, ErrorBody>>()?,
    })
}

fn lineage_to_json(l: &LineageReport) -> Json {
    Json::Obj(vec![
        ("key".into(), Json::str(key_to_hex(l.key))),
        ("depth".into(), Json::num(l.depth as f64)),
        (
            "hops".into(),
            Json::Arr(
                l.hops
                    .iter()
                    .map(|h| {
                        Json::Obj(vec![
                            ("parent".into(), Json::str(key_to_hex(h.parent))),
                            (
                                "edits".into(),
                                Json::Arr(h.edits.iter().map(edit_to_json).collect()),
                            ),
                            ("child".into(), Json::str(key_to_hex(h.child))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn lineage_from_json(v: &Json) -> Result<LineageReport, ErrorBody> {
    let key_field = |v: &Json, name: &str| {
        v.get(name)
            .and_then(Json::as_str)
            .and_then(key_from_hex)
            .ok_or_else(|| bad(format!("lineage missing \"{name}\"")))
    };
    Ok(LineageReport {
        key: key_field(v, "key")?,
        depth: v
            .get("depth")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("lineage missing \"depth\""))?,
        hops: v
            .get("hops")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("lineage missing \"hops\""))?
            .iter()
            .map(|h| {
                Ok(LineageHop {
                    parent: key_field(h, "parent")?,
                    edits: h
                        .get("edits")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| bad("lineage hop missing \"edits\""))?
                        .iter()
                        .map(edit_from_json)
                        .collect::<Result<_, _>>()?,
                    child: key_field(h, "child")?,
                })
            })
            .collect::<Result<_, ErrorBody>>()?,
    })
}

impl ResponseEnvelope {
    /// Encode to the one-line JSON payload (framing is separate).
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("v".into(), Json::num(self.version as f64)),
            ("id".into(), Json::num(self.id as f64)),
        ];
        match &self.response {
            Response::Error(e) => {
                pairs.push(("ok".into(), Json::Bool(false)));
                pairs.push(("error".into(), error_to_json(e)));
            }
            ok => {
                pairs.push(("ok".into(), Json::Bool(true)));
                let (typ, result) = match ok {
                    Response::Solve(r) => ("solve", report_to_json(r)),
                    Response::Deadlines(items) => (
                        "solve_deadlines",
                        Json::Arr(items.iter().map(item_to_json).collect()),
                    ),
                    Response::Curve(points) => (
                        "energy_curve",
                        Json::Arr(
                            points
                                .iter()
                                .map(|&(d, e)| {
                                    Json::Obj(vec![
                                        ("deadline".into(), Json::num(d)),
                                        ("energy".into(), Json::num(e)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    Response::CurveExact(c) => ("energy_curve", curve_exact_to_json(c)),
                    Response::Batch(items) => {
                        ("batch", Json::Arr(items.iter().map(item_to_json).collect()))
                    }
                    Response::Patch(p) => {
                        let report = report_to_json(&p.report);
                        let Json::Obj(mut fields) = report else {
                            unreachable!("solve reports encode as objects")
                        };
                        fields.push(("key".into(), Json::str(key_to_hex(p.key))));
                        fields.push(("warm_lp".into(), Json::Bool(p.warm_lp)));
                        ("patch", Json::Obj(fields))
                    }
                    Response::Corpus(shards) => (
                        "corpus",
                        Json::Arr(shards.iter().map(shard_to_json).collect()),
                    ),
                    Response::Lineage(l) => ("lineage", lineage_to_json(l)),
                    Response::Stats(s) => ("stats", stats_to_json(s)),
                    Response::Shutdown => (
                        "shutdown",
                        Json::Obj(vec![("stopping".into(), Json::Bool(true))]),
                    ),
                    Response::Error(_) => unreachable!("handled above"),
                };
                pairs.push(("type".into(), Json::str(typ)));
                pairs.push(("result".into(), result));
            }
        }
        Json::Obj(pairs).encode()
    }

    /// Decode a payload (the client side of [`Self::encode`]).
    pub fn decode(payload: &str) -> Result<ResponseEnvelope, ErrorBody> {
        let v =
            json::parse(payload).map_err(|e| ErrorBody::new(ErrorKind::Protocol, e.to_string()))?;
        let version = match v.get("v").and_then(Json::as_u64) {
            Some(n) if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&n) => n,
            _ => {
                return Err(ErrorBody::new(
                    ErrorKind::Protocol,
                    "missing or unsupported protocol version in response",
                ))
            }
        };
        let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
        let ok = v
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("response missing \"ok\""))?;
        if !ok {
            let e = error_from_json(v.get("error").ok_or_else(|| bad("missing \"error\""))?)?;
            return Ok(ResponseEnvelope {
                version,
                id,
                response: Response::Error(e),
            });
        }
        let typ = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("response missing \"type\""))?;
        let result = v
            .get("result")
            .ok_or_else(|| bad("response missing \"result\""))?;
        let response = match typ {
            "solve" => Response::Solve(report_from_json(result)?),
            "solve_deadlines" | "batch" => {
                let items = result
                    .as_arr()
                    .ok_or_else(|| bad("result must be an array"))?
                    .iter()
                    .map(item_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                if typ == "batch" {
                    Response::Batch(items)
                } else {
                    Response::Deadlines(items)
                }
            }
            // A sampled curve is an array of points; an exact curve is
            // an object carrying closed-form segments (v3).
            "energy_curve" if result.as_arr().is_none() => {
                Response::CurveExact(curve_exact_from_json(result)?)
            }
            "energy_curve" => Response::Curve(
                result
                    .as_arr()
                    .ok_or_else(|| bad("result must be an array"))?
                    .iter()
                    .map(|p| {
                        let d = p.get("deadline").and_then(Json::as_f64);
                        let e = p.get("energy").and_then(Json::as_f64);
                        match (d, e) {
                            (Some(d), Some(e)) => Ok((d, e)),
                            _ => Err(bad("curve point missing deadline/energy")),
                        }
                    })
                    .collect::<Result<_, _>>()?,
            ),
            "patch" => Response::Patch(PatchReport {
                report: report_from_json(result)?,
                key: result
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(key_from_hex)
                    .ok_or_else(|| bad("patch result missing \"key\""))?,
                warm_lp: result
                    .get("warm_lp")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("patch result missing \"warm_lp\""))?,
            }),
            "corpus" => Response::Corpus(
                result
                    .as_arr()
                    .ok_or_else(|| bad("result must be an array"))?
                    .iter()
                    .map(shard_from_json)
                    .collect::<Result<_, _>>()?,
            ),
            "lineage" => Response::Lineage(lineage_from_json(result)?),
            "stats" => Response::Stats(stats_from_json(result)?),
            "shutdown" => Response::Shutdown,
            other => return Err(bad(format!("unknown response type {other:?}"))),
        };
        Ok(ResponseEnvelope {
            version,
            id,
            response,
        })
    }
}

fn stats_to_json(s: &StatsReport) -> Json {
    Json::Obj(vec![
        (
            "cache".into(),
            Json::Obj(vec![
                ("entries".into(), Json::num(s.cache.entries as f64)),
                ("bytes".into(), Json::num(s.cache.bytes as f64)),
                ("hits".into(), Json::num(s.cache.hits as f64)),
                ("misses".into(), Json::num(s.cache.misses as f64)),
                ("evictions".into(), Json::num(s.cache.evictions as f64)),
                ("patch_hits".into(), Json::num(s.cache.patch_hits as f64)),
                (
                    "patch_misses".into(),
                    Json::num(s.cache.patch_misses as f64),
                ),
                ("rekeys".into(), Json::num(s.cache.rekeys as f64)),
            ]),
        ),
        (
            "workers".into(),
            Json::Arr(
                s.workers
                    .iter()
                    .map(|w| {
                        Json::Obj(vec![
                            ("requests".into(), Json::num(w.requests as f64)),
                            ("solves".into(), Json::num(w.solves as f64)),
                            ("solve_ns".into(), Json::num(w.solve_ns as f64)),
                            ("warm_lost".into(), Json::num(w.warm_lost as f64)),
                            ("bnb_nodes".into(), Json::num(w.bnb_nodes as f64)),
                            ("bnb_steals".into(), Json::num(w.bnb_steals as f64)),
                            ("bnb_cancelled".into(), Json::num(w.bnb_cancelled as f64)),
                            ("sp_splice".into(), Json::num(w.sp_splice as f64)),
                            ("sp_splice_miss".into(), Json::num(w.sp_splice_miss as f64)),
                            ("cone_nodes".into(), Json::num(w.cone_nodes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "net".into(),
            Json::Obj(vec![
                ("connections".into(), Json::num(s.net.connections as f64)),
                ("queue_depth".into(), Json::num(s.net.queue_depth as f64)),
                ("inflight".into(), Json::num(s.net.inflight as f64)),
                ("rejected".into(), Json::num(s.net.rejected as f64)),
                ("timeouts".into(), Json::num(s.net.timeouts as f64)),
            ]),
        ),
        (
            "store".into(),
            Json::Obj(vec![
                ("entries".into(), Json::num(s.store.entries as f64)),
                ("bytes".into(), Json::num(s.store.bytes as f64)),
                ("recovered".into(), Json::num(s.store.recovered as f64)),
                (
                    "corrupt_skipped".into(),
                    Json::num(s.store.corrupt_skipped as f64),
                ),
                ("replays".into(), Json::num(s.store.replays as f64)),
            ]),
        ),
    ])
}

fn stats_from_json(v: &Json) -> Result<StatsReport, ErrorBody> {
    let cache = v.get("cache").ok_or_else(|| bad("stats missing cache"))?;
    let cu = |name: &str| {
        cache
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("cache stats missing \"{name}\"")))
    };
    // The patch counters are absent from v1 daemons' stats; default
    // them to zero so a v2 client can read either.
    let cu0 = |name: &str| cache.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(StatsReport {
        cache: CacheStatsReport {
            entries: cu("entries")?,
            bytes: cu("bytes")?,
            hits: cu("hits")?,
            misses: cu("misses")?,
            evictions: cu("evictions")?,
            patch_hits: cu0("patch_hits"),
            patch_misses: cu0("patch_misses"),
            rekeys: cu0("rekeys"),
        },
        workers: v
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("stats missing workers"))?
            .iter()
            .map(|w| {
                let wu = |name: &str| {
                    w.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(format!("worker stats missing \"{name}\"")))
                };
                // Counters newer than a peer's protocol build decode
                // as zero rather than erroring.
                let wu0 = |name: &str| w.get(name).and_then(Json::as_u64).unwrap_or(0);
                Ok(WorkerStatsReport {
                    requests: wu("requests")?,
                    solves: wu("solves")?,
                    solve_ns: wu("solve_ns")?,
                    warm_lost: wu0("warm_lost"),
                    bnb_nodes: wu0("bnb_nodes"),
                    bnb_steals: wu0("bnb_steals"),
                    bnb_cancelled: wu0("bnb_cancelled"),
                    sp_splice: wu0("sp_splice"),
                    sp_splice_miss: wu0("sp_splice_miss"),
                    cone_nodes: wu0("cone_nodes"),
                })
            })
            .collect::<Result<_, ErrorBody>>()?,
        // Pre-v4 daemons report no "net" section: zeros, not errors.
        net: {
            let net = v.get("net");
            let nu = |name: &str| {
                net.and_then(|n| n.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            NetStatsReport {
                connections: nu("connections"),
                queue_depth: nu("queue_depth"),
                inflight: nu("inflight"),
                rejected: nu("rejected"),
                timeouts: nu("timeouts"),
            }
        },
        // Pre-v5 daemons report no "store" section: zeros, not errors.
        store: {
            let store = v.get("store");
            let su = |name: &str| {
                store
                    .and_then(|s| s.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            StoreStatsReport {
                entries: su("entries"),
                bytes: su("bytes"),
                recovered: su("recovered"),
                corrupt_skipped: su("corrupt_skipped"),
                replays: su("replays"),
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TaskGraph {
        TaskGraph::new(vec![2.0, 4.0, 1.0], &[(0, 1), (0, 2)]).unwrap()
    }

    #[test]
    fn request_encode_decode_identity() {
        let reqs = vec![
            Request::Solve {
                graph: graph(),
                model: EnergyModel::continuous(2.0),
                deadline: 8.0,
            },
            Request::SolveDeadlines {
                graph: graph(),
                model: EnergyModel::continuous_unbounded(),
                deadlines: vec![4.0, 5.5, 7.25],
            },
            Request::EnergyCurve {
                graph: graph(),
                model: EnergyModel::Discrete(DiscreteModes::new(&[1.0, 2.0]).unwrap()),
                points: 8,
                lo: 1.05,
                hi: 4.0,
                exact: false,
            },
            Request::EnergyCurve {
                graph: graph(),
                model: EnergyModel::VddHopping(DiscreteModes::new(&[1.0, 2.0]).unwrap()),
                points: 8,
                lo: 1.05,
                hi: 4.0,
                exact: true,
            },
            Request::Batch {
                model: EnergyModel::VddHopping(DiscreteModes::new(&[0.5, 1.5]).unwrap()),
                jobs: vec![(graph(), 6.0), (graph(), 9.0)],
            },
            Request::Patch {
                base: 0x36bd_06bc_a277_3179_37d0_2054_da46_d064,
                edits: vec![
                    GraphEdit::SetWeight {
                        task: 1,
                        weight: 3.5,
                    },
                    GraphEdit::InsertEdge { from: 0, to: 2 },
                    GraphEdit::RemoveEdge { from: 0, to: 1 },
                    GraphEdit::AddTask {
                        weight: 1.0,
                        preds: vec![0, 1],
                        succs: vec![2],
                    },
                    GraphEdit::RemoveTask { task: 2 },
                ],
                deadline: 7.5,
            },
            Request::Lineage {
                key: 0x36bd_06bc_a277_3179_37d0_2054_da46_d064,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, request) in reqs.into_iter().enumerate() {
            let env = RequestEnvelope::new(i as u64 + 1, request);
            let back = RequestEnvelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn envelope_version_tracks_request_needs() {
        // Plain requests ride v1 (older daemons keep understanding
        // them); patch needs v2.
        assert_eq!(RequestEnvelope::new(1, Request::Stats).version, 1);
        let patch = Request::Patch {
            base: 1,
            edits: vec![],
            deadline: 1.0,
        };
        assert_eq!(RequestEnvelope::new(1, patch.clone()).version, 2);
        // A patch forced into a v1 envelope is rejected at decode.
        let bogus = RequestEnvelope {
            version: 1,
            id: 1,
            timeout_ms: None,
            as_of: None,
            request: patch,
        };
        let e = RequestEnvelope::decode(&bogus.encode()).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("requires protocol version 2"), "{e}");
    }

    #[test]
    fn response_encode_decode_identity() {
        let report = SolveReport {
            energy: 24.5,
            algorithm: "continuous".into(),
            makespan: 7.75,
            solve_ns: 12_345,
            prep_ns: 0,
            cached: true,
            worker: 3,
        };
        let infeasible = ErrorBody {
            kind: ErrorKind::Infeasible,
            message: "too tight".into(),
            deadline: Some(1.0),
            min_makespan: Some(2.5),
        };
        let responses = vec![
            Response::Solve(report.clone()),
            Response::Deadlines(vec![Ok(report.clone()), Err(infeasible.clone())]),
            Response::Curve(vec![(4.0, 10.0), (8.0, 2.5)]),
            Response::CurveExact(CurveExactReport {
                segments: vec![
                    reclaim_core::CurveSegment {
                        deadline_lo: 2.0,
                        deadline_hi: 3.5,
                        energy: reclaim_core::CurveEnergy::Affine { a: 40.0, b: -8.0 },
                    },
                    reclaim_core::CurveSegment {
                        deadline_lo: 3.5,
                        deadline_hi: 8.0,
                        energy: reclaim_core::CurveEnergy::Power { c: 96.0, p: 2.0 },
                    },
                ],
                exact: true,
                cached_curve: true,
            }),
            Response::Patch(PatchReport {
                report: report.clone(),
                key: 0xdead_beef_0123_4567_89ab_cdef_0000_0001,
                warm_lp: true,
            }),
            Response::Batch(vec![Err(infeasible.clone()), Ok(report)]),
            Response::Stats(StatsReport {
                cache: CacheStatsReport {
                    entries: 2,
                    bytes: 4096,
                    hits: 10,
                    misses: 3,
                    evictions: 1,
                    patch_hits: 6,
                    patch_misses: 2,
                    rekeys: 5,
                },
                workers: vec![
                    WorkerStatsReport {
                        requests: 5,
                        solves: 9,
                        solve_ns: 777,
                        warm_lost: 2,
                        bnb_nodes: 123_456,
                        bnb_steals: 7,
                        bnb_cancelled: 3,
                        sp_splice: 11,
                        sp_splice_miss: 1,
                        cone_nodes: 42,
                    },
                    WorkerStatsReport::default(),
                ],
                net: NetStatsReport {
                    connections: 4,
                    queue_depth: 1,
                    inflight: 3,
                    rejected: 2,
                    timeouts: 1,
                },
                store: StoreStatsReport {
                    entries: 7,
                    bytes: 8192,
                    recovered: 6,
                    corrupt_skipped: 1,
                    replays: 4,
                },
            }),
            Response::Lineage(LineageReport {
                key: 0xdead_beef_0123_4567_89ab_cdef_0000_0002,
                depth: 1,
                hops: vec![LineageHop {
                    parent: 0xdead_beef_0123_4567_89ab_cdef_0000_0001,
                    edits: vec![GraphEdit::SetWeight {
                        task: 1,
                        weight: 3.5,
                    }],
                    child: 0xdead_beef_0123_4567_89ab_cdef_0000_0002,
                }],
            }),
            Response::Shutdown,
            Response::Error(infeasible),
        ];
        for (i, response) in responses.into_iter().enumerate() {
            let env = ResponseEnvelope {
                version: PROTOCOL_VERSION,
                id: i as u64,
                response,
            };
            let back = ResponseEnvelope::decode(&env.encode()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn unknown_version_rejected_known_range_accepted() {
        // All live versions decode…
        for v in [1, 2, 3, 4, 5] {
            let payload = format!(r#"{{"v":{v},"id":1,"type":"stats"}}"#);
            let env = RequestEnvelope::decode(&payload).unwrap();
            assert_eq!(env.version, v);
        }
        // …anything newer (or missing) is a protocol error.
        let payload = r#"{"v":6,"id":1,"type":"stats"}"#;
        let e = RequestEnvelope::decode(payload).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("version 6"), "{}", e.message);
        let none = r#"{"id":1,"type":"stats"}"#;
        assert_eq!(
            RequestEnvelope::decode(none).unwrap_err().kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn timeout_needs_v4_and_rides_the_envelope() {
        // Attaching a timeout bumps the envelope to v4, even on a
        // request type that itself rides v1.
        let env = RequestEnvelope::new(9, Request::Stats).with_timeout_ms(Some(250));
        assert_eq!(env.version, 4);
        let back = RequestEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back.timeout_ms, Some(250));
        assert_eq!(back, env);
        // `None` changes nothing — v1 bytes stay v1.
        let plain = RequestEnvelope::new(9, Request::Stats).with_timeout_ms(None);
        assert_eq!(plain.version, 1);
        assert!(!plain.encode().contains("timeout_ms"));
        // A timeout smuggled into an older envelope is rejected.
        let smuggled = r#"{"v":3,"id":1,"type":"stats","timeout_ms":250}"#;
        let e = RequestEnvelope::decode(smuggled).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("timeout_ms"), "{}", e.message);
    }

    #[test]
    fn as_of_needs_v5_and_rides_the_envelope() {
        // Attaching a time-travel depth bumps the envelope to v5, even
        // on a request type that itself rides v1.
        let solve = Request::Solve {
            graph: graph(),
            model: EnergyModel::continuous_unbounded(),
            deadline: 8.0,
        };
        let env = RequestEnvelope::new(9, solve.clone()).with_as_of(Some(2));
        assert_eq!(env.version, 5);
        let back = RequestEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back.as_of, Some(2));
        assert_eq!(back, env);
        // `None` and depth 0 change nothing — v1 bytes stay v1.
        for depth in [None, Some(0)] {
            let plain = RequestEnvelope::new(9, solve.clone()).with_as_of(depth);
            assert_eq!(plain.version, 1);
            assert!(!plain.encode().contains("as_of"));
        }
        // A depth smuggled into an older envelope is rejected.
        let smuggled = r#"{"v":4,"id":1,"type":"stats","as_of":2}"#;
        let e = RequestEnvelope::decode(smuggled).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("as_of"), "{}", e.message);
    }

    #[test]
    fn lineage_needs_v5() {
        let req = Request::Lineage { key: 0xabc };
        let env = RequestEnvelope::new(4, req);
        assert_eq!(env.version, 5, "lineage is a v5 request");
        assert_eq!(RequestEnvelope::decode(&env.encode()).unwrap(), env);
        // Forcing it into v4 is a protocol error.
        let mut bogus = env;
        bogus.version = 4;
        let e = RequestEnvelope::decode(&bogus.encode()).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("requires protocol version 5"), "{e}");
    }

    #[test]
    fn stats_store_block_defaults_to_zero_for_old_daemons() {
        // A v4 daemon's stats payload has no "store" section: a v5
        // client decodes it as zeros instead of erroring.
        let payload =
            r#"{"cache":{"entries":1,"bytes":64,"hits":2,"misses":1,"evictions":0},"workers":[]}"#;
        let v = json::parse(payload).unwrap();
        let s = stats_from_json(&v).unwrap();
        assert_eq!(s.store, StoreStatsReport::default());
    }

    #[test]
    fn corpus_request_and_response_round_trip_at_v4() {
        use crate::corpus::{CorpusEntry, CorpusJob, ShardOutcome};
        let req = Request::Corpus {
            shards: 2,
            jobs: vec![
                CorpusJob {
                    name: "a.inst".into(),
                    graph: graph(),
                    model: EnergyModel::continuous_unbounded(),
                    deadline: 6.0,
                },
                CorpusJob {
                    name: "b.inst".into(),
                    graph: graph(),
                    model: EnergyModel::VddHopping(DiscreteModes::new(&[1.0, 2.0]).unwrap()),
                    deadline: 4.5,
                },
            ],
        };
        let env = RequestEnvelope::new(3, req);
        assert_eq!(env.version, 4, "corpus is a v4 request");
        assert_eq!(RequestEnvelope::decode(&env.encode()).unwrap(), env);
        // Forcing it into v3 is a protocol error.
        let mut bogus = env.clone();
        bogus.version = 3;
        let e = RequestEnvelope::decode(&bogus.encode()).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);

        let resp = Response::Corpus(vec![
            ShardOutcome {
                shard: 0,
                shards: 2,
                entries: vec![CorpusEntry {
                    name: "a.inst".into(),
                    key: 0xabc,
                    tasks: 3,
                    deadline: 6.0,
                    model: "continuous".into(),
                    result: Ok((12.5, "continuous".into())),
                }],
                elapsed_ns: 1_234_567,
            },
            ShardOutcome {
                shard: 1,
                shards: 2,
                entries: vec![CorpusEntry {
                    name: "b.inst".into(),
                    key: 0xdef,
                    tasks: 3,
                    deadline: 4.5,
                    model: "vdd".into(),
                    result: Err(ErrorBody {
                        kind: ErrorKind::Infeasible,
                        message: "too tight".into(),
                        deadline: Some(4.5),
                        min_makespan: Some(5.0),
                    }),
                }],
                elapsed_ns: 0,
            },
        ]);
        let env = ResponseEnvelope {
            version: 4,
            id: 3,
            response: resp,
        };
        assert_eq!(ResponseEnvelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn frame_buffer_reassembles_arbitrary_chunking() {
        // Three frames, pushed one byte at a time: every frame comes
        // out intact, in order, regardless of chunk boundaries.
        let payloads = ["hello", r#"{"v":4}"#, ""];
        let mut wire = Vec::new();
        for p in payloads {
            write_frame(&mut wire, p).unwrap();
        }
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(1) {
            fb.push(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, payloads);
        assert!(fb.is_empty());

        // Coalesced in one push: same result.
        let mut fb = FrameBuffer::new();
        fb.push(&wire);
        for p in payloads {
            assert_eq!(fb.next_frame().unwrap().as_deref(), Some(p));
        }
        assert_eq!(fb.next_frame().unwrap(), None);

        // A violated grammar poisons the stream exactly like
        // `read_frame`: bad header, bad terminator, oversized length.
        let mut fb = FrameBuffer::new();
        fb.push(b"abc\nxyz\n");
        assert!(matches!(fb.next_frame(), Err(FrameError::Truncated(_))));
        let mut fb = FrameBuffer::new();
        fb.push(b"2\nhiX");
        assert!(matches!(fb.next_frame(), Err(FrameError::Truncated(_))));
        let mut fb = FrameBuffer::new();
        fb.push(format!("{}\n", MAX_FRAME + 1).as_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::TooLarge(_))));
        let mut fb = FrameBuffer::new();
        fb.push(b"999999999999999999999"); // 21 digits, no newline
        assert!(matches!(fb.next_frame(), Err(FrameError::Truncated(_))));
    }

    #[test]
    fn exact_curve_needs_v3_plain_curve_rides_v1() {
        let plain = Request::EnergyCurve {
            graph: graph(),
            model: EnergyModel::continuous_unbounded(),
            points: 8,
            lo: 1.05,
            hi: 4.0,
            exact: false,
        };
        assert_eq!(RequestEnvelope::new(1, plain.clone()).version, 1);
        // The false flag is omitted on the wire: v1 bytes unchanged.
        assert!(!RequestEnvelope::new(1, plain).encode().contains("exact"));
        let exact = Request::EnergyCurve {
            graph: graph(),
            model: EnergyModel::continuous_unbounded(),
            points: 8,
            lo: 1.05,
            hi: 4.0,
            exact: true,
        };
        assert_eq!(RequestEnvelope::new(1, exact.clone()).version, 3);
        // An exact request forced into an older envelope is rejected.
        let bogus = RequestEnvelope {
            version: 2,
            id: 1,
            timeout_ms: None,
            as_of: None,
            request: exact,
        };
        let e = RequestEnvelope::decode(&bogus.encode()).unwrap_err();
        assert_eq!(e.kind, ErrorKind::Protocol);
        assert!(e.message.contains("requires protocol version 3"), "{e}");
    }

    #[test]
    fn key_hex_round_trips() {
        for key in [
            0u128,
            1,
            u128::MAX,
            0x36bd_06bc_a277_3179_37d0_2054_da46_d064,
        ] {
            let hex = key_to_hex(key);
            assert_eq!(hex.len(), 2 + 32, "fixed width: {hex}");
            assert_eq!(key_from_hex(&hex), Some(key));
        }
        assert_eq!(key_from_hex("ff"), Some(255), "prefix is optional");
        assert_eq!(key_from_hex("0xzz"), None);
    }

    #[test]
    fn malformed_requests_are_bad_request_not_protocol() {
        for payload in [
            r#"{"v":1,"type":"warp"}"#,
            r#"{"v":1,"type":"solve"}"#,
            r#"{"v":1,"type":"solve","graph":{"weights":[1],"edges":[[0,0]]},"model":{"kind":"continuous"},"deadline":1}"#,
            r#"{"v":1,"type":"solve","graph":{"weights":[1],"edges":[]},"model":{"kind":"warp"},"deadline":1}"#,
        ] {
            let e = RequestEnvelope::decode(payload).unwrap_err();
            assert_eq!(e.kind, ErrorKind::BadRequest, "{payload}");
        }
        // Non-JSON is a protocol error.
        assert_eq!(
            RequestEnvelope::decode("not json").unwrap_err().kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, r#"{"v":1}"#).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(r#"{"v":1}"#));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload-of-some-length").unwrap();
        // Every strict prefix must fail loudly, except the empty one
        // (clean end-of-session).
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(FrameError::Truncated(_))),
                "prefix of {cut} bytes should be a truncation error"
            );
        }
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
    }

    #[test]
    fn oversized_and_garbage_headers_rejected() {
        let mut r: &[u8] = b"99999999999999999999\nx";
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated(_)) | Err(FrameError::TooLarge(_))
        ));
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = huge.as_bytes();
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
        let mut r: &[u8] = b"abc\nxyz\n";
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated(_))));
    }

    #[test]
    fn solve_error_mapping_carries_structure() {
        let e = SolveError::Infeasible {
            deadline: 1.5,
            min_makespan: 3.0,
        };
        let body = ErrorBody::from(&e);
        assert_eq!(body.kind, ErrorKind::Infeasible);
        assert_eq!(body.deadline, Some(1.5));
        assert_eq!(body.min_makespan, Some(3.0));
        let body = ErrorBody::from(&SolveError::Numerical("stall".into()));
        assert_eq!(body.kind, ErrorKind::Numerical);
        assert!(body.message.contains("stall"));
        let body = ErrorBody::from(&lp::LpError::WarmStartLost);
        assert_eq!(body.kind, ErrorKind::Numerical);
        assert!(body.message.contains("LP"));
    }
}
