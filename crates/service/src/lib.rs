//! # reclaim-service — `reclaimd` and the sharded corpus front-end
//!
//! Every other entry point in this workspace pays process startup and
//! graph preparation per invocation. This crate turns the prepared-
//! instance [`reclaim_core::Engine`] into a **long-lived system**:
//!
//! * [`daemon`] — `reclaimd`, a socket daemon (Unix-domain by
//!   default, TCP optional) built on a single nonblocking epoll poll
//!   loop (the crate-private `net` module — raw FFI against the
//!   system C library; the workspace vendors no FFI crates) that
//!   owns every socket, applies `--max-inflight`
//!   admission backpressure per connection, and feeds a fixed worker
//!   pool of single-threaded engines over a **content-addressed
//!   cache** of [`taskgraph::PreparedInstance`]s keyed by
//!   [`reclaim_core::engine::content_key`], with LRU eviction under
//!   byte/entry budgets;
//! * [`proto`] — the versioned, length-prefixed JSON-line wire
//!   protocol (v1: `solve` / `solve_deadlines` / `energy_curve` /
//!   `batch` / `stats` / `shutdown`; v2 adds `patch`; v3 exact
//!   curves; v4 adds `corpus` and per-request `timeout_ms`; v5 adds
//!   the `lineage` query and `as_of` time travel over the store's
//!   patch lineage) with structured error mapping from
//!   [`reclaim_core::SolveError`] and [`lp::LpError`] — the full wire
//!   specification lives in `docs/PROTOCOL.md`;
//! * [`store`] — the disk-backed, content-addressed instance store
//!   behind `--store DIR`: crash-safe checksummed records, a patch
//!   lineage log replayed in O(edits) for `as_of`, and the recovery
//!   scan that lets a restarted daemon answer its old traffic warm;
//! * [`cache`] — the cache itself, usable without the daemon, with
//!   **patch-in-place re-keying**: a cached instance can be mutated
//!   by a [`taskgraph::edit::GraphEdit`] batch under selective cache
//!   invalidation, keeping its Vdd warm-start basis across
//!   weight-only edits;
//! * [`client`] — a blocking client (used by `reclaim ask` and the
//!   integration tests), including the v2 [`Client::patch`] call and
//!   the pipelined [`Client::pipeline`] mode (a window of requests in
//!   flight, responses matched by `id` out of order);
//! * [`corpus`] — deterministic sharding of whole instance
//!   directories across engine shards, with byte-identical manifests
//!   and per-shard `BENCH_corpus_<k>.json` perf records;
//! * [`json`] — the in-tree JSON codec both layers ride on (the build
//!   environment is offline; there is no serde).
//!
//! Start a daemon and ask it something:
//!
//! ```no_run
//! use reclaim_service::daemon::{Daemon, DaemonConfig};
//! use reclaim_service::client::Client;
//! use reclaim_service::proto::{Request, Response};
//! use models::EnergyModel;
//! use taskgraph::TaskGraph;
//!
//! let daemon = Daemon::bind(DaemonConfig::default())?;
//! let endpoint = daemon.endpoint();
//! std::thread::spawn(move || daemon.run());
//!
//! let mut client = Client::connect(&endpoint)?;
//! let graph = TaskGraph::new(vec![2.0, 4.0], &[(0, 1)]).unwrap();
//! let reply = client.roundtrip(Request::Solve {
//!     graph,
//!     model: EnergyModel::continuous_unbounded(),
//!     deadline: 3.0,
//! }).unwrap();
//! if let Response::Solve(report) = reply.response {
//!     assert!(!report.cached, "first sight of this content");
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod cache;
pub mod client;
pub mod corpus;
pub mod daemon;
pub mod json;
pub(crate) mod net;
pub mod proto;
pub mod store;

pub use cache::{CacheConfig, InstanceCache, Prepared};
pub use client::{Client, ClientError, Pipeline};
pub use corpus::{run_corpus, CorpusJob, ShardOutcome};
pub use daemon::{config_from_args, Daemon, DaemonConfig, Endpoint};
pub use proto::{ErrorBody, ErrorKind, Request, RequestEnvelope, Response, ResponseEnvelope};
pub use store::{Store, StoredEntry};
