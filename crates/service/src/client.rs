//! A blocking client for `reclaimd`.

use crate::daemon::{Endpoint, Stream};
use crate::proto::{
    read_frame, write_frame, ErrorBody, FrameError, Request, RequestEnvelope, ResponseEnvelope,
};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};
use taskgraph::edit::GraphEdit;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing failure (truncated/oversized frame from the daemon).
    Frame(FrameError),
    /// The daemon's bytes decoded but violated the protocol.
    Protocol(ErrorBody),
    /// The daemon closed the stream before answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "daemon closed the connection without answering"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connect once.
    pub fn connect(ep: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(ep)?,
            next_id: 1,
        })
    }

    /// Connect, retrying until `timeout` elapses — for racing a daemon
    /// that is still binding its socket (tests, CI smoke steps).
    pub fn connect_with_retry(ep: &Endpoint, timeout: Duration) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(ep) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and block for its response. Ids are assigned
    /// automatically and verified on the way back (this client does
    /// not pipeline, so responses arrive in order). The envelope rides
    /// the lowest protocol version able to carry the request, so
    /// everything but `patch` stays v1-compatible.
    pub fn roundtrip(
        &mut self,
        request: crate::proto::Request,
    ) -> Result<ResponseEnvelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let env = RequestEnvelope::new(id, request);
        write_frame(&mut self.stream, &env.encode())?;
        let payload = read_frame(&mut self.stream)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::Closed)?;
        let resp = ResponseEnvelope::decode(&payload).map_err(ClientError::Protocol)?;
        Ok(resp)
    }

    /// Send a v2 `patch`: edit the instance the daemon already caches
    /// under `base` ([`reclaim_core::engine::content_key`] of the
    /// graph and model) and solve the result at `deadline` — without
    /// resending the graph. The daemon answers
    /// [`crate::proto::Response::Patch`] carrying the edited
    /// instance's new content key (the `base` for the next patch in a
    /// chain), or an [`crate::proto::ErrorKind::UnknownBase`] error
    /// when the base was never cached or has been evicted — fall back
    /// to a full [`crate::proto::Request::Solve`] then.
    ///
    /// ```no_run
    /// use reclaim_service::client::Client;
    /// use reclaim_service::daemon::Endpoint;
    /// use reclaim_service::proto::Response;
    /// use reclaim_core::engine::content_key;
    /// use models::EnergyModel;
    /// use taskgraph::edit::GraphEdit;
    /// use taskgraph::TaskGraph;
    ///
    /// let mut client = Client::connect(&Endpoint::Unix("reclaimd.sock".into()))?;
    /// let graph = TaskGraph::new(vec![2.0, 4.0], &[(0, 1)]).unwrap();
    /// let model = EnergyModel::continuous_unbounded();
    /// // The daemon holds this instance from an earlier solve; name
    /// // it by content key and send only the delta.
    /// let base = content_key(&graph, &model);
    /// let reply = client
    ///     .patch(base, &[GraphEdit::SetWeight { task: 1, weight: 5.0 }], 3.0)
    ///     .unwrap();
    /// if let Response::Patch(p) = reply.response {
    ///     assert_eq!(p.report.prep_ns, 0, "weight edits re-prepare nothing");
    ///     let _next_base = p.key; // chain further edits from here
    /// }
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn patch(
        &mut self,
        base: u128,
        edits: &[GraphEdit],
        deadline: f64,
    ) -> Result<ResponseEnvelope, ClientError> {
        self.roundtrip(Request::Patch {
            base,
            edits: edits.to_vec(),
            deadline,
        })
    }
}
