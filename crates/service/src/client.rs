//! A blocking client for `reclaimd`: serial [`Client::roundtrip`] or
//! pipelined [`Client::pipeline`] (up to a window of requests in
//! flight, responses matched by `id` in whatever order the daemon
//! finishes them).

use crate::daemon::{Endpoint, Stream};
use crate::proto::{
    read_frame, write_frame, ErrorBody, ErrorKind, FrameError, Request, RequestEnvelope,
    ResponseEnvelope,
};
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::time::{Duration, Instant};
use taskgraph::edit::GraphEdit;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing failure (truncated/oversized frame from the daemon).
    Frame(FrameError),
    /// The daemon's bytes decoded but violated the protocol.
    Protocol(ErrorBody),
    /// The daemon closed the stream before answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "daemon closed the connection without answering"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: Stream,
    next_id: u64,
    timeout_ms: Option<u64>,
    as_of: Option<u64>,
}

impl Client {
    /// Connect once.
    pub fn connect(ep: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(ep)?,
            next_id: 1,
            timeout_ms: None,
            as_of: None,
        })
    }

    /// Wrap an already-connected Unix stream (tests drive the client
    /// against a scripted in-process peer this way).
    pub fn from_unix(stream: std::os::unix::net::UnixStream) -> Client {
        Client {
            stream: Stream::Unix(stream),
            next_id: 1,
            timeout_ms: None,
            as_of: None,
        }
    }

    /// Attach a per-request queue-wait budget to every subsequent
    /// request (`None` clears it). A request still queued when the
    /// budget elapses is answered with the structured
    /// [`ErrorKind::Timeout`] error instead of being solved. Carrying
    /// the field bumps the envelope to protocol v4.
    pub fn set_timeout_ms(&mut self, timeout_ms: Option<u64>) {
        self.timeout_ms = timeout_ms;
    }

    /// Rewind every subsequent `solve` / `energy_curve` to the version
    /// `depth` recorded patches up its lineage chain (`None` — or a
    /// depth of 0 — clears it back to the present). Needs a daemon
    /// started with `--store`; carrying the field bumps the envelope
    /// to protocol v5.
    pub fn set_as_of(&mut self, as_of: Option<u64>) {
        self.as_of = as_of.filter(|&d| d > 0);
    }

    /// Send a v5 `lineage` query: the recorded patch history of the
    /// instance stored under `key`, oldest hop first. Needs a daemon
    /// started with `--store`.
    pub fn lineage(&mut self, key: u128) -> Result<ResponseEnvelope, ClientError> {
        self.roundtrip(Request::Lineage { key })
    }

    /// Connect, retrying until `timeout` elapses — for racing a daemon
    /// that is still binding its socket (tests, CI smoke steps).
    pub fn connect_with_retry(ep: &Endpoint, timeout: Duration) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(ep) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and block for its response. Ids are assigned
    /// automatically and verified on the way back (this client does
    /// not pipeline, so responses arrive in order). The envelope rides
    /// the lowest protocol version able to carry the request, so
    /// everything but `patch` stays v1-compatible.
    pub fn roundtrip(
        &mut self,
        request: crate::proto::Request,
    ) -> Result<ResponseEnvelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let env = RequestEnvelope::new(id, request)
            .with_timeout_ms(self.timeout_ms)
            .with_as_of(self.as_of);
        write_frame(&mut self.stream, &env.encode())?;
        let payload = read_frame(&mut self.stream)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::Closed)?;
        let resp = ResponseEnvelope::decode(&payload).map_err(ClientError::Protocol)?;
        Ok(resp)
    }

    /// Start a pipelined exchange: up to `window` requests in flight
    /// before [`Pipeline::send`] blocks to collect a response.
    /// Responses are matched to requests by `id` — the daemon answers
    /// in completion order, not send order, so out-of-order arrival is
    /// normal and handled. Call [`Pipeline::drain`] to collect every
    /// outstanding response at the end.
    pub fn pipeline(&mut self, window: usize) -> Pipeline<'_> {
        Pipeline {
            client: self,
            window: window.max(1),
            pending: HashSet::new(),
            ready: Vec::new(),
        }
    }

    /// Send a v2 `patch`: edit the instance the daemon already caches
    /// under `base` ([`reclaim_core::engine::content_key`] of the
    /// graph and model) and solve the result at `deadline` — without
    /// resending the graph. The daemon answers
    /// [`crate::proto::Response::Patch`] carrying the edited
    /// instance's new content key (the `base` for the next patch in a
    /// chain), or an [`crate::proto::ErrorKind::UnknownBase`] error
    /// when the base was never cached or has been evicted — fall back
    /// to a full [`crate::proto::Request::Solve`] then.
    ///
    /// ```no_run
    /// use reclaim_service::client::Client;
    /// use reclaim_service::daemon::Endpoint;
    /// use reclaim_service::proto::Response;
    /// use reclaim_core::engine::content_key;
    /// use models::EnergyModel;
    /// use taskgraph::edit::GraphEdit;
    /// use taskgraph::TaskGraph;
    ///
    /// let mut client = Client::connect(&Endpoint::Unix("reclaimd.sock".into()))?;
    /// let graph = TaskGraph::new(vec![2.0, 4.0], &[(0, 1)]).unwrap();
    /// let model = EnergyModel::continuous_unbounded();
    /// // The daemon holds this instance from an earlier solve; name
    /// // it by content key and send only the delta.
    /// let base = content_key(&graph, &model);
    /// let reply = client
    ///     .patch(base, &[GraphEdit::SetWeight { task: 1, weight: 5.0 }], 3.0)
    ///     .unwrap();
    /// if let Response::Patch(p) = reply.response {
    ///     assert_eq!(p.report.prep_ns, 0, "weight edits re-prepare nothing");
    ///     let _next_base = p.key; // chain further edits from here
    /// }
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn patch(
        &mut self,
        base: u128,
        edits: &[GraphEdit],
        deadline: f64,
    ) -> Result<ResponseEnvelope, ClientError> {
        self.roundtrip(Request::Patch {
            base,
            edits: edits.to_vec(),
            deadline,
        })
    }
}

/// A pipelined exchange over one connection (see
/// [`Client::pipeline`]). Dropping a pipeline with responses still in
/// flight leaves them on the stream; the next serial `roundtrip`
/// would mis-match, so [`Pipeline::drain`] first.
pub struct Pipeline<'a> {
    client: &'a mut Client,
    window: usize,
    /// Ids sent but not yet answered.
    pending: HashSet<u64>,
    /// Responses read while waiting for window space, not yet handed
    /// to the caller.
    ready: Vec<ResponseEnvelope>,
}

impl Pipeline<'_> {
    /// Send one request, first collecting a response if the window is
    /// full. Returns the assigned request id.
    pub fn send(&mut self, request: Request) -> Result<u64, ClientError> {
        while self.pending.len() >= self.window {
            let resp = self.recv_matched()?;
            self.ready.push(resp);
        }
        let id = self.client.next_id;
        self.client.next_id += 1;
        let env = RequestEnvelope::new(id, request)
            .with_timeout_ms(self.client.timeout_ms)
            .with_as_of(self.client.as_of);
        write_frame(&mut self.client.stream, &env.encode())?;
        self.pending.insert(id);
        Ok(id)
    }

    /// Collect the next response, in daemon completion order: a
    /// response buffered while `send` waited for window space, or the
    /// next one off the stream. Errors with a structured protocol
    /// error if the daemon answers an id this pipeline never sent.
    pub fn recv(&mut self) -> Result<ResponseEnvelope, ClientError> {
        if !self.ready.is_empty() {
            return Ok(self.ready.remove(0));
        }
        self.recv_matched()
    }

    /// Take the responses that were read off the stream while `send`
    /// waited for window space, without blocking. Useful for latency
    /// accounting: callers that timestamp arrivals can collect these
    /// right after each `send` instead of discovering them in a final
    /// `drain`.
    pub fn take_ready(&mut self) -> Vec<ResponseEnvelope> {
        std::mem::take(&mut self.ready)
    }

    /// Number of requests sent but not yet collected.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.ready.len()
    }

    /// Collect every outstanding response.
    pub fn drain(&mut self) -> Result<Vec<ResponseEnvelope>, ClientError> {
        let mut out = std::mem::take(&mut self.ready);
        while !self.pending.is_empty() {
            out.push(self.recv_matched()?);
        }
        Ok(out)
    }

    fn recv_matched(&mut self) -> Result<ResponseEnvelope, ClientError> {
        let payload = read_frame(&mut self.client.stream)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::Closed)?;
        let resp = ResponseEnvelope::decode(&payload).map_err(ClientError::Protocol)?;
        if !self.pending.remove(&resp.id) {
            return Err(ClientError::Protocol(ErrorBody::new(
                ErrorKind::Protocol,
                format!("response id {} matches no pending request", resp.id),
            )));
        }
        Ok(resp)
    }
}
