//! A blocking client for `reclaimd`.

use crate::daemon::{Endpoint, Stream};
use crate::proto::{
    read_frame, write_frame, ErrorBody, FrameError, RequestEnvelope, ResponseEnvelope,
};
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Framing failure (truncated/oversized frame from the daemon).
    Frame(FrameError),
    /// The daemon's bytes decoded but violated the protocol.
    Protocol(ErrorBody),
    /// The daemon closed the stream before answering.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "daemon closed the connection without answering"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: Stream,
    next_id: u64,
}

impl Client {
    /// Connect once.
    pub fn connect(ep: &Endpoint) -> io::Result<Client> {
        Ok(Client {
            stream: Stream::connect(ep)?,
            next_id: 1,
        })
    }

    /// Connect, retrying until `timeout` elapses — for racing a daemon
    /// that is still binding its socket (tests, CI smoke steps).
    pub fn connect_with_retry(ep: &Endpoint, timeout: Duration) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(ep) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Send one request and block for its response. Ids are assigned
    /// automatically and verified on the way back (this client does
    /// not pipeline, so responses arrive in order).
    pub fn roundtrip(
        &mut self,
        request: crate::proto::Request,
    ) -> Result<ResponseEnvelope, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let env = RequestEnvelope { id, request };
        write_frame(&mut self.stream, &env.encode())?;
        let payload = read_frame(&mut self.stream)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::Closed)?;
        let resp = ResponseEnvelope::decode(&payload).map_err(ClientError::Protocol)?;
        Ok(resp)
    }
}
